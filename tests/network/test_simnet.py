"""Simulated network: delivery, observers, partitions, drops, stats."""

from __future__ import annotations

import pytest

from repro.common.clock import SimClock
from repro.common.errors import DeliveryError
from repro.common.rng import DeterministicRNG
from repro.network.messages import Exposure
from repro.network.simnet import LatencyModel, Observer, SimNetwork


@pytest.fixture
def net():
    network = SimNetwork(rng=DeterministicRNG("net-test"))
    for name in ("A", "B", "C"):
        network.add_node(name)
    return network


class TestDelivery:
    def test_point_to_point(self, net):
        net.send("A", "B", "ping", {"x": 1})
        net.run()
        messages = net.node("B").drain()
        assert len(messages) == 1
        assert messages[0].payload == {"x": 1}

    def test_broadcast_excludes_sender(self, net):
        net.broadcast("A", "announce", "hello")
        net.run()
        assert len(net.node("B").inbox) == 1
        assert len(net.node("C").inbox) == 1
        assert len(net.node("A").inbox) == 0

    def test_broadcast_to_explicit_recipients(self, net):
        net.broadcast("A", "announce", "hello", recipients=["B"])
        net.run()
        assert len(net.node("B").inbox) == 1
        assert len(net.node("C").inbox) == 0

    def test_unknown_recipient_rejected(self, net):
        with pytest.raises(DeliveryError, match="unknown recipient"):
            net.send("A", "Z", "ping", {})

    def test_duplicate_node_rejected(self, net):
        with pytest.raises(DeliveryError, match="already exists"):
            net.add_node("A")

    def test_delivery_order_respects_latency(self):
        net = SimNetwork(
            rng=DeterministicRNG("order"),
            latency=LatencyModel(base=0.01, jitter=0.0),
        )
        net.add_node("A")
        net.add_node("B")
        net.send("A", "B", "first", 1)
        net.clock.advance(1.0)
        net.send("A", "B", "second", 2)
        net.run()
        kinds = [m.kind for m in net.node("B").inbox]
        assert kinds == ["first", "second"]

    def test_clock_advances_with_deliveries(self, net):
        before = net.clock.now
        net.send("A", "B", "ping", {})
        net.run()
        assert net.clock.now > before

    def test_handlers_invoked(self, net):
        received = []
        net.node("B").on("ping", lambda m: received.append(m.payload))
        net.send("A", "B", "ping", 42)
        net.run()
        assert received == [42]

    def test_drain_by_kind(self, net):
        net.send("A", "B", "x", 1)
        net.send("A", "B", "y", 2)
        net.run()
        assert [m.payload for m in net.node("B").drain("x")] == [1]
        assert [m.payload for m in net.node("B").drain()] == [2]


class TestObservers:
    def test_tap_sees_all_traffic(self, net):
        tap = net.add_tap(Observer("wiretap"))
        net.send("A", "B", "tx", {}, exposure=Exposure.of(identities={"A", "B"}))
        net.send("B", "C", "tx", {}, exposure=Exposure.of(data_keys={"price"}))
        net.run()
        assert tap.seen_identities == {"A", "B"}
        assert tap.seen_data_keys == {"price"}
        assert tap.messages_observed == 2

    def test_node_observer_sees_inbound_only(self, net):
        net.send("A", "B", "tx", {}, exposure=Exposure.of(identities={"A"}))
        net.run()
        assert net.node("B").observer.seen_identities == {"A"}
        assert net.node("C").observer.seen_identities == set()

    def test_empty_exposure_reveals_nothing(self, net):
        tap = net.add_tap(Observer("wiretap"))
        net.send("A", "B", "tx", {"secret": 1})
        net.run()
        assert tap.seen_identities == set()
        assert tap.seen_data_keys == set()

    def test_knowledge_snapshot(self, net):
        tap = net.add_tap(Observer("wiretap"))
        net.send("A", "B", "tx", {}, exposure=Exposure.of(code_ids={"cc"}))
        net.run()
        snapshot = tap.knowledge()
        assert snapshot["code_ids"] == ["cc"]
        assert snapshot["messages_observed"] == 1

    def test_exposure_merge(self):
        a = Exposure.of(identities={"x"})
        b = Exposure.of(data_keys={"k"})
        merged = a.merge(b)
        assert merged.identities == frozenset({"x"})
        assert merged.data_keys == frozenset({"k"})
        assert not merged.is_empty()
        assert Exposure().is_empty()


class TestFaults:
    def test_partition_blocks_send(self, net):
        net.partition("A", "B")
        with pytest.raises(DeliveryError, match="partition"):
            net.send("A", "B", "ping", {})

    def test_partition_is_symmetric(self, net):
        net.partition("A", "B")
        with pytest.raises(DeliveryError):
            net.send("B", "A", "ping", {})

    def test_partition_leaves_other_links(self, net):
        net.partition("A", "B")
        net.send("A", "C", "ping", {})
        net.run()
        assert len(net.node("C").inbox) == 1

    def test_heal_restores_link(self, net):
        net.partition("A", "B")
        net.heal("A", "B")
        net.send("A", "B", "ping", {})
        net.run()
        assert len(net.node("B").inbox) == 1

    def test_message_drops(self):
        net = SimNetwork(rng=DeterministicRNG("drops"), drop_probability=1.0)
        net.add_node("A")
        net.add_node("B")
        net.send("A", "B", "ping", {})
        net.run()
        assert len(net.node("B").inbox) == 0
        assert net.stats.messages_dropped == 1

    def test_partial_drop_rate(self):
        net = SimNetwork(rng=DeterministicRNG("drops2"), drop_probability=0.5)
        net.add_node("A")
        net.add_node("B")
        for __ in range(200):
            net.send("A", "B", "ping", {})
        net.run()
        delivered = len(net.node("B").inbox)
        assert 50 < delivered < 150  # loose bounds around 100


class TestStats:
    def test_counters(self, net):
        net.send("A", "B", "ping", {"data": "x"})
        net.send("A", "C", "ping", {"data": "y"})
        net.run()
        assert net.stats.messages_sent == 2
        assert net.stats.messages_delivered == 2
        assert net.stats.bytes_transferred > 0

    def test_step_returns_false_when_empty(self, net):
        assert net.step() is False
