"""Simulated network: delivery, observers, partitions, drops, stats."""

from __future__ import annotations

import pytest

from repro.common.clock import SimClock
from repro.common.errors import DeliveryError, DeliveryTimeout
from repro.common.rng import DeterministicRNG
from repro.faults.plan import FaultPlan
from repro.network.messages import Exposure
from repro.network.simnet import LatencyModel, Observer, SimNetwork


@pytest.fixture
def net():
    network = SimNetwork(rng=DeterministicRNG("net-test"))
    for name in ("A", "B", "C"):
        network.add_node(name)
    return network


class TestDelivery:
    def test_point_to_point(self, net):
        net.send("A", "B", "ping", {"x": 1})
        net.run()
        messages = net.node("B").drain()
        assert len(messages) == 1
        assert messages[0].payload == {"x": 1}

    def test_broadcast_excludes_sender(self, net):
        net.broadcast("A", "announce", "hello")
        net.run()
        assert len(net.node("B").inbox) == 1
        assert len(net.node("C").inbox) == 1
        assert len(net.node("A").inbox) == 0

    def test_broadcast_to_explicit_recipients(self, net):
        net.broadcast("A", "announce", "hello", recipients=["B"])
        net.run()
        assert len(net.node("B").inbox) == 1
        assert len(net.node("C").inbox) == 0

    def test_unknown_recipient_rejected(self, net):
        with pytest.raises(DeliveryError, match="unknown recipient"):
            net.send("A", "Z", "ping", {})

    def test_duplicate_node_rejected(self, net):
        with pytest.raises(DeliveryError, match="already exists"):
            net.add_node("A")

    def test_delivery_order_respects_latency(self):
        net = SimNetwork(
            rng=DeterministicRNG("order"),
            latency=LatencyModel(base=0.01, jitter=0.0),
        )
        net.add_node("A")
        net.add_node("B")
        net.send("A", "B", "first", 1)
        net.clock.advance(1.0)
        net.send("A", "B", "second", 2)
        net.run()
        kinds = [m.kind for m in net.node("B").inbox]
        assert kinds == ["first", "second"]

    def test_clock_advances_with_deliveries(self, net):
        before = net.clock.now
        net.send("A", "B", "ping", {})
        net.run()
        assert net.clock.now > before

    def test_handlers_invoked(self, net):
        received = []
        net.node("B").on("ping", lambda m: received.append(m.payload))
        net.send("A", "B", "ping", 42)
        net.run()
        assert received == [42]

    def test_drain_by_kind(self, net):
        net.send("A", "B", "x", 1)
        net.send("A", "B", "y", 2)
        net.run()
        assert [m.payload for m in net.node("B").drain("x")] == [1]
        assert [m.payload for m in net.node("B").drain()] == [2]


class TestObservers:
    def test_tap_sees_all_traffic(self, net):
        tap = net.add_tap(Observer("wiretap"))
        net.send("A", "B", "tx", {}, exposure=Exposure.of(identities={"A", "B"}))
        net.send("B", "C", "tx", {}, exposure=Exposure.of(data_keys={"price"}))
        net.run()
        assert tap.seen_identities == {"A", "B"}
        assert tap.seen_data_keys == {"price"}
        assert tap.messages_observed == 2

    def test_node_observer_sees_inbound_only(self, net):
        net.send("A", "B", "tx", {}, exposure=Exposure.of(identities={"A"}))
        net.run()
        assert net.node("B").observer.seen_identities == {"A"}
        assert net.node("C").observer.seen_identities == set()

    def test_empty_exposure_reveals_nothing(self, net):
        tap = net.add_tap(Observer("wiretap"))
        net.send("A", "B", "tx", {"secret": 1})
        net.run()
        assert tap.seen_identities == set()
        assert tap.seen_data_keys == set()

    def test_knowledge_snapshot(self, net):
        tap = net.add_tap(Observer("wiretap"))
        net.send("A", "B", "tx", {}, exposure=Exposure.of(code_ids={"cc"}))
        net.run()
        snapshot = tap.knowledge()
        assert snapshot["code_ids"] == ["cc"]
        assert snapshot["messages_observed"] == 1

    def test_exposure_merge(self):
        a = Exposure.of(identities={"x"})
        b = Exposure.of(data_keys={"k"})
        merged = a.merge(b)
        assert merged.identities == frozenset({"x"})
        assert merged.data_keys == frozenset({"k"})
        assert not merged.is_empty()
        assert Exposure().is_empty()


class TestFaults:
    def test_partition_blocks_send(self, net):
        net.partition("A", "B")
        with pytest.raises(DeliveryError, match="partition"):
            net.send("A", "B", "ping", {})

    def test_partition_is_symmetric(self, net):
        net.partition("A", "B")
        with pytest.raises(DeliveryError):
            net.send("B", "A", "ping", {})

    def test_partition_leaves_other_links(self, net):
        net.partition("A", "B")
        net.send("A", "C", "ping", {})
        net.run()
        assert len(net.node("C").inbox) == 1

    def test_heal_restores_link(self, net):
        net.partition("A", "B")
        net.heal("A", "B")
        net.send("A", "B", "ping", {})
        net.run()
        assert len(net.node("B").inbox) == 1

    def test_message_drops(self):
        net = SimNetwork(rng=DeterministicRNG("drops"), drop_probability=1.0)
        net.add_node("A")
        net.add_node("B")
        net.send("A", "B", "ping", {})
        net.run()
        assert len(net.node("B").inbox) == 0
        assert net.stats.messages_dropped == 1

    def test_partial_drop_rate(self):
        net = SimNetwork(rng=DeterministicRNG("drops2"), drop_probability=0.5)
        net.add_node("A")
        net.add_node("B")
        for __ in range(200):
            net.send("A", "B", "ping", {})
        net.run()
        delivered = len(net.node("B").inbox)
        assert 50 < delivered < 150  # loose bounds around 100


class TestPartitionTiming:
    """Regression: partitions must cut traffic already in flight."""

    def test_partition_after_send_drops_in_flight_message(self, net):
        net.send("A", "B", "ping", {})
        net.partition("A", "B")  # created while the message is in flight
        net.run()
        assert len(net.node("B").inbox) == 0
        assert net.stats.messages_dropped == 1
        assert net.stats.dropped_by_partition == 1
        assert net.stats.messages_delivered == 0

    def test_partition_drop_still_advances_clock(self, net):
        before = net.clock.now
        net.send("A", "B", "ping", {})
        net.partition("A", "B")
        assert net.step() is True  # the event is consumed, not delivered
        assert net.clock.now > before

    def test_heal_then_resend_delivers(self, net):
        net.send("A", "B", "ping", {})
        net.partition("A", "B")
        net.run()  # in-flight copy dies on the cut link
        net.heal("A", "B")
        net.send("A", "B", "ping", {})
        net.run()
        assert len(net.node("B").inbox) == 1

    def test_drop_vs_partition_stats_are_distinct(self):
        net = SimNetwork(rng=DeterministicRNG("attrib"), drop_probability=1.0)
        net.add_node("A")
        net.add_node("B")
        net.send("A", "B", "lost", {})  # probabilistic loss at send time
        net.drop_probability = 0.0
        net.send("A", "B", "cut", {})
        net.partition("A", "B")  # partition drop at delivery time
        net.run()
        assert net.stats.dropped_by_loss == 1
        assert net.stats.dropped_by_partition == 1
        assert net.stats.messages_dropped == 2

    def test_timed_partition_heals_by_window_end(self, net):
        net.fault_plan = FaultPlan().partition_between("A", "B", start=0.0, end=1.0)
        with pytest.raises(DeliveryError, match="partition"):
            net.send("A", "B", "ping", {})
        net.clock.advance_to(1.0)
        net.send("A", "B", "ping", {})
        net.run()
        assert len(net.node("B").inbox) == 1

    def test_message_sent_before_window_drops_inside_it(self, net):
        # Due time falls inside the partition window even though the send
        # happened before the window opened.
        net.latency = LatencyModel(base=0.5, jitter=0.0)
        net.fault_plan = FaultPlan().partition_between("A", "B", start=0.1, end=2.0)
        net.send("A", "B", "ping", {})  # sent at t=0, due at t=0.5
        net.run()
        assert len(net.node("B").inbox) == 0
        assert net.stats.dropped_by_partition == 1


class TestBroadcastAtomicity:
    """Regression: a bad target mid-list must not leave a partial broadcast."""

    def test_unknown_target_queues_nothing(self, net):
        with pytest.raises(DeliveryError, match="unknown recipient"):
            net.broadcast("A", "announce", "x", recipients=["B", "Z", "C"])
        net.run()
        assert len(net.node("B").inbox) == 0
        assert len(net.node("C").inbox) == 0
        assert net.stats.messages_sent == 0

    def test_partitioned_target_queues_nothing(self, net):
        net.partition("A", "C")
        with pytest.raises(DeliveryError, match="partition"):
            net.broadcast("A", "announce", "x")
        net.run()
        assert len(net.node("B").inbox) == 0
        assert net.stats.messages_sent == 0

    def test_crashed_target_queues_nothing(self, net):
        net.fault_plan = FaultPlan().crash_node("C", start=0.0, end=1.0)
        with pytest.raises(DeliveryError, match="down"):
            net.broadcast("A", "announce", "x")
        assert len(net.node("B").inbox) == 0


class TestPayloadSizing:
    """Regression: unsupported values must not crash send."""

    def test_nan_payload_does_not_crash(self, net):
        # canonical_bytes raises ValueError on NaN (allow_nan=False);
        # _payload_size must fall back to the opaque-envelope size.
        message = net.send("A", "B", "ping", {"rate": float("nan")})
        assert message.size_bytes == 256
        net.run()
        assert len(net.node("B").inbox) == 1

    def test_unserializable_object_falls_back(self, net):
        message = net.send("A", "B", "ping", object())
        assert message.size_bytes == 256


class TestResilientDelivery:
    def test_first_attempt_ack(self, net):
        receipt = net.send_with_retry("A", "B", "ping", {"x": 1})
        assert receipt.delivered
        assert receipt.attempts == 1
        assert receipt.delivered_at is not None
        assert net.was_delivered(receipt.message)
        assert net.stats.retries == 0

    def test_retry_succeeds_after_partition_heals(self, net):
        # Link is cut for the first attempt's whole timeout window, then
        # heals; the second attempt must get through.
        net.fault_plan = FaultPlan().partition_between("A", "B", start=0.0, end=0.2)
        receipt = net.send_with_retry(
            "A", "B", "ping", {}, timeout=0.25, max_attempts=3
        )
        assert receipt.delivered
        assert receipt.attempts == 2
        assert net.stats.retries == 1

    def test_exhausted_attempts_raise_delivery_timeout(self, net):
        net.partition("A", "B")
        with pytest.raises(DeliveryTimeout, match="no acknowledgement"):
            net.send_with_retry("A", "B", "ping", {}, timeout=0.1, max_attempts=3)
        assert net.stats.retries == 2

    def test_silent_loss_surfaces_as_timeout(self):
        net = SimNetwork(rng=DeterministicRNG("lossy"), drop_probability=1.0)
        net.add_node("A")
        net.add_node("B")
        with pytest.raises(DeliveryTimeout):
            net.send_with_retry("A", "B", "ping", {}, timeout=0.1, max_attempts=2)

    def test_unknown_recipient_fails_fast(self, net):
        before = net.clock.now
        with pytest.raises(DeliveryError, match="unknown recipient"):
            net.send_with_retry("A", "Z", "ping", {})
        assert net.clock.now == before  # no timeout was burned

    def test_backoff_widens_attempt_windows(self, net):
        net.partition("A", "B")
        with pytest.raises(DeliveryTimeout):
            net.send_with_retry(
                "A", "B", "ping", {}, timeout=0.1, max_attempts=3, backoff=2.0
            )
        # 0.1 + 0.2 + 0.4 of simulated waiting.
        assert net.clock.now == pytest.approx(0.7)

    def test_retry_does_not_duplicate_delivery(self, net):
        receipt = net.send_with_retry("A", "B", "ping", {}, max_attempts=3)
        net.run()
        assert receipt.attempts == 1
        assert len(net.node("B").inbox) == 1


class TestFaultPlanThreading:
    def test_link_loss_drops_and_attributes(self):
        plan = FaultPlan().set_link_loss("A", "B", 1.0)
        net = SimNetwork(rng=DeterministicRNG("linkloss"), fault_plan=plan)
        net.add_node("A")
        net.add_node("B")
        net.add_node("C")
        net.send("A", "B", "ping", {})
        net.send("A", "C", "ping", {})  # unaffected link
        net.run()
        assert len(net.node("B").inbox) == 0
        assert len(net.node("C").inbox) == 1
        assert net.stats.dropped_by_loss == 1

    def test_latency_multiplier_slows_link(self):
        plan = FaultPlan().slow_link("A", "B", 10.0)
        net = SimNetwork(
            rng=DeterministicRNG("slow"),
            latency=LatencyModel(base=0.01, jitter=0.0),
            fault_plan=plan,
        )
        net.add_node("A")
        net.add_node("B")
        net.send("A", "B", "ping", {})
        net.run()
        assert net.clock.now == pytest.approx(0.1)

    def test_crash_window_refuses_sends(self, net):
        net.fault_plan = FaultPlan().crash_node("B", start=0.0, end=1.0)
        with pytest.raises(DeliveryError, match="down"):
            net.send("A", "B", "ping", {})
        with pytest.raises(DeliveryError, match="down"):
            net.send("B", "A", "ping", {})
        net.clock.advance_to(1.0)
        net.send("A", "B", "ping", {})  # recovered
        net.run()
        assert len(net.node("B").inbox) == 1

    def test_crash_at_delivery_time_drops_in_flight(self, net):
        net.latency = LatencyModel(base=0.5, jitter=0.0)
        net.fault_plan = FaultPlan().crash_node("B", start=0.1, end=2.0)
        net.send("A", "B", "ping", {})  # sent at t=0 while B is still up
        net.run()
        assert len(net.node("B").inbox) == 0
        assert net.stats.dropped_by_crash == 1

    def test_zero_loss_plan_keeps_rng_stream_identical(self):
        # Privacy-invariance prerequisite: attaching a plan with no loss
        # must not consume extra RNG draws, so faulted and clean runs with
        # the same seed see identical latencies.
        def deliveries(plan):
            net = SimNetwork(rng=DeterministicRNG("stream"), fault_plan=plan)
            net.add_node("A")
            net.add_node("B")
            times = []
            for __ in range(5):
                net.send("A", "B", "ping", {})
                net.run()
                times.append(net.clock.now)
            return times

        assert deliveries(None) == deliveries(FaultPlan())


class TestRunUntil:
    def test_delivers_only_due_events(self, net):
        net.latency = LatencyModel(base=0.01, jitter=0.0)
        net.send("A", "B", "early", 1)  # due at 0.01
        net.latency = LatencyModel(base=2.0, jitter=0.0)
        net.send("A", "B", "late", 2)  # due at 2.0
        net.run_until(0.5)
        assert [m.kind for m in net.node("B").inbox] == ["early"]
        assert net.clock.now == pytest.approx(0.5)
        net.run()
        assert [m.kind for m in net.node("B").inbox] == ["early", "late"]


class TestStats:
    def test_counters(self, net):
        net.send("A", "B", "ping", {"data": "x"})
        net.send("A", "C", "ping", {"data": "y"})
        net.run()
        assert net.stats.messages_sent == 2
        assert net.stats.messages_delivered == 2
        assert net.stats.bytes_transferred > 0

    def test_step_returns_false_when_empty(self, net):
        assert net.step() is False
