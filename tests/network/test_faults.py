"""FaultPlan: windows, builders, and the pure queries the substrate uses."""

from __future__ import annotations

import pytest

from repro.common.errors import NetworkError
from repro.faults.plan import FaultPlan, Window


class TestWindow:
    def test_default_window_is_forever(self):
        window = Window()
        assert window.contains(0.0)
        assert window.contains(1e9)

    def test_half_open_semantics(self):
        window = Window(1.0, 2.0)
        assert not window.contains(0.999)
        assert window.contains(1.0)
        assert window.contains(1.999)
        assert not window.contains(2.0)  # heals exactly at end

    def test_negative_start_rejected(self):
        with pytest.raises(NetworkError):
            Window(-1.0, 2.0)

    def test_inverted_window_rejected(self):
        with pytest.raises(NetworkError):
            Window(3.0, 1.0)


class TestLoss:
    def test_default_loss_applies_everywhere(self):
        plan = FaultPlan().set_default_loss(0.25)
        assert plan.loss_probability("A", "B") == 0.25
        assert plan.loss_probability("X", "Y") == 0.25

    def test_link_loss_overrides_default(self):
        plan = FaultPlan().set_default_loss(0.1).set_link_loss("A", "B", 0.9)
        assert plan.loss_probability("A", "B") == 0.9
        assert plan.loss_probability("B", "A") == 0.9  # symmetric
        assert plan.loss_probability("A", "C") == 0.1

    def test_invalid_probability_rejected(self):
        with pytest.raises(NetworkError):
            FaultPlan().set_default_loss(1.5)
        with pytest.raises(NetworkError):
            FaultPlan().set_link_loss("A", "B", -0.1)


class TestLatency:
    def test_no_faults_means_unit_multiplier(self):
        assert FaultPlan().latency_multiplier("A", "B", 0.0) == 1.0

    def test_link_and_global_multipliers_compose(self):
        plan = FaultPlan().slow_link("A", "B", 2.0).slow_all(3.0)
        assert plan.latency_multiplier("A", "B", 0.0) == 6.0
        assert plan.latency_multiplier("A", "C", 0.0) == 3.0

    def test_multiplier_respects_window(self):
        plan = FaultPlan().slow_all(8.0, start=1.0, end=2.0)
        assert plan.latency_multiplier("A", "B", 0.5) == 1.0
        assert plan.latency_multiplier("A", "B", 1.5) == 8.0
        assert plan.latency_multiplier("A", "B", 2.0) == 1.0

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(NetworkError):
            FaultPlan().slow_all(0.0)
        with pytest.raises(NetworkError):
            FaultPlan().slow_link("A", "B", -1.0)


class TestPartitionsAndCrashes:
    def test_partition_window(self):
        plan = FaultPlan().partition_between("A", "B", start=1.0, end=3.0)
        assert not plan.is_partitioned("A", "B", 0.5)
        assert plan.is_partitioned("A", "B", 2.0)
        assert plan.is_partitioned("B", "A", 2.0)  # symmetric
        assert not plan.is_partitioned("A", "B", 3.0)
        assert not plan.is_partitioned("A", "C", 2.0)

    def test_crash_windows_accumulate(self):
        plan = (
            FaultPlan()
            .crash_node("A", start=0.0, end=1.0)
            .crash_node("A", start=5.0, end=6.0)
        )
        assert plan.is_crashed("A", 0.5)
        assert not plan.is_crashed("A", 3.0)
        assert plan.is_crashed("A", 5.5)
        assert not plan.is_crashed("B", 0.5)

    def test_orderer_outage_is_separate_from_crash(self):
        plan = FaultPlan().orderer_outage("fabric-orderer", start=0.0, end=1.0)
        assert plan.orderer_down("fabric-orderer", 0.5)
        assert not plan.is_crashed("fabric-orderer", 0.5)
        assert not plan.orderer_down("fabric-orderer", 1.0)

    def test_open_ended_crash_never_recovers(self):
        plan = FaultPlan().crash_node("A", start=2.0)
        assert not plan.is_crashed("A", 1.0)
        assert plan.is_crashed("A", 1e12)


class TestDescribe:
    def test_describe_lists_every_fault(self):
        plan = (
            FaultPlan()
            .set_default_loss(0.1)
            .set_link_loss("A", "B", 0.5)
            .slow_all(2.0)
            .partition_between("A", "C", start=1.0, end=2.0)
            .crash_node("D", start=0.0, end=1.0)
            .orderer_outage("orderer", start=3.0)
        )
        text = plan.describe()
        assert "default_loss=0.1" in text
        assert "loss A-B: 0.5" in text
        assert "latency x2.0 on all links" in text
        assert "partition A-C [1.0, 2.0)" in text
        assert "crash D [0.0, 1.0)" in text
        assert "orderer outage orderer [3.0, inf)" in text

    def test_builders_chain(self):
        plan = FaultPlan()
        assert plan.set_default_loss(0.0) is plan
        assert plan.partition_between("A", "B") is plan
