"""The Section 4 design executed on Corda and Quorum."""

from __future__ import annotations

import pytest

from repro.common.errors import DoubleSpendError, PlatformError
from repro.usecases.letter_of_credit_multi import (
    PARTIES,
    CordaLetterOfCredit,
    QuorumLetterOfCredit,
)


@pytest.fixture(scope="module")
def corda_loc():
    workflow = CordaLetterOfCredit()
    workflow.setup(extra_network_members=("OtherBank",))
    return workflow


@pytest.fixture(scope="module")
def quorum_loc():
    workflow = QuorumLetterOfCredit()
    workflow.setup(extra_network_members=("OtherBank",))
    return workflow


class TestCordaVariant:
    def test_full_lifecycle(self, corda_loc):
        assert corda_loc.run_full_lifecycle("LC-C-100") == "paid"
        assert corda_loc.status_of("LC-C-100", "SellerCo") == "paid"

    def test_all_parties_hold_final_state(self, corda_loc):
        corda_loc.run_full_lifecycle("LC-C-101")
        statuses = {corda_loc.status_of("LC-C-101", p) for p in PARTIES}
        assert statuses == {"paid"}

    def test_outsider_sees_nothing(self, corda_loc):
        corda_loc.run_full_lifecycle("LC-C-102")
        corda_loc.network.network.run()
        outsider = corda_loc.network.network.node("OtherBank").observer
        assert outsider.seen_data_keys == set()
        assert not (set(PARTIES) & outsider.seen_identities)

    def test_pii_off_platform_and_erasable(self, corda_loc):
        corda_loc.apply_for_credit("LC-C-103", amount=10, buyer_passport="P-X")
        assert not corda_loc.pii_is_erased("LC-C-103")
        corda_loc.erase_pii("LC-C-103")
        assert corda_loc.pii_is_erased("LC-C-103")

    def test_anchor_in_state_survives_erasure(self, corda_loc):
        result = corda_loc.apply_for_credit(
            "LC-C-104", amount=10, buyer_passport="P-Y"
        )
        corda_loc.erase_pii("LC-C-104")
        recorded = corda_loc.network.vault("SellerCo").state_at(
            result.output_refs[0]
        )
        assert recorded.data["kyc_anchor"]

    def test_terminal_state_cannot_advance(self, corda_loc):
        corda_loc.apply_for_credit("LC-C-105", amount=10, buyer_passport="P-Z")
        corda_loc.advance("IssuingBank", "LC-C-105")
        corda_loc.advance("SellerCo", "LC-C-105")
        corda_loc.advance("IssuingBank", "LC-C-105")
        with pytest.raises(PlatformError, match="already"):
            corda_loc.advance("IssuingBank", "LC-C-105")

    def test_replaying_consumed_state_rejected_by_notary(self, corda_loc):
        """Advancing from a stale ref is a notary-level double spend."""
        from repro.platforms.corda import Command, ContractState

        result = corda_loc.apply_for_credit(
            "LC-C-106", amount=10, buyer_passport="P-W"
        )
        applied_ref = result.output_refs[0]
        corda_loc.advance("IssuingBank", "LC-C-106")  # consumes applied_ref
        replay = corda_loc.network.build_transaction(
            inputs=[applied_ref],
            outputs=[ContractState("loc", PARTIES, {"status": "issued", "amount": 10})],
            commands=[Command(name="Advance", signers=PARTIES)],
        )
        with pytest.raises(DoubleSpendError):
            corda_loc.network.run_flow("BuyerCo", replay)


class TestQuorumVariant:
    def test_full_lifecycle(self, quorum_loc):
        assert quorum_loc.run_full_lifecycle("LC-Q-100") == "paid"
        for party in PARTIES:
            assert quorum_loc.status_of("LC-Q-100", party) == "paid"

    def test_outsider_has_no_private_state(self, quorum_loc):
        quorum_loc.run_full_lifecycle("LC-Q-101")
        assert not quorum_loc.network.private_states["OtherBank"].exists(
            "loc/LC-Q-101"
        )

    def test_participant_list_leaks_network_wide(self, quorum_loc):
        """The design's residual on this platform (paper Section 5)."""
        quorum_loc.run_full_lifecycle("LC-Q-102")
        quorum_loc.network.network.run()
        outsider = quorum_loc.network.network.node("OtherBank").observer
        assert set(PARTIES) & outsider.seen_identities

    def test_pii_storage_refused(self, quorum_loc):
        """The platform mismatch the design guide's scoring predicts."""
        with pytest.raises(PlatformError, match="deletable PII"):
            quorum_loc.store_pii("LC-Q-103", {"passport": "P-Q"})

    def test_private_states_replayable(self, quorum_loc):
        quorum_loc.run_full_lifecycle("LC-Q-104")
        for party in PARTIES:
            assert quorum_loc.network.verify_private_state(party)


class TestCrossPlatformAgreement:
    def test_same_terminal_status_everywhere(self, corda_loc, quorum_loc):
        from repro.usecases.letter_of_credit import LetterOfCreditWorkflow

        fabric = LetterOfCreditWorkflow()
        fabric.setup()
        fabric_status = fabric.run_full_lifecycle("LC-F-1").status
        corda_status = corda_loc.run_full_lifecycle("LC-C-200")
        quorum_status = quorum_loc.run_full_lifecycle("LC-Q-200")
        assert fabric_status == corda_status == quorum_status == "paid"
