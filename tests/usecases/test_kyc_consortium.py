"""KYC consortium: four mechanisms composed, every boundary asserted."""

from __future__ import annotations

import pytest

from repro.common.errors import MembershipError
from repro.usecases.kyc_consortium import KycConsortium

BANKS = ("FirstBank", "SecondBank", "ThirdBank")


@pytest.fixture(scope="module")
def consortium():
    workflow = KycConsortium(banks=BANKS)
    workflow.setup()
    return workflow


@pytest.fixture(scope="module")
def onboarded(consortium):
    return consortium.onboard_customer(
        "FirstBank", "cust-001", {"passport": "P-0001", "dob": "1980-01-01"}
    )


class TestOnboarding:
    def test_attestation_on_channel(self, consortium, onboarded):
        channel = consortium.network.channel(consortium.channel_name)
        attestation = channel.reference_state().get("kyc/cust-001")
        assert attestation == {"onboarded_by": "FirstBank", "status": "verified"}

    def test_pii_only_in_collection(self, consortium, onboarded):
        channel = consortium.network.channel(consortium.channel_name)
        stored = channel.collection("kyc-files").get("SecondBank", "file/cust-001")
        assert stored["passport"] == "P-0001"
        for tx in channel.chain.transactions():
            for write in tx.writes:
                assert "P-0001" not in str(write.value)

    def test_pii_anchor_recorded(self, consortium, onboarded):
        assert onboarded.pii_anchor
        channel = consortium.network.channel(consortium.channel_name)
        assert channel.collection("kyc-files").stores["FirstBank"].verify_anchor(
            "file/cust-001", onboarded.pii_anchor, caller="FirstBank"
        )


class TestRelyingBanks:
    def test_presentation_accepted(self, consortium, onboarded):
        presentation = consortium.present_kyc("cust-001")
        assert consortium.relying_bank_accepts(presentation)

    def test_presentation_reveals_only_the_attribute(self, consortium, onboarded):
        presentation = consortium.present_kyc("cust-001")
        assert presentation.disclosed == {"kyc": "verified"}
        assert "cust-001" not in str(presentation.disclosed)

    def test_presentations_unlinkable(self, consortium, onboarded):
        p1 = consortium.present_kyc("cust-001")
        p2 = consortium.present_kyc("cust-001")
        assert p1.commitment != p2.commitment

    def test_never_onboarded_customer_refused(self, consortium):
        with pytest.raises(MembershipError):
            consortium.present_kyc("ghost")


class TestLifecycle:
    def test_revocation_blocks_new_presentations(self, consortium):
        consortium.onboard_customer("SecondBank", "cust-002", {"passport": "P-2"})
        old_presentation = consortium.present_kyc("cust-002")
        consortium.revoke_customer("cust-002")
        with pytest.raises(MembershipError):
            consortium.present_kyc("cust-002")
        # Honest residual: the already-issued token still verifies.
        assert consortium.relying_bank_accepts(old_presentation)

    def test_gdpr_erasure_keeps_attestation(self, consortium):
        consortium.onboard_customer("ThirdBank", "cust-003", {"passport": "P-3"})
        consortium.erase_customer_file("cust-003")
        channel = consortium.network.channel(consortium.channel_name)
        with pytest.raises(Exception):
            channel.collection("kyc-files").get("ThirdBank", "file/cust-003")
        # The on-chain attestation (non-PII) survives.
        assert channel.reference_state().get("kyc/cust-003")["status"] == "verified"


class TestRegulatorView:
    def test_existence_proof_via_public_anchors(self, consortium, onboarded):
        consortium.anchor_to_public_ledger()
        proof = consortium.regulator_proof(onboarded)
        assert consortium.regulator_verifies(proof)

    def test_public_ledger_is_content_free(self, consortium, onboarded):
        consortium.anchor_to_public_ledger()
        for anchor in consortium.public_anchors.anchors_of(consortium.channel_name):
            public_view = f"{anchor.source}|{anchor.root.hex()}|{anchor.tx_count}"
            assert "cust-001" not in public_view
            assert "FirstBank" not in public_view
