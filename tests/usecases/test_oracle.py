"""Oracle attestation with tear-offs on Corda."""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.usecases.oracle_attestation import OracleTradeWorkflow


@pytest.fixture(scope="module")
def workflow():
    wf = OracleTradeWorkflow()
    wf.setup()
    return wf


class TestOracleTrade:
    def test_trade_executes_with_attestation(self, workflow):
        trade = workflow.execute_trade("EUR/USD", 1.0842, 1_000_000)
        assert trade.oracle_signature_valid
        assert trade.flow.receipt is not None

    def test_oracle_never_sees_notional(self, workflow):
        trade = workflow.execute_trade("EUR/USD", 1.0842, 9_999_999)
        assert not trade.oracle_saw_notional
        assert "notional" not in workflow.oracle.observer.seen_data_keys

    def test_partial_disclosure(self, workflow):
        trade = workflow.execute_trade("EUR/USD", 1.0842, 500)
        assert 0.0 < trade.disclosure_ratio < 1.0

    def test_wrong_rate_rejected_by_oracle(self, workflow):
        with pytest.raises(ValidationError, match="oracle says"):
            workflow.execute_trade("EUR/USD", 9.99, 500)

    def test_unknown_pair_rejected(self, workflow):
        with pytest.raises(ValidationError):
            workflow.execute_trade("XXX/YYY", 1.0, 500)

    def test_oracle_signature_included_in_final_transaction(self, workflow):
        trade = workflow.execute_trade("EUR/USD", 1.0842, 123)
        assert workflow.ORACLE_NAME in trade.flow.stx.signatures

    def test_both_parties_record_trade(self, workflow):
        trade = workflow.execute_trade("EUR/USD", 1.0842, 777)
        tx_id = trade.flow.stx.wire.tx_id
        for party in workflow.PARTIES:
            assert workflow.network.vault(party).knows_transaction(tx_id)

    def test_setup_required(self):
        wf = OracleTradeWorkflow()
        with pytest.raises(RuntimeError, match="setup"):
            wf.execute_trade("EUR/USD", 1.0842, 1)
