"""Secret ballot: MPC tally on a segregated ledger."""

from __future__ import annotations

import pytest

from repro.common.errors import MPCError
from repro.usecases.secret_ballot import SecretBallotWorkflow


@pytest.fixture(scope="module")
def workflow():
    wf = SecretBallotWorkflow(members=("M1", "M2", "M3", "M4", "M5"))
    wf.setup()
    return wf


class TestBallot:
    def test_tally_correct(self, workflow):
        result = workflow.vote("m-1", {
            "M1": True, "M2": True, "M3": True, "M4": False, "M5": False,
        })
        assert (result.yes, result.no, result.passed) == (3, 2, True)

    def test_motion_fails_without_majority(self, workflow):
        result = workflow.vote("m-2", {
            "M1": True, "M2": False, "M3": False, "M4": False, "M5": True,
        })
        assert not result.passed

    def test_result_recorded_on_ledger(self, workflow):
        workflow.vote("m-3", {
            "M1": True, "M2": True, "M3": True, "M4": True, "M5": True,
        })
        outcome = workflow.recorded_outcome("m-3", "M5")
        assert outcome == {"yes": 5, "no": 0, "passed": True}

    def test_individual_votes_never_on_ledger(self, workflow):
        workflow.vote("m-4", {
            "M1": True, "M2": False, "M3": True, "M4": False, "M5": True,
        })
        channel = workflow.network.channel(workflow.channel_name)
        for tx in channel.chain.transactions():
            for write in tx.writes:
                # Only aggregates appear; no per-member vote mapping.
                if isinstance(write.value, dict):
                    assert "M1" not in write.value
                    assert set(write.value) <= {"yes", "no", "passed"}

    def test_mpc_stats_reported(self, workflow):
        result = workflow.vote("m-5", {
            "M1": True, "M2": True, "M3": False, "M4": False, "M5": False,
        })
        assert result.mpc_stats.rounds == 3
        assert result.mpc_stats.messages > 0

    def test_incomplete_votes_rejected(self, workflow):
        with pytest.raises(MPCError, match="every member"):
            workflow.vote("m-6", {"M1": True})

    def test_setup_required(self):
        wf = SecretBallotWorkflow(members=("A", "B"))
        with pytest.raises(RuntimeError, match="setup"):
            wf.vote("m", {"A": True, "B": False})

    def test_too_few_members_rejected(self):
        wf = SecretBallotWorkflow(members=("A",))
        with pytest.raises(MPCError, match="at least two"):
            wf.setup()


class TestNetworkTraffic:
    def test_mpc_traffic_crosses_the_wire(self, workflow):
        net = workflow.network.network
        before = net.stats.messages_sent
        workflow.vote("m-net", {
            "M1": True, "M2": False, "M3": True, "M4": False, "M5": True,
        })
        net.run()
        sent = net.stats.messages_sent - before
        n = len(workflow.members)
        # n(n-1) shares + n(n-1) partial broadcasts, plus the platform
        # messages for the committing transaction.
        assert sent >= 2 * n * (n - 1)

    def test_wiretap_learns_nothing_from_ballot(self, workflow):
        from repro.network import Observer

        tap = workflow.network.network.add_tap(Observer("ballot-tap"))
        workflow.vote("m-tap", {
            "M1": True, "M2": True, "M3": False, "M4": False, "M5": False,
        })
        workflow.network.network.run()
        # Shares and partial sums expose nothing; only the committing
        # transaction's channel traffic carries the (aggregate) key name.
        assert not any("M1" == i for i in tap.seen_data_keys)
        assert all(not k.startswith("vote") or k.startswith("ballot/")
                   for k in tap.seen_data_keys)
