"""Letter of credit (Section 4): design agreement + executable workflow."""

from __future__ import annotations

import pytest

from repro.core.mechanisms import Mechanism
from repro.usecases.letter_of_credit import (
    LetterOfCreditWorkflow,
    design_letter_of_credit,
    expected_paper_design,
    letter_of_credit_requirements,
)


class TestDesignAgreement:
    """U1: the guide must reach the paper's own conclusions."""

    def test_pii_goes_off_chain(self):
        design = design_letter_of_credit()
        expected = expected_paper_design()
        assert design.recommendation_for("pii").primary is expected["pii_primary"]

    def test_trade_data_uses_segregated_ledger(self):
        design = design_letter_of_credit()
        expected = expected_paper_design()
        assert (
            design.recommendation_for("trade-data").primary
            is expected["trade_primary"]
        )

    def test_interactions_use_separate_ledger(self):
        design = design_letter_of_credit()
        assert Mechanism.SEPARATION_OF_LEDGERS_PARTIES in design.interaction_mechanisms

    def test_untrusted_orderer_adds_encryption(self):
        """'If a third party is trusted to run the ordering service...
        transaction data can be encrypted' — the contrapositive."""
        design = design_letter_of_credit(orderer_trusted=False)
        assert (
            Mechanism.SYMMETRIC_ENCRYPTION
            in design.recommendation_for("trade-data").supplementary
        )

    def test_trusted_orderer_needs_no_encryption(self):
        design = design_letter_of_credit(orderer_trusted=True)
        assert (
            Mechanism.SYMMETRIC_ENCRYPTION
            not in design.recommendation_for("trade-data").supplementary
        )

    def test_logic_is_not_confidential(self):
        """'logic contained in a letter of credit is highly standardized
        and non-confidential'."""
        design = design_letter_of_credit()
        assert design.logic_mechanism is None

    def test_requirements_have_two_data_classes(self):
        requirements = letter_of_credit_requirements()
        assert {dc.name for dc in requirements.data_classes} == {"pii", "trade-data"}


@pytest.fixture(scope="module")
def workflow():
    wf = LetterOfCreditWorkflow()
    wf.setup(extra_network_members=("OtherBank",))
    return wf


class TestWorkflow:
    def test_full_lifecycle(self, workflow):
        loc = workflow.run_full_lifecycle("LC-100")
        assert loc.status == "paid"
        assert loc.amount == 250_000

    def test_all_parties_see_same_status(self, workflow):
        workflow.run_full_lifecycle("LC-101")
        statuses = {
            workflow.status_of("LC-101", party)
            for party in workflow.PARTIES
        }
        assert statuses == {"paid"}

    def test_lifecycle_order_enforced(self, workflow):
        from repro.common.errors import ReproError

        workflow.apply_for_credit("LC-102", amount=10, buyer_passport="P-1")
        workflow.issue("LC-102")
        workflow.ship("LC-102")
        workflow.pay("LC-102")
        with pytest.raises(Exception, match="already"):
            workflow.pay("LC-102")

    def test_pii_never_on_chain(self, workflow):
        workflow.apply_for_credit("LC-103", amount=10, buyer_passport="P-SECRET-42")
        channel = workflow.network.channel(workflow.channel_name)
        for tx in channel.chain.transactions():
            for write in tx.writes:
                assert "P-SECRET-42" not in str(write.value)

    def test_pii_anchored_by_hash(self, workflow):
        workflow.apply_for_credit("LC-104", amount=10, buyer_passport="P-2")
        channel = workflow.network.channel(workflow.channel_name)
        anchored = [
            tx for tx in channel.chain.transactions()
            if any(k.startswith("kyc-pii/") for k in tx.private_hashes)
        ]
        assert anchored

    def test_gdpr_erasure(self, workflow):
        workflow.apply_for_credit("LC-105", amount=10, buyer_passport="P-3")
        assert not workflow.pii_is_erased("LC-105")
        workflow.erase_pii("LC-105")
        assert workflow.pii_is_erased("LC-105")

    def test_network_outsider_sees_nothing(self, workflow):
        workflow.run_full_lifecycle("LC-106")
        workflow.network.network.run()
        outsider = workflow.network.network.node("OtherBank").observer
        assert outsider.seen_data_keys == set()
        assert not (set(workflow.PARTIES) & outsider.seen_identities)

    def test_orderer_sees_loc_parties(self, workflow):
        """The trusted-third-party-orderer trade-off made visible."""
        workflow.run_full_lifecycle("LC-107")
        assert set(workflow.PARTIES) <= workflow.network.orderer.observer.seen_identities
