"""Execution engines: the Section 3.3 criteria, enforced behaviourally."""

from __future__ import annotations

import pytest

from repro.common.errors import ContractError
from repro.execution.contracts import SmartContract
from repro.execution.engines import LedgerEngine, OffChainEngine, TEEEngine


def transfer(view, args):
    balance = view.get("balance", 0)
    view.put("balance", balance + args["amount"])
    return balance + args["amount"]


def make_contract(language="python-chaincode", version=1, cid="cc"):
    return SmartContract(
        contract_id=cid, version=version, language=language,
        functions={"transfer": transfer},
    )


class TestLedgerEngine:
    def test_execute(self):
        engine = LedgerEngine()
        engine.install("peer1", make_contract())
        result = engine.execute("peer1", "cc", "transfer", {"amount": 5},
                                {"balance": 10}, {"balance": 1})
        assert result.return_value == 15
        assert result.writes == {"balance": 15}
        assert result.reads == {"balance": 1}

    def test_platform_language_enforced(self):
        """Criterion 4 fails for ledger engines: platform language only."""
        engine = LedgerEngine()
        with pytest.raises(ContractError, match="only runs"):
            engine.install("peer1", make_contract(language="haskell"))

    def test_admin_sees_code_and_data(self):
        """Criterion 3 fails: the node admin observes keys and code ids."""
        engine = LedgerEngine()
        engine.install("peer1", make_contract())
        engine.execute("peer1", "cc", "transfer", {"amount": 1}, {}, {})
        admin = engine.admin_observers["peer1"]
        assert "cc" in admin.seen_code_ids
        assert "balance" in admin.seen_data_keys

    def test_properties(self):
        props = LedgerEngine().properties()
        assert props.keeps_logic_private
        assert props.inbuilt_versioning
        assert not props.hides_data_from_admin
        assert not props.any_language

    def test_uninstalled_node_cannot_execute(self):
        engine = LedgerEngine()
        engine.install("peer1", make_contract())
        with pytest.raises(ContractError):
            engine.execute("peer2", "cc", "transfer", {"amount": 1}, {}, {})


class TestOffChainEngine:
    def test_any_language_accepted(self):
        """Criterion 4 holds: DSLs and anything else are fine."""
        engine = OffChainEngine()
        engine.install("host1", make_contract(language="cobol"))
        result = engine.execute("host1", "cc", "transfer", {"amount": 2},
                                {"balance": 40}, {})
        assert result.return_value == 42

    def test_version_drift_is_observable_not_prevented(self):
        """Criterion 2 fails: versioning is the operator's problem."""
        engine = OffChainEngine()
        engine.install("host1", make_contract(version=1))
        engine.install("host2", make_contract(version=3))
        drift = engine.detect_drift(["host1", "host2"], "cc")
        assert drift == {"host1": 1, "host2": 3}

    def test_admin_still_sees_data(self):
        """Criterion 3 fails: the engine host's admin sees cleartext."""
        engine = OffChainEngine()
        engine.install("host1", make_contract())
        engine.execute("host1", "cc", "transfer", {"amount": 1}, {}, {})
        assert "balance" in engine.admin_observers["host1"].seen_data_keys

    def test_properties(self):
        props = OffChainEngine().properties()
        assert props.keeps_logic_private
        assert not props.inbuilt_versioning
        assert not props.hides_data_from_admin
        assert props.any_language


class TestTEEEngine:
    def test_execute_with_attestation(self):
        engine = TEEEngine()
        engine.install("peer1", make_contract())
        result = engine.execute("peer1", "cc", "transfer", {"amount": 7},
                                {"balance": 0}, {})
        assert result.return_value == 7
        assert result.writes == {"balance": 7}

    def test_admin_sees_only_ciphertext_sizes(self):
        """Criterion 3 holds: the host log contains sizes, never keys."""
        engine = TEEEngine()
        engine.install("peer1", make_contract())
        engine.execute("peer1", "cc", "transfer", {"amount": 7},
                       {"balance": 0}, {})
        for entry in engine.admin_view("peer1", "cc"):
            assert set(entry) == {"operation", "bytes"}
            assert isinstance(entry["bytes"], int)

    def test_no_enclave_rejected(self):
        engine = TEEEngine()
        with pytest.raises(ContractError, match="no enclave"):
            engine.execute("peer1", "cc", "transfer", {}, {}, {})

    def test_properties(self):
        props = TEEEngine().properties()
        assert props.keeps_logic_private
        assert props.inbuilt_versioning
        assert props.hides_data_from_admin
        assert not props.any_language

    def test_deletes_propagate(self):
        def erase(view, args):
            view.delete(args["key"])
            return "erased"

        engine = TEEEngine()
        contract = SmartContract("cc2", 1, "python-chaincode", {"erase": erase})
        engine.install("peer1", contract)
        result = engine.execute("peer1", "cc2", "erase", {"key": "k"},
                                {"k": 1}, {"k": 1})
        assert result.deletes == {"k"}


class TestEngineComparison:
    def test_only_tee_hides_from_admin(self):
        engines = [LedgerEngine(), OffChainEngine(), TEEEngine()]
        hiding = [e.name for e in engines if e.properties().hides_data_from_admin]
        assert hiding == ["tee"]

    def test_only_offchain_allows_any_language(self):
        engines = [LedgerEngine(), OffChainEngine(), TEEEngine()]
        flexible = [e.name for e in engines if e.properties().any_language]
        assert flexible == ["offchain"]

    def test_all_results_agree_across_engines(self):
        """The same contract computes the same result everywhere."""
        state, versions = {"balance": 10}, {"balance": 1}
        ledger = LedgerEngine()
        ledger.install("n", make_contract())
        offchain = OffChainEngine()
        offchain.install("n", make_contract(language="kotlin"))
        tee = TEEEngine()
        tee.install("n", make_contract())
        results = [
            engine.execute("n", "cc", "transfer", {"amount": 5}, state, versions)
            for engine in (ledger, offchain, tee)
        ]
        assert len({r.return_value for r in results}) == 1
        assert len({tuple(sorted(r.writes.items())) for r in results}) == 1
