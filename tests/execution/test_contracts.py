"""Contracts, state views, and the versioning registry."""

from __future__ import annotations

import pytest

from repro.common.errors import ContractError
from repro.execution.contracts import (
    ContractRegistry,
    SmartContract,
    StateView,
)


def put_fn(view, args):
    view.put(args["key"], args["value"])
    return args["value"]


@pytest.fixture
def contract():
    return SmartContract(
        contract_id="cc", version=1, language="python-chaincode",
        functions={"put": put_fn},
    )


class TestStateView:
    def test_reads_recorded_with_versions(self):
        view = StateView({"k": 5}, {"k": 3})
        assert view.get("k") == 5
        assert view.reads == {"k": 3}

    def test_read_of_missing_key_records_version_zero(self):
        view = StateView({}, {})
        assert view.get("k", "default") == "default"
        assert view.reads == {"k": 0}

    def test_read_your_writes(self):
        view = StateView({"k": 1}, {"k": 1})
        view.put("k", 2)
        assert view.get("k") == 2

    def test_delete_then_read(self):
        view = StateView({"k": 1}, {"k": 1})
        view.delete("k")
        assert view.get("k", "gone") == "gone"
        assert "k" in view.deletes

    def test_put_after_delete_clears_delete(self):
        view = StateView({}, {})
        view.delete("k")
        view.put("k", 9)
        assert "k" not in view.deletes
        assert view.writes == {"k": 9}

    def test_backing_state_not_mutated(self):
        backing = {"k": 1}
        view = StateView(backing, {"k": 1})
        view.put("k", 2)
        assert backing == {"k": 1}


class TestSmartContract:
    def test_invoke(self, contract):
        view = StateView({}, {})
        assert contract.invoke("put", view, {"key": "k", "value": 7}) == 7
        assert view.writes == {"k": 7}

    def test_unknown_function_rejected(self, contract):
        with pytest.raises(ContractError, match="no function"):
            contract.invoke("missing", StateView({}, {}), {})

    def test_code_measurement_stable(self, contract):
        assert contract.code_measurement() == contract.code_measurement()

    def test_code_measurement_version_sensitive(self, contract):
        v2 = SmartContract(
            contract_id="cc", version=2, language="python-chaincode",
            functions={"put": put_fn},
        )
        assert contract.code_measurement() != v2.code_measurement()


class TestRegistry:
    def test_install_and_lookup(self, contract):
        registry = ContractRegistry()
        registry.install("peer1", contract)
        assert registry.lookup("peer1", "cc") is contract
        assert registry.has_contract("peer1", "cc")
        assert registry.installed_on("peer1") == ["cc"]

    def test_lookup_uninstalled_rejected(self, contract):
        registry = ContractRegistry()
        with pytest.raises(ContractError, match="does not have"):
            registry.lookup("peer1", "cc")

    def test_code_visibility_tracks_installs(self, contract):
        """Section 2.3: code visible only where installed."""
        registry = ContractRegistry()
        registry.install("peer1", contract)
        registry.install("peer2", contract)
        assert registry.nodes_with_code_visibility("cc") == {"peer1", "peer2"}
        assert "peer3" not in registry.nodes_with_code_visibility("cc")

    def test_version_consistency_enforced(self, contract):
        registry = ContractRegistry(enforce_consistency=True)
        registry.install("peer1", contract)
        v2 = SmartContract("cc", 2, "python-chaincode", {"put": put_fn})
        registry.install("peer2", v2)
        with pytest.raises(ContractError, match="version drift"):
            registry.check_version_consistency(["peer1", "peer2"], "cc")

    def test_version_drift_tolerated_without_enforcement(self, contract):
        """The off-chain engine's hazard: drift is possible, not an error."""
        registry = ContractRegistry(enforce_consistency=False)
        registry.install("peer1", contract)
        v2 = SmartContract("cc", 2, "python-chaincode", {"put": put_fn})
        registry.install("peer2", v2)
        assert registry.check_version_consistency(["peer1", "peer2"], "cc") == 2

    def test_consistent_versions_pass(self, contract):
        registry = ContractRegistry()
        registry.install("peer1", contract)
        registry.install("peer2", contract)
        assert registry.check_version_consistency(["peer1", "peer2"], "cc") == 1


class TestRangeQueries:
    def test_range_returns_sorted_window(self):
        view = StateView({"a1": 1, "a2": 2, "b1": 3}, {"a1": 1, "a2": 1, "b1": 1})
        assert view.get_range("a", "b") == {"a1": 1, "a2": 2}

    def test_range_sees_own_writes_and_deletes(self):
        view = StateView({"a1": 1, "a2": 2}, {"a1": 1, "a2": 1})
        view.put("a3", 3)
        view.delete("a1")
        assert view.get_range("a", "b") == {"a2": 2, "a3": 3}

    def test_range_records_reads_for_mvcc(self):
        view = StateView({"a1": 1}, {"a1": 7})
        view.get_range("a", "b")
        assert view.reads == {"a1": 7}
