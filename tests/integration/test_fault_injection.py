"""Fault injection across subsystem boundaries.

Tampering, partitions, equivocation, replay — every failure path a
production deployment would hit, exercised end-to-end.
"""

from __future__ import annotations

import pytest

from repro.common.errors import (
    DeliveryError,
    DoubleSpendError,
    EndorsementError,
    MPCError,
    ProofError,
    ValidationError,
)
from repro.crypto.mpc import AdditiveSharingProtocol
from repro.execution.contracts import SmartContract
from repro.ledger.transaction import Endorsement, Transaction, WriteEntry
from repro.platforms.corda import Command, ContractState, CordaNetwork
from repro.platforms.fabric import FabricNetwork


class TestFabricFaults:
    @pytest.fixture
    def net(self):
        network = FabricNetwork(seed="fault-fabric")
        for org in ("Org1", "Org2"):
            network.onboard(org)
        network.create_channel("ch", ["Org1", "Org2"])

        def put(view, args):
            view.put(args["key"], args["value"])
            return args["value"]

        contract = SmartContract("cc", 1, "python-chaincode", {"put": put})
        network.deploy_chaincode("ch", contract, ["Org1", "Org2"])
        return network

    def test_partition_blocks_endorsement(self, net):
        net.network.partition("Org1", "Org2")
        with pytest.raises(DeliveryError, match="partition"):
            net.invoke("ch", "Org1", "cc", "put", {"key": "k", "value": 1})

    def test_healed_partition_recovers(self, net):
        net.network.partition("Org1", "Org2")
        net.network.heal("Org1", "Org2")
        result = net.invoke("ch", "Org1", "cc", "put", {"key": "k", "value": 1})
        assert result.valid

    def test_divergent_endorser_detected(self, net):
        # Install a different version on Org2 that writes different data.
        def evil_put(view, args):
            view.put(args["key"], "corrupted")
            return "corrupted"

        evil = SmartContract("cc", 1, "python-chaincode", {"put": evil_put})
        net.engine.registry.install("Org2", evil)
        with pytest.raises(EndorsementError, match="divergent"):
            net.invoke("ch", "Org1", "cc", "put", {"key": "k", "value": 1})

    def test_chain_remains_verifiable_after_faults(self, net):
        net.invoke("ch", "Org1", "cc", "put", {"key": "k", "value": 1})
        try:
            net.network.partition("Org1", "Org2")
            net.invoke("ch", "Org1", "cc", "put", {"key": "j", "value": 2})
        except DeliveryError:
            pass
        net.channel("ch").chain.verify()
        assert net.channel("ch").replicas_consistent()


class TestCordaFaults:
    @pytest.fixture
    def net(self):
        network = CordaNetwork(seed="fault-corda")
        for org in ("Alice", "Bob"):
            network.onboard(org)
        network.register_contract("iou", lambda wire: None)
        return network

    def _issue(self, net):
        state = ContractState("iou", ("Alice", "Bob"), {"amount": 1})
        wire = net.build_transaction(
            inputs=[], outputs=[state],
            commands=[Command(name="Issue", signers=("Alice", "Bob"))],
        )
        return net.run_flow("Alice", wire)

    def test_replayed_spend_rejected(self, net):
        issued = self._issue(net)
        spend = net.build_transaction(
            inputs=[issued.output_refs[0]],
            outputs=[ContractState("iou", ("Alice", "Bob"), {"amount": 1, "n": 1})],
            commands=[Command(name="Move", signers=("Alice", "Bob"))],
        )
        net.run_flow("Alice", spend)
        replay = net.build_transaction(
            inputs=[issued.output_refs[0]],
            outputs=[ContractState("iou", ("Alice", "Bob"), {"amount": 1, "n": 2})],
            commands=[Command(name="Move", signers=("Alice", "Bob"))],
        )
        with pytest.raises(DoubleSpendError):
            net.run_flow("Alice", replay)

    def test_missing_required_signature_rejected(self, net):
        state = ContractState("iou", ("Alice", "Bob"), {"amount": 1})
        wire = net.build_transaction(
            inputs=[], outputs=[state],
            commands=[Command(name="Issue", signers=("Alice", "Bob", "ghost-key"))],
        )
        with pytest.raises(ValidationError, match="missing signatures"):
            net.run_flow("Alice", wire)

    def test_tampered_tear_off_rejected_by_notary(self, net):
        from repro.crypto.merkle import TearOff
        from repro.platforms.corda.transactions import (
            ComponentGroup,
            FilteredTransaction,
        )

        state = ContractState("iou", ("Alice", "Bob"), {"amount": 1})
        wire = net.build_transaction(
            inputs=[], outputs=[state],
            commands=[Command(name="Issue", signers=("Alice", "Bob"))],
        )
        honest = wire.filtered([ComponentGroup.INPUTS, ComponentGroup.NOTARY])
        forged = FilteredTransaction(
            tx_id=honest.tx_id,
            root=b"\x00" * 32,  # wrong root
            tear_off=honest.tear_off,
            revealed_groups=honest.revealed_groups,
        )
        with pytest.raises(ProofError):
            net.notary.notarise_filtered(forged)


class TestMPCFaults:
    def test_equivocation_aborts_before_result(self):
        protocol = AdditiveSharingProtocol(["a", "b", "c"])
        for name, value in {"a": 10, "b": 20, "c": 30}.items():
            protocol.set_input(name, value)
        protocol.run_share_phase()
        protocol.corrupt_share("b", "c", delta=7)
        partials = protocol.run_combine_phase()
        with pytest.raises(MPCError):
            protocol.run_reconstruct_phase(partials)


class TestLedgerTamperFaults:
    def test_endorsement_replay_across_transactions_fails(self, scheme):
        key = scheme.keygen_from_seed("replayer")
        tx1 = Transaction(
            channel="ch", submitter="a",
            writes=(WriteEntry(key="k", value=1),),
        )
        tx2 = Transaction(
            channel="ch", submitter="a",
            writes=(WriteEntry(key="k", value=999),),
        )
        signature = scheme.sign(key, tx1.signing_bytes())
        replayed = tx2.with_endorsements([Endorsement("a", signature)])
        from repro.ledger.validation import EndorsementPolicy, verify_endorsements

        with pytest.raises(EndorsementError):
            verify_endorsements(
                replayed, EndorsementPolicy.any_of(["a"]), scheme,
                lambda n: key.public,
            )
