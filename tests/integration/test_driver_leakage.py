"""Leakage regression: driver workloads stay within the audited envelope.

The L1 audit (``repro.core.audit``) pins each platform's confidential-
trade leakage profile with hand-written scenarios.  The unified pipeline
must not widen that envelope: a driver-generated confidential-trade
workload, pumped through ``submit_many``, has to leave uninvolved
parties and the ordering principal knowing exactly as much (by category)
as the audit baseline says they may.
"""

from __future__ import annotations

import pytest

from repro.core.audit import (
    CONFIDENTIAL_KEY,
    TRADING_PARTIES,
    UNINVOLVED,
    audit_all,
)
from repro.driver import Driver, DriverConfig, trade_scenario


def _ordering_observer(platform):
    return {
        "fabric": lambda: platform.orderer.observer,
        "corda": lambda: platform.notary.observer,
        "quorum": lambda: platform.sequencer.observer,
    }[platform.platform_name]()


def _driver_profile(platform_name: str) -> dict:
    """Leakage categories after an all-confidential driver trade run."""
    scenario = trade_scenario(
        platform_name, 10, confidential_fraction=1.0, seed="leakage"
    )
    report = Driver(scenario.platform, DriverConfig(batch_size=5)).run(
        scenario.requests
    )
    assert report.failed == 0
    platform = scenario.platform
    platform.network.run()
    uninvolved_identity_leak = False
    uninvolved_data_leak = False
    for org in UNINVOLVED:
        observer = platform.network.node(org).observer
        if observer.seen_identities & set(TRADING_PARTIES):
            uninvolved_identity_leak = True
        if CONFIDENTIAL_KEY in observer.seen_data_keys:
            uninvolved_data_leak = True
    ordering = _ordering_observer(platform)
    return {
        "uninvolved_sees_identities": uninvolved_identity_leak,
        "uninvolved_sees_data": uninvolved_data_leak,
        "orderer_sees_identities": bool(
            ordering.seen_identities & set(TRADING_PARTIES)
        ),
        "orderer_sees_data": CONFIDENTIAL_KEY in ordering.seen_data_keys,
    }


@pytest.fixture(scope="module")
def audit_baseline() -> dict:
    """The audited envelope, in the same category booleans."""
    baseline = {}
    for report in audit_all(seed="driver-leakage-baseline"):
        row = report.summary_row()
        baseline[row["platform"]] = {
            "uninvolved_sees_identities": row["uninvolved_identity_leaks"] > 0,
            "uninvolved_sees_data": row["uninvolved_data_leaks"] > 0,
            "orderer_sees_identities": row["orderer_sees_identities"],
            "orderer_sees_data": row["orderer_sees_data"],
        }
    return baseline


@pytest.mark.parametrize("platform_name", ("fabric", "corda", "quorum"))
def test_driver_trades_match_audited_envelope(platform_name, audit_baseline):
    assert _driver_profile(platform_name) == audit_baseline[platform_name]


def test_confidential_price_reaches_all_trading_parties():
    """The price is scoped, not dropped: both traders can read it."""
    scenario = trade_scenario(
        "fabric", 6, confidential_fraction=1.0, seed="leakage-pos"
    )
    Driver(scenario.platform, DriverConfig(batch_size=6)).run(
        scenario.requests
    )
    channel = scenario.platform.channel("trade-ab")
    for org in TRADING_PARTIES:
        assert channel.state_of(org).get(CONFIDENTIAL_KEY) is not None


def test_quorum_private_price_confined_to_participants():
    """Quorum private state holds the price only at the two traders."""
    scenario = trade_scenario(
        "quorum", 6, confidential_fraction=1.0, seed="leakage-q"
    )
    Driver(scenario.platform, DriverConfig(batch_size=6)).run(
        scenario.requests
    )
    platform = scenario.platform
    platform.network.run()
    holders = {
        org for org in platform.parties
        if platform.private_states[org].exists(CONFIDENTIAL_KEY)
    }
    assert holders == set(TRADING_PARTIES)
