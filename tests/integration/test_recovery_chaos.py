"""The ISSUE 4 acceptance scenario: crash mid-lifecycle, recover, converge.

One node per platform is crashed in the middle of the letter-of-credit
lifecycle while a fault plan injects loss, latency, and a timed
partition.  After checkpoint-recover-catch-up the convergence audit must
report zero divergence, the lifecycle must have completed everywhere, and
nobody's knowledge — not the recovered node's, not the outsider's — may
have widened beyond entitlement.
"""

from __future__ import annotations

import pytest

from repro.recovery.scenario import (
    run_all_recovery_scenarios,
    run_recovery_scenario,
)


@pytest.fixture(scope="module")
def results():
    return {r.platform_name: r for r in run_all_recovery_scenarios()}


class TestChaosRecovery:
    def test_all_platforms_pass(self, results):
        assert sorted(results) == ["corda", "fabric", "quorum"]
        for result in results.values():
            assert result.ok, result.render()

    def test_zero_divergence_after_recovery(self, results):
        for result in results.values():
            assert result.report.converged, result.report.render()
            assert result.report.divergences == []

    def test_lifecycle_completed_everywhere(self, results):
        for result in results.values():
            assert set(result.statuses.values()) == {"paid"}

    def test_no_entitlement_widened(self, results):
        for result in results.values():
            assert result.leak_ok, result.leak_findings
            assert result.leak_findings == []

    def test_checkpoint_was_used(self, results):
        for result in results.values():
            assert result.checkpoint_sequence == 1

    def test_recovery_metrics_recorded(self, results):
        for result in results.values():
            summary = result.summary
            assert summary["recovery.crashes"] == 1
            assert summary["recovery.recoveries"] == 1
            assert summary["recovery.checkpoint.saved"] >= 1
            assert summary["recovery.catchup.shipped"] >= 1

    def test_render_is_reviewable(self, results):
        for result in results.values():
            rendered = result.render()
            assert "verdict: OK" in rendered
            assert "CONVERGED" in rendered


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        first = run_recovery_scenario("fabric", seed="repeat")
        second = run_recovery_scenario("fabric", seed="repeat")
        assert first.render() == second.render()
        assert first.summary == second.summary

    def test_different_seed_still_converges(self):
        """Resilience is not seed luck: another draw also recovers."""
        result = run_recovery_scenario("quorum", seed="other-draw")
        assert result.ok, result.render()
