"""Integration: the same logical trade on all three platforms.

Asserts the business outcome is identical everywhere while the privacy
footprint differs exactly as the paper describes — the central claim of
Section 5.
"""

from __future__ import annotations

import pytest

from repro.execution.contracts import SmartContract
from repro.platforms.corda import Command, ContractState, CordaNetwork
from repro.platforms.fabric import FabricNetwork
from repro.platforms.quorum import QuorumNetwork

PARTIES = ("Acme", "Globex")
OUTSIDER = "Initech"
TRADE = {"sku": "widget-9", "quantity": 100, "price": 250}


def run_on_fabric():
    net = FabricNetwork(seed="xp-fabric")
    for org in PARTIES + (OUTSIDER,):
        net.onboard(org)
    net.create_channel("trade", list(PARTIES))

    def record(view, args):
        view.put("trade/1", args["trade"])
        return args["trade"]

    contract = SmartContract("trade-cc", 1, "python-chaincode", {"record": record})
    net.deploy_chaincode("trade", contract, list(PARTIES))
    net.invoke("trade", "Acme", "trade-cc", "record", {"trade": TRADE})
    net.network.run()
    recorded = net.channel("trade").state_of("Globex").get("trade/1")
    outsider_knowledge = net.network.node(OUTSIDER).observer.knowledge()
    return recorded, outsider_knowledge


def run_on_corda():
    net = CordaNetwork(seed="xp-corda")
    for org in PARTIES + (OUTSIDER,):
        net.onboard(org)
    net.register_contract("trade-contract", lambda wire: None)
    state = ContractState("trade-contract", PARTIES, dict(TRADE))
    wire = net.build_transaction(
        inputs=[], outputs=[state],
        commands=[Command(name="Trade", signers=PARTIES)],
    )
    result = net.run_flow("Acme", wire)
    net.network.run()
    recorded = net.vault("Globex").state_at(result.output_refs[0]).data
    outsider_knowledge = net.network.node(OUTSIDER).observer.knowledge()
    return recorded, outsider_knowledge


def run_on_quorum():
    net = QuorumNetwork(seed="xp-quorum")
    for org in PARTIES + (OUTSIDER,):
        net.onboard(org)

    def record(view, args):
        view.put("trade/1", args["trade"])
        return args["trade"]

    contract = SmartContract("trade-evm", 1, "evm-solidity", {"record": record})
    net.deploy_contract("Acme", contract, private_for=list(PARTIES))
    net.send_private_transaction(
        "Acme", "trade-evm", "record", {"trade": TRADE}, private_for=["Globex"]
    )
    net.network.run()
    recorded = net.private_states["Globex"].get("trade/1")
    outsider_knowledge = net.network.node(OUTSIDER).observer.knowledge()
    return recorded, outsider_knowledge


@pytest.fixture(scope="module")
def outcomes():
    return {
        "fabric": run_on_fabric(),
        "corda": run_on_corda(),
        "quorum": run_on_quorum(),
    }


class TestBusinessEquivalence:
    def test_identical_recorded_trade_everywhere(self, outcomes):
        recorded = {name: result[0] for name, result in outcomes.items()}
        assert recorded["fabric"] == TRADE
        assert recorded["corda"] == TRADE
        assert recorded["quorum"] == TRADE


class TestPrivacyFootprints:
    def test_fabric_and_corda_hide_everything_from_outsider(self, outcomes):
        for platform in ("fabric", "corda"):
            knowledge = outcomes[platform][1]
            assert knowledge["identities"] == []
            assert knowledge["data_keys"] == []

    def test_quorum_leaks_participants_but_not_data(self, outcomes):
        knowledge = outcomes["quorum"][1]
        assert set(PARTIES) <= set(knowledge["identities"])
        assert knowledge["data_keys"] == []

    def test_data_keys_never_leak_anywhere(self, outcomes):
        for platform, (__, knowledge) in outcomes.items():
            assert "trade/1" not in knowledge["data_keys"], platform
