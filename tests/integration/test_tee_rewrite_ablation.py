"""Ablation: what the Fabric-TEE rewrite Table 1 rules out would buy.

Table 1 marks TEEs '-' on every platform: integrating enclaves means
rewriting the execution path.  This test performs exactly that rewrite on
the simulation — swapping the peer's LedgerEngine for the TEEEngine — and
measures what changes: the node administrator's view collapses from
(code, data) to ciphertext sizes, while the business outcome is
unchanged.  The default platform remains un-rewritten (the probe still
reports '-'); this is the counterfactual the paper's Section 2.2/3.3
discussion anticipates.
"""

from __future__ import annotations

import pytest

from repro.execution.contracts import SmartContract
from repro.execution.engines import LedgerEngine, TEEEngine


def make_contract():
    def settle(view, args):
        view.put(f"trade/{args['id']}", {
            "price": args["price"], "status": "settled",
        })
        return "settled"

    return SmartContract(
        "settlement", 1, "python-chaincode", {"settle": settle}
    )


STATE = {"trade/0": {"price": 99, "status": "open"}}
VERSIONS = {"trade/0": 1}
ARGS = {"id": 1, "price": 101}


class TestRewriteCounterfactual:
    def test_same_business_outcome(self):
        ledger = LedgerEngine()
        ledger.install("peer", make_contract())
        tee = TEEEngine()
        tee.install("peer", make_contract())
        before = ledger.execute("peer", "settlement", "settle", ARGS,
                                dict(STATE), dict(VERSIONS))
        after = tee.execute("peer", "settlement", "settle", ARGS,
                            dict(STATE), dict(VERSIONS))
        assert before.return_value == after.return_value == "settled"
        assert before.writes == after.writes

    def test_admin_view_collapses_to_ciphertext(self):
        ledger = LedgerEngine()
        ledger.install("peer", make_contract())
        ledger.execute("peer", "settlement", "settle", ARGS,
                       dict(STATE), dict(VERSIONS))
        admin_before = ledger.admin_observers["peer"]
        assert "settlement" in admin_before.seen_code_ids
        assert any(k.startswith("trade/") for k in admin_before.seen_data_keys)

        tee = TEEEngine()
        tee.install("peer", make_contract())
        tee.execute("peer", "settlement", "settle", ARGS,
                    dict(STATE), dict(VERSIONS))
        admin_after = tee.admin_view("peer", "settlement")
        # Nothing but operation names and byte counts.
        assert all(set(entry) == {"operation", "bytes"} for entry in admin_after)
        assert not any(
            "trade" in str(entry.values()) for entry in admin_after
        )

    def test_default_platform_still_reports_rewrite(self):
        """The rewrite is a counterfactual; the shipped probe stays '-'."""
        from repro.core.mechanisms import Mechanism
        from repro.platforms.base import SupportLevel
        from repro.platforms.fabric import FabricNetwork

        net = FabricNetwork(seed="tee-ablation")
        result = net.probe(Mechanism.TRUSTED_EXECUTION_ENVIRONMENT)
        assert result.level is SupportLevel.REWRITE

    def test_attestation_gates_results(self):
        """The rewrite's safety property: a relying party can insist on a
        known code measurement before trusting a result."""
        from repro.common.errors import AttestationError
        from repro.crypto.tee import measure_code

        tee = TEEEngine()
        tee.install("peer", make_contract())
        honest_measurement = tee.measurement_of("peer", "settlement")

        def evil(view, args):
            view.put(f"trade/{args['id']}", {"price": 0, "status": "settled"})
            return "settled"

        evil_contract = SmartContract(
            "settlement", 1, "python-chaincode", {"settle": evil}
        )
        tee2 = TEEEngine(manufacturer=tee.manufacturer)
        tee2.install("peer", evil_contract)
        assert tee2.measurement_of("peer", "settlement") != honest_measurement
