"""Chaos scenarios: the letter-of-credit use case under injected faults.

Section 3.4's ordering-service feasibility question only has content under
faults, so each platform simulation runs the LoC lifecycle under every
fault class — silent loss, latency spikes, partitions, node crashes, and
ordering-service outages — asserting two properties:

- **liveness**: the flow either commits after the fault heals, or fails
  with a *typed* error (never a silent wrong result, never double-apply);
- **privacy invariance**: faults must never widen any observer's
  knowledge — the L1 leakage audit reports identical results with faults
  on and off.
"""

from __future__ import annotations

import pytest

from repro.common.errors import DeliveryError, DeliveryTimeout, OrderingError
from repro.core.audit import audit_all
from repro.faults.plan import FaultPlan
from repro.platforms.corda.network import NOTARY_NODE, CordaNetwork
from repro.platforms.fabric.network import ORDERER_NODE, FabricNetwork
from repro.platforms.quorum.network import SEQUENCER_NODE, QuorumNetwork
from repro.usecases.letter_of_credit import LetterOfCreditWorkflow
from repro.usecases.letter_of_credit_multi import (
    CordaLetterOfCredit,
    QuorumLetterOfCredit,
)


def fabric_workflow(**network_kwargs) -> LetterOfCreditWorkflow:
    wf = LetterOfCreditWorkflow(
        network=FabricNetwork(seed="chaos-fabric", **network_kwargs)
    )
    wf.setup(extra_network_members=("OutsiderCo",))
    return wf


def corda_workflow(**network_kwargs) -> CordaLetterOfCredit:
    wf = CordaLetterOfCredit(
        network=CordaNetwork(seed="chaos-corda", **network_kwargs)
    )
    wf.setup(extra_network_members=("OutsiderCo",))
    return wf


def quorum_workflow(**network_kwargs) -> QuorumLetterOfCredit:
    wf = QuorumLetterOfCredit(
        network=QuorumNetwork(seed="chaos-quorum", **network_kwargs)
    )
    wf.setup(extra_network_members=("OutsiderCo",))
    return wf


class TestFabricChaos:
    def test_orderer_outage_then_recovery(self):
        """Crash the orderer mid-lifecycle; work resumes after recovery."""
        wf = fabric_workflow()
        wf.apply_for_credit("LC-1", amount=1000, buyer_passport="P-1")
        wf.network.crash_ordering()
        with pytest.raises(OrderingError, match="down"):
            wf.issue("LC-1")
        wf.network.recover_ordering()
        assert wf.issue("LC-1") == "issued"
        wf.ship("LC-1")
        assert wf.pay("LC-1") == "paid"

    def test_partition_to_orderer_heals(self):
        """The submitter-to-orderer link is cut, then healed."""
        wf = fabric_workflow()
        wf.network.network.partition("BuyerCo", ORDERER_NODE)
        with pytest.raises(DeliveryError, match="partition"):
            wf.apply_for_credit("LC-2", amount=1000, buyer_passport="P-2")
        wf.network.network.heal("BuyerCo", ORDERER_NODE)
        wf.apply_for_credit("LC-2", amount=1000, buyer_passport="P-2")
        wf.issue("LC-2")
        wf.ship("LC-2")
        assert wf.status_of("LC-2", "SellerCo") == "shipped"

    def test_node_crash_window_blocks_then_recovers(self):
        """A party is down for a window; its actions resume afterwards."""
        wf = fabric_workflow()
        wf.apply_for_credit("LC-3", amount=1000, buyer_passport="P-3")
        wf.issue("LC-3")
        now = wf.network.clock.now
        wf.network.inject_faults(
            FaultPlan().crash_node("SellerCo", start=now, end=now + 1.0)
        )
        with pytest.raises(DeliveryError, match="down"):
            wf.ship("LC-3")  # the seller's sends are refused while down
        wf.network.clock.advance_to(now + 1.0)
        assert wf.ship("LC-3") == "shipped"
        assert wf.pay("LC-3") == "paid"

    def test_resilient_delivery_rides_out_transient_partition(self):
        """With resilient delivery on, a timed partition is retried away."""
        wf = fabric_workflow(resilient_delivery=True)
        wf.network.inject_faults(
            FaultPlan().partition_between("BuyerCo", ORDERER_NODE, start=0.0, end=0.2)
        )
        loc = wf.apply_for_credit("LC-4", amount=1000, buyer_passport="P-4")
        assert loc.status == "applied"
        assert wf.network.network.stats.retries > 0

    def test_resilient_delivery_surfaces_permanent_fault_as_typed_error(self):
        wf = fabric_workflow(resilient_delivery=True)
        wf.network.network.partition("BuyerCo", ORDERER_NODE)  # never heals
        with pytest.raises(DeliveryTimeout):
            wf.apply_for_credit("LC-5", amount=1000, buyer_passport="P-5")


class TestCordaChaos:
    def test_notary_outage_then_recovery(self):
        wf = corda_workflow()
        wf.apply_for_credit("LC-C1", amount=1000, buyer_passport="P-1")
        wf.network.crash_ordering()
        with pytest.raises(OrderingError, match="down"):
            wf.advance("IssuingBank", "LC-C1")
        wf.network.recover_ordering()
        assert wf.advance("IssuingBank", "LC-C1") == "issued"
        wf.advance("SellerCo", "LC-C1")
        assert wf.advance("IssuingBank", "LC-C1") == "paid"

    def test_partition_to_notary_heals(self):
        wf = corda_workflow()
        wf.network.network.partition("BuyerCo", NOTARY_NODE)
        with pytest.raises(DeliveryError, match="partition"):
            wf.apply_for_credit("LC-C2", amount=1000, buyer_passport="P-2")
        wf.network.network.heal("BuyerCo", NOTARY_NODE)
        assert wf.run_full_lifecycle("LC-C2") == "paid"

    def test_latency_spike_does_not_block_commit(self):
        wf = corda_workflow()
        wf.network.inject_faults(FaultPlan().slow_all(10.0))
        assert wf.run_full_lifecycle("LC-C3") == "paid"
        wf.network.network.run()
        assert wf.status_of("LC-C3", "SellerCo") == "paid"

    def test_resilient_delivery_rides_out_transient_partition(self):
        wf = corda_workflow(resilient_delivery=True)
        wf.network.inject_faults(
            FaultPlan().partition_between("BuyerCo", NOTARY_NODE, start=0.0, end=0.2)
        )
        result = wf.apply_for_credit("LC-C4", amount=1000, buyer_passport="P-4")
        assert result.receipt is not None
        assert wf.network.network.stats.retries > 0


class TestQuorumChaos:
    def test_sequencer_crash_fails_before_state_mutation(self):
        """An outage mid-lifecycle cannot half-apply a transaction."""
        wf = quorum_workflow()
        wf.apply_for_credit("LC-Q1", amount=1000)
        wf.network.crash_ordering()
        with pytest.raises(OrderingError, match="down"):
            wf.advance("IssuingBank", "LC-Q1")
        # No participant's private state moved: the retry cannot double-apply.
        for party in ("BuyerCo", "SellerCo", "IssuingBank"):
            assert wf.status_of("LC-Q1", party) == "applied"
        wf.network.recover_ordering()
        wf.advance("IssuingBank", "LC-Q1")
        for party in ("BuyerCo", "SellerCo", "IssuingBank"):
            assert wf.status_of("LC-Q1", party) == "issued"

    def test_partition_between_parties_heals(self):
        wf = quorum_workflow()
        wf.apply_for_credit("LC-Q2", amount=1000)
        wf.network.network.partition("IssuingBank", "BuyerCo")
        with pytest.raises(DeliveryError, match="partition"):
            wf.advance("IssuingBank", "LC-Q2")
        assert wf.status_of("LC-Q2", "BuyerCo") == "applied"  # consistent
        wf.network.network.heal("IssuingBank", "BuyerCo")
        wf.advance("IssuingBank", "LC-Q2")
        assert wf.status_of("LC-Q2", "BuyerCo") == "issued"

    def test_silent_loss_does_not_corrupt_lifecycle(self):
        wf = quorum_workflow()
        wf.network.network.drop_probability = 0.5
        assert wf.run_full_lifecycle("LC-Q3") == "paid"
        for party in ("BuyerCo", "SellerCo", "IssuingBank"):
            assert wf.status_of("LC-Q3", party) == "paid"

    def test_timed_sequencer_outage_heals_by_window_end(self):
        wf = quorum_workflow()
        wf.network.inject_faults(
            FaultPlan().orderer_outage(SEQUENCER_NODE, start=0.0, end=1.0)
        )
        with pytest.raises(OrderingError, match="down"):
            wf.apply_for_credit("LC-Q4", amount=1000)
        wf.network.clock.advance_to(1.0)
        wf.apply_for_credit("LC-Q4", amount=1000)
        assert wf.status_of("LC-Q4", "SellerCo") == "applied"


class TestPrivacyInvarianceUnderFaults:
    """Faults must never widen what any observer learns (the L1 audit)."""

    def test_audit_reports_identical_with_faults_on(self):
        # Latency spikes everywhere, plus a partitioned and fully lossy
        # link between two uninvolved orgs: disruptive, but none of it may
        # change a single principal's accumulated knowledge.
        plan = (
            FaultPlan()
            .slow_all(8.0)
            .partition_between("OrgC", "OrgD")
            .set_link_loss("OrgC", "OrgD", 1.0)
        )
        clean = audit_all(seed="chaos-audit")
        faulted = audit_all(seed="chaos-audit", fault_plan=plan)
        for clean_report, faulted_report in zip(clean, faulted):
            assert clean_report.platform == faulted_report.platform
            assert clean_report.summary_row() == faulted_report.summary_row()
            for clean_k, faulted_k in zip(
                clean_report.uninvolved, faulted_report.uninvolved
            ):
                assert faulted_k.identities == clean_k.identities
                assert faulted_k.data_keys == clean_k.data_keys
                assert faulted_k.code_ids == clean_k.code_ids
            assert (
                faulted_report.ordering_principal.identities
                == clean_report.ordering_principal.identities
            )
            assert (
                faulted_report.ordering_principal.data_keys
                == clean_report.ordering_principal.data_keys
            )

    def test_uninvolved_orgs_stay_ignorant_under_faults(self):
        plan = FaultPlan().slow_all(4.0)
        for report in audit_all(seed="chaos-audit-2", fault_plan=plan):
            if report.platform == "quorum":
                continue  # participant-list broadcast is a platform leak
            assert report.uninvolved_identity_leaks() == 0
            assert report.uninvolved_data_leaks() == 0
