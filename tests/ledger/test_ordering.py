"""Ordering services: visibility, batching, the service-time model."""

from __future__ import annotations

import pytest

from repro.common.clock import SimClock
from repro.common.errors import OrderingError
from repro.ledger.ordering import (
    OrdererProfile,
    OrdererVisibility,
    OrderingService,
    make_private_orderer,
)
from repro.ledger.transaction import Transaction, WriteEntry


def make_tx(channel="ch", submitter="alice", key="k"):
    return Transaction(
        channel=channel, submitter=submitter,
        writes=(WriteEntry(key=key, value=1),),
        metadata={"participants": [submitter, "bob"]},
    )


@pytest.fixture
def orderer(clock):
    return OrderingService("ord", clock)


class TestVisibility:
    def test_full_visibility_sees_parties_and_data(self, orderer):
        """Paper S3.4: the ordering service sees parties and details."""
        orderer.submit(make_tx())
        assert "alice" in orderer.observer.seen_identities
        assert "bob" in orderer.observer.seen_identities
        assert "k" in orderer.observer.seen_data_keys

    def test_hash_only_sees_nothing(self, clock):
        orderer = OrderingService(
            "blind", clock, visibility=OrdererVisibility.HASH_ONLY
        )
        orderer.submit(make_tx())
        assert orderer.observer.seen_identities == set()
        assert orderer.observer.seen_data_keys == set()
        assert orderer.observer.messages_observed == 1

    def test_knowledge_accumulates_across_channels(self, orderer):
        """The shared-orderer leak: one service, many channels."""
        orderer.submit(make_tx(channel="ch1", submitter="org1", key="k1"))
        orderer.submit(make_tx(channel="ch2", submitter="org2", key="k2"))
        assert {"org1", "org2"} <= orderer.observer.seen_identities
        assert {"k1", "k2"} <= orderer.observer.seen_data_keys


class TestBatching:
    def test_cut_batch_orders_pending(self, orderer):
        orderer.submit(make_tx(key="a"))
        orderer.submit(make_tx(key="b"))
        batch = orderer.cut_batch("ch")
        assert len(batch.transactions) == 2
        assert orderer.pending_count("ch") == 0

    def test_cut_empty_channel_rejected(self, orderer):
        with pytest.raises(OrderingError):
            orderer.cut_batch("ch")

    def test_max_batch_size_respected(self, clock):
        orderer = OrderingService(
            "ord", clock, profile=OrdererProfile(max_batch_size=2)
        )
        for __ in range(5):
            orderer.submit(make_tx())
        batches = orderer.drain_channel("ch")
        assert [len(b.transactions) for b in batches] == [2, 2, 1]

    def test_channels_are_independent_queues(self, orderer):
        orderer.submit(make_tx(channel="ch1"))
        orderer.submit(make_tx(channel="ch2"))
        assert orderer.pending_count("ch1") == 1
        batch = orderer.cut_batch("ch1")
        assert batch.channel == "ch1"
        assert orderer.pending_count("ch2") == 1

    def test_sequence_numbers_increase(self, orderer):
        orderer.submit(make_tx(channel="ch1"))
        orderer.submit(make_tx(channel="ch2"))
        b1 = orderer.cut_batch("ch1")
        b2 = orderer.cut_batch("ch2")
        assert b2.sequence == b1.sequence + 1


class TestServiceTimeModel:
    def test_release_time_reflects_capacity(self, clock):
        orderer = OrderingService(
            "ord", clock, profile=OrdererProfile(capacity_tps=100)
        )
        for __ in range(10):
            orderer.submit(make_tx())
        batch = orderer.cut_batch("ch")
        assert batch.released_at == pytest.approx(10 / 100)

    def test_shared_bottleneck_across_channels(self, clock):
        """A second channel's batch queues behind the first channel's work."""
        orderer = OrderingService(
            "ord", clock, profile=OrdererProfile(capacity_tps=100)
        )
        for __ in range(10):
            orderer.submit(make_tx(channel="ch1"))
        for __ in range(10):
            orderer.submit(make_tx(channel="ch2"))
        first = orderer.cut_batch("ch1")
        second = orderer.cut_batch("ch2")
        assert second.released_at == pytest.approx(first.released_at + 0.1)

    def test_total_ordered_counter(self, orderer):
        for __ in range(3):
            orderer.submit(make_tx())
        orderer.cut_batch("ch")
        assert orderer.total_ordered == 3


class TestOperators:
    def test_third_party_not_member_operated(self, orderer):
        assert not orderer.is_member_operated({"alice", "bob"})

    def test_private_orderer_is_member_operated(self, clock):
        """Table 1 Misc row: private sequencing service possible."""
        orderer = make_private_orderer("alice", clock)
        assert orderer.is_member_operated({"alice", "bob"})
        assert orderer.operator == "alice"

    def test_private_orderer_still_sees_everything(self, clock):
        """Running it yourself contains the leak; it does not remove it."""
        orderer = make_private_orderer("alice", clock)
        orderer.submit(make_tx())
        assert "bob" in orderer.observer.seen_identities
