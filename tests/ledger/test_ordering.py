"""Ordering services: visibility, batching, the service-time model."""

from __future__ import annotations

import pytest

from repro.common.clock import SimClock
from repro.common.errors import OrderingError
from repro.ledger.ordering import (
    OrdererProfile,
    OrdererVisibility,
    OrderingService,
    make_private_orderer,
)
from repro.ledger.transaction import Transaction, WriteEntry


def make_tx(channel="ch", submitter="alice", key="k"):
    return Transaction(
        channel=channel, submitter=submitter,
        writes=(WriteEntry(key=key, value=1),),
        metadata={"participants": [submitter, "bob"]},
    )


@pytest.fixture
def orderer(clock):
    return OrderingService("ord", clock)


class TestVisibility:
    def test_full_visibility_sees_parties_and_data(self, orderer):
        """Paper S3.4: the ordering service sees parties and details."""
        orderer.submit(make_tx())
        assert "alice" in orderer.observer.seen_identities
        assert "bob" in orderer.observer.seen_identities
        assert "k" in orderer.observer.seen_data_keys

    def test_hash_only_sees_nothing(self, clock):
        orderer = OrderingService(
            "blind", clock, visibility=OrdererVisibility.HASH_ONLY
        )
        orderer.submit(make_tx())
        assert orderer.observer.seen_identities == set()
        assert orderer.observer.seen_data_keys == set()
        assert orderer.observer.messages_observed == 1

    def test_knowledge_accumulates_across_channels(self, orderer):
        """The shared-orderer leak: one service, many channels."""
        orderer.submit(make_tx(channel="ch1", submitter="org1", key="k1"))
        orderer.submit(make_tx(channel="ch2", submitter="org2", key="k2"))
        assert {"org1", "org2"} <= orderer.observer.seen_identities
        assert {"k1", "k2"} <= orderer.observer.seen_data_keys


class TestBatching:
    def test_cut_batch_orders_pending(self, orderer):
        orderer.submit(make_tx(key="a"))
        orderer.submit(make_tx(key="b"))
        batch = orderer.cut_batch("ch")
        assert len(batch.transactions) == 2
        assert orderer.pending_count("ch") == 0

    def test_cut_empty_channel_rejected(self, orderer):
        with pytest.raises(OrderingError):
            orderer.cut_batch("ch")

    def test_max_batch_size_respected(self, clock):
        orderer = OrderingService(
            "ord", clock, profile=OrdererProfile(max_batch_size=2)
        )
        for __ in range(5):
            orderer.submit(make_tx())
        batches = orderer.drain_channel("ch")
        assert [len(b.transactions) for b in batches] == [2, 2, 1]

    def test_channels_are_independent_queues(self, orderer):
        orderer.submit(make_tx(channel="ch1"))
        orderer.submit(make_tx(channel="ch2"))
        assert orderer.pending_count("ch1") == 1
        batch = orderer.cut_batch("ch1")
        assert batch.channel == "ch1"
        assert orderer.pending_count("ch2") == 1

    def test_sequence_numbers_increase(self, orderer):
        orderer.submit(make_tx(channel="ch1"))
        orderer.submit(make_tx(channel="ch2"))
        b1 = orderer.cut_batch("ch1")
        b2 = orderer.cut_batch("ch2")
        assert b2.sequence == b1.sequence + 1


class TestServiceTimeModel:
    def test_release_time_reflects_capacity(self, clock):
        orderer = OrderingService(
            "ord", clock,
            profile=OrdererProfile(capacity_tps=100, batch_timeout=0.0),
        )
        for __ in range(10):
            orderer.submit(make_tx())
        batch = orderer.cut_batch("ch")
        assert batch.released_at == pytest.approx(10 / 100)

    def test_shared_bottleneck_across_channels(self, clock):
        """A second channel's batch queues behind the first channel's work."""
        orderer = OrderingService(
            "ord", clock,
            profile=OrdererProfile(capacity_tps=100, batch_timeout=0.0),
        )
        for __ in range(10):
            orderer.submit(make_tx(channel="ch1"))
        for __ in range(10):
            orderer.submit(make_tx(channel="ch2"))
        first = orderer.cut_batch("ch1")
        second = orderer.cut_batch("ch2")
        assert second.released_at == pytest.approx(first.released_at + 0.1)

    def test_total_ordered_counter(self, orderer):
        for __ in range(3):
            orderer.submit(make_tx())
        orderer.cut_batch("ch")
        assert orderer.total_ordered == 3


class TestBatchTimeout:
    """Regression: batch_timeout was defined but never read."""

    def test_partial_batch_waits_for_timeout(self, clock):
        orderer = OrderingService(
            "ord", clock,
            profile=OrdererProfile(
                capacity_tps=100, max_batch_size=10, batch_timeout=0.5
            ),
        )
        orderer.submit(make_tx())  # 1 of 10: a partial batch
        batch = orderer.cut_batch("ch")
        # Released only once the oldest tx has waited batch_timeout.
        assert batch.released_at == pytest.approx(0.5 + 1 / 100)

    def test_full_batch_releases_immediately(self, clock):
        orderer = OrderingService(
            "ord", clock,
            profile=OrdererProfile(
                capacity_tps=100, max_batch_size=2, batch_timeout=5.0
            ),
        )
        orderer.submit(make_tx(key="a"))
        orderer.submit(make_tx(key="b"))
        batch = orderer.cut_batch("ch")
        assert batch.released_at == pytest.approx(2 / 100)  # no timeout wait

    def test_force_cut_skips_timeout(self, clock):
        orderer = OrderingService(
            "ord", clock,
            profile=OrdererProfile(
                capacity_tps=100, max_batch_size=10, batch_timeout=5.0
            ),
        )
        orderer.submit(make_tx())
        batch = orderer.cut_batch("ch", force=True)
        assert batch.released_at == pytest.approx(1 / 100)

    def test_timeout_already_expired_releases_now(self, clock):
        orderer = OrderingService(
            "ord", clock,
            profile=OrdererProfile(
                capacity_tps=100, max_batch_size=10, batch_timeout=0.5
            ),
        )
        orderer.submit(make_tx())
        clock.advance(2.0)  # the tx has waited far past the timeout
        batch = orderer.cut_batch("ch")
        assert batch.released_at == pytest.approx(0.5 + 1 / 100)

    def test_ready_to_cut_tracks_fill_and_age(self, clock):
        orderer = OrderingService(
            "ord", clock,
            profile=OrdererProfile(max_batch_size=2, batch_timeout=0.5),
        )
        assert not orderer.ready_to_cut("ch")  # empty
        orderer.submit(make_tx(key="a"))
        assert not orderer.ready_to_cut("ch")  # partial, young
        clock.advance(0.5)
        assert orderer.ready_to_cut("ch")  # partial, but timeout expired
        orderer.submit(make_tx(key="b"))
        assert orderer.ready_to_cut("ch")  # full

    def test_oldest_wait(self, clock):
        orderer = OrderingService("ord", clock)
        assert orderer.oldest_wait("ch") == 0.0
        orderer.submit(make_tx())
        clock.advance(0.3)
        assert orderer.oldest_wait("ch") == pytest.approx(0.3)


class TestCrashRecovery:
    def test_crashed_orderer_refuses_work(self, orderer):
        orderer.submit(make_tx())
        orderer.crash()
        with pytest.raises(OrderingError, match="down"):
            orderer.submit(make_tx())
        with pytest.raises(OrderingError, match="down"):
            orderer.cut_batch("ch")

    def test_durable_queue_survives_crash(self, clock):
        orderer = OrderingService("ord", clock, durable=True)
        orderer.submit(make_tx(key="a"))
        orderer.submit(make_tx(key="b"))
        orderer.crash()
        orderer.recover()
        assert orderer.pending_count("ch") == 2
        batch = orderer.cut_batch("ch", force=True)
        assert len(batch.transactions) == 2

    def test_non_durable_queue_is_lost(self, clock):
        orderer = OrderingService("ord", clock, durable=False)
        orderer.submit(make_tx())
        orderer.crash()
        orderer.recover()
        assert orderer.pending_count("ch") == 0
        with pytest.raises(OrderingError, match="no pending"):
            orderer.cut_batch("ch", force=True)

    def test_fault_plan_outage_window(self, clock):
        from repro.faults.plan import FaultPlan

        plan = FaultPlan().orderer_outage("ord", start=0.0, end=1.0)
        orderer = OrderingService("ord", clock, fault_plan=plan)
        assert not orderer.available()
        with pytest.raises(OrderingError, match="down"):
            orderer.submit(make_tx())
        clock.advance_to(1.0)
        assert orderer.available()
        orderer.submit(make_tx())  # back up


class TestOperators:
    def test_third_party_not_member_operated(self, orderer):
        assert not orderer.is_member_operated({"alice", "bob"})

    def test_private_orderer_is_member_operated(self, clock):
        """Table 1 Misc row: private sequencing service possible."""
        orderer = make_private_orderer("alice", clock)
        assert orderer.is_member_operated({"alice", "bob"})
        assert orderer.operator == "alice"

    def test_private_orderer_still_sees_everything(self, clock):
        """Running it yourself contains the leak; it does not remove it."""
        orderer = make_private_orderer("alice", clock)
        orderer.submit(make_tx())
        assert "bob" in orderer.observer.seen_identities


class TestNonDurableRecovery:
    """A non-durable orderer loses its queues on crash (satellite)."""

    @pytest.fixture
    def volatile(self, clock):
        return OrderingService("ord", clock, durable=False)

    def test_crash_drops_pending(self, volatile):
        volatile.submit(make_tx(key="a"))
        assert volatile.pending_count("ch") == 1
        volatile.crash()
        assert volatile.pending_count("ch") == 0

    def test_durable_crash_keeps_pending(self, orderer):
        orderer.submit(make_tx(key="a"))
        orderer.crash()
        assert orderer.pending_count("ch") == 1
        orderer.recover()
        batch = orderer.cut_batch("ch", force=True)
        assert len(batch.transactions) == 1

    def test_resubmission_works_after_recovery(self, volatile):
        volatile.submit(make_tx(key="a"))
        volatile.crash()
        with pytest.raises(OrderingError, match="down"):
            volatile.submit(make_tx(key="a"))
        volatile.recover()
        # The client's retry path: dropped work must be resubmitted.
        volatile.submit(make_tx(key="a"))
        batch = volatile.cut_batch("ch", force=True)
        assert [t.writes[0].key for t in batch.transactions] == ["a"]

    def test_batch_timeout_fires_after_recovery(self, volatile, clock):
        volatile.crash()
        volatile.recover()
        volatile.submit(make_tx(key="a"))
        assert not volatile.ready_to_cut("ch")
        clock.advance(volatile.profile.batch_timeout + 0.01)
        assert volatile.ready_to_cut("ch")
        batch = volatile.cut_batch("ch")
        assert len(batch.transactions) == 1
