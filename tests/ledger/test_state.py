"""World state: MVCC versions, history, deletion."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StateError
from repro.ledger.state import WorldState


@pytest.fixture
def state():
    return WorldState()


class TestBasicOps:
    def test_put_get(self, state):
        state.put("k", 1)
        assert state.get("k") == 1

    def test_missing_key_raises(self, state):
        with pytest.raises(StateError):
            state.get("missing")

    def test_get_or_default(self, state):
        assert state.get_or("missing", "fallback") == "fallback"
        state.put("k", None)
        assert state.get_or("k", "fallback") is None

    def test_exists(self, state):
        assert not state.exists("k")
        state.put("k", 1)
        assert state.exists("k")

    def test_keys_sorted(self, state):
        state.put("b", 1)
        state.put("a", 2)
        assert state.keys() == ["a", "b"]

    def test_items_iterates_sorted(self, state):
        state.put("b", 1)
        state.put("a", 2)
        assert list(state.items()) == [("a", 2), ("b", 1)]

    def test_len(self, state):
        assert len(state) == 0
        state.put("k", 1)
        assert len(state) == 1

    def test_snapshot_is_copy(self, state):
        state.put("k", 1)
        snap = state.snapshot()
        snap["k"] = 99
        assert state.get("k") == 1


class TestVersions:
    def test_unwritten_key_version_zero(self, state):
        assert state.version("nothing") == 0

    def test_versions_increment(self, state):
        assert state.put("k", "v1") == 1
        assert state.put("k", "v2") == 2
        assert state.version("k") == 2

    def test_independent_per_key(self, state):
        state.put("a", 1)
        state.put("a", 2)
        state.put("b", 1)
        assert state.version("a") == 2
        assert state.version("b") == 1


class TestHistory:
    def test_history_excludes_current(self, state):
        state.put("k", "v1")
        state.put("k", "v2")
        state.put("k", "v3")
        assert state.history("k") == ["v1", "v2"]

    def test_history_of_missing_key(self, state):
        with pytest.raises(StateError):
            state.history("missing")


class TestDeletion:
    def test_delete_removes_everything(self, state):
        state.put("k", "v1")
        state.put("k", "v2")
        state.delete("k")
        assert not state.exists("k")
        with pytest.raises(StateError):
            state.history("k")

    def test_delete_missing_raises(self, state):
        with pytest.raises(StateError):
            state.delete("missing")

    def test_rewrite_after_delete_restarts_versions(self, state):
        state.put("k", "v1")
        state.delete("k")
        assert state.put("k", "v2") == 1


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from("abc"), st.integers()), max_size=30))
    def test_version_equals_write_count(self, writes):
        state = WorldState()
        counts: dict[str, int] = {}
        for key, value in writes:
            state.put(key, value)
            counts[key] = counts.get(key, 0) + 1
        for key, count in counts.items():
            assert state.version(key) == count
            assert len(state.history(key)) == count - 1
