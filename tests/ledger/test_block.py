"""Blocks and chains: linkage, verification, tamper detection, pruning."""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.ledger.block import Chain, build_block
from repro.ledger.transaction import Transaction, WriteEntry


def make_tx(n: int) -> Transaction:
    return Transaction(
        channel="ch", submitter=f"org{n}",
        writes=(WriteEntry(key=f"k{n}", value=n),),
        timestamp=float(n),
    )


@pytest.fixture
def chain():
    chain = Chain("ch")
    for height in range(1, 6):
        chain.append([make_tx(height)], timestamp=float(height))
    return chain


class TestAppend:
    def test_heights_increment(self, chain):
        assert chain.height == 5
        assert [b.height for b in chain.blocks()] == [1, 2, 3, 4, 5]

    def test_linkage(self, chain):
        blocks = chain.blocks()
        for prev, block in zip(blocks, blocks[1:]):
            assert block.header.previous_digest == prev.digest()

    def test_verify_accepts_valid_chain(self, chain):
        chain.verify()

    def test_transactions_flattened(self, chain):
        assert len(chain.transactions()) == 5

    def test_empty_chain(self):
        chain = Chain("empty")
        assert chain.height == 0
        chain.verify()

    def test_append_block_from_orderer(self, chain):
        block = build_block(
            height=6, previous_digest=chain.tip_digest(),
            transactions=[make_tx(6)], timestamp=6.0,
        )
        chain.append_block(block)
        assert chain.height == 6
        chain.verify()

    def test_append_block_wrong_height_rejected(self, chain):
        block = build_block(
            height=9, previous_digest=chain.tip_digest(),
            transactions=[make_tx(9)], timestamp=9.0,
        )
        with pytest.raises(ValidationError, match="height"):
            chain.append_block(block)

    def test_append_block_broken_link_rejected(self, chain):
        block = build_block(
            height=6, previous_digest=b"\x00" * 32,
            transactions=[make_tx(6)], timestamp=6.0,
        )
        with pytest.raises(ValidationError, match="link"):
            chain.append_block(block)


class TestTamperDetection:
    def test_modified_transaction_detected(self, chain):
        # Replace a transaction inside an existing block.
        target = chain._blocks[2]
        from repro.ledger.block import Block

        tampered = Block(
            header=target.header, transactions=(make_tx(99),)
        )
        chain._blocks[2] = tampered
        with pytest.raises(ValidationError, match="root mismatch"):
            chain.verify()

    def test_removed_block_detected(self, chain):
        del chain._blocks[2]
        with pytest.raises(ValidationError):
            chain.verify()

    def test_reordered_blocks_detected(self, chain):
        chain._blocks[1], chain._blocks[2] = chain._blocks[2], chain._blocks[1]
        with pytest.raises(ValidationError):
            chain.verify()


class TestPruning:
    def test_prune_archives_blocks(self, chain):
        checkpoint = chain.prune_below(4)
        assert checkpoint.height == 3
        assert [b.height for b in chain.blocks()] == [4, 5]
        assert [b.height for b in chain.archived_blocks()] == [1, 2, 3]
        assert checkpoint.archived_tx_count == 3

    def test_chain_verifies_after_prune(self, chain):
        chain.prune_below(4)
        chain.verify()

    def test_append_after_prune(self, chain):
        chain.prune_below(4)
        chain.append([make_tx(6)], timestamp=6.0)
        assert chain.height == 6
        chain.verify()

    def test_archived_entries_still_available(self, chain):
        """Paper S3.2: archived entries are available on request."""
        chain.prune_below(3)
        archived_txs = [
            tx for block in chain.archived_blocks() for tx in block.transactions
        ]
        assert len(archived_txs) == 2

    def test_prune_above_tip_rejected(self, chain):
        with pytest.raises(ValidationError):
            chain.prune_below(99)

    def test_prune_nothing_rejected(self, chain):
        with pytest.raises(ValidationError):
            chain.prune_below(1)

    def test_double_prune(self, chain):
        chain.prune_below(3)
        chain.prune_below(5)
        assert [b.height for b in chain.blocks()] == [5]
        assert len(chain.archived_blocks()) == 4
        chain.verify()
