"""Raft ordering cluster: elections, replication, faults, visibility."""

from __future__ import annotations

import pytest

from repro.common.errors import OrderingError
from repro.ledger.raft import LogEntry, RaftCluster, Role
from repro.ledger.transaction import Transaction, WriteEntry


def make_tx(n: int) -> Transaction:
    return Transaction(
        channel="ch", submitter=f"submitter{n}",
        writes=(WriteEntry(key=f"k{n}", value=n),),
        metadata={"participants": [f"submitter{n}", "counterparty"]},
    )


@pytest.fixture
def cluster():
    return RaftCluster(["org1", "org2", "org3"])


class TestClusterSetup:
    def test_even_size_rejected(self):
        with pytest.raises(OrderingError, match="odd"):
            RaftCluster(["a", "b"])

    def test_too_small_rejected(self):
        with pytest.raises(OrderingError):
            RaftCluster(["a"])

    def test_majority(self, cluster):
        assert cluster.majority() == 2
        assert RaftCluster(list("abcde")).majority() == 3


class TestElections:
    def test_elect_produces_leader(self, cluster):
        leader = cluster.elect()
        assert cluster.node(leader).role is Role.LEADER

    def test_explicit_candidate_wins(self, cluster):
        leader = cluster.elect("raft-org2")
        assert leader == "raft-org2"

    def test_term_increases_per_election(self, cluster):
        cluster.elect("raft-org1")
        term1 = cluster.node("raft-org1").current_term
        cluster.elect("raft-org2")
        assert cluster.node("raft-org2").current_term > term1

    def test_crashed_candidate_rejected(self, cluster):
        cluster.crash("org1")
        with pytest.raises(OrderingError, match="crashed"):
            cluster.elect("raft-org1")

    def test_no_quorum_no_election(self, cluster):
        cluster.crash("org1")
        cluster.crash("org2")
        with pytest.raises(OrderingError, match="quorum"):
            cluster.elect()

    def test_candidate_with_stale_log_loses(self):
        cluster = RaftCluster(["a", "b", "c"])
        cluster.elect("raft-a")
        cluster.submit(make_tx(1))
        # Wipe c's log to make it stale, then have it campaign.
        cluster.node("raft-c").log.clear()
        with pytest.raises(OrderingError, match="majority"):
            cluster.elect("raft-c")


class TestReplication:
    def test_submit_commits_on_majority(self, cluster):
        cluster.elect("raft-org1")
        index = cluster.submit(make_tx(1))
        assert index == 0
        assert len(cluster.committed_transactions()) == 1

    def test_total_order_preserved(self, cluster):
        cluster.elect("raft-org1")
        for n in range(5):
            cluster.submit(make_tx(n))
        committed = cluster.committed_transactions()
        assert [tx.submitter for tx in committed] == [
            f"submitter{n}" for n in range(5)
        ]

    def test_logs_consistent_after_replication(self, cluster):
        cluster.elect("raft-org1")
        for n in range(3):
            cluster.submit(make_tx(n))
        assert cluster.logs_consistent()

    def test_submit_auto_elects(self, cluster):
        cluster.submit(make_tx(1))
        assert cluster.leader is not None


class TestFaults:
    def test_survives_minority_crash(self, cluster):
        cluster.elect("raft-org1")
        cluster.submit(make_tx(1))
        cluster.crash("org3")
        cluster.submit(make_tx(2))
        assert len(cluster.committed_transactions()) == 2
        assert cluster.logs_consistent()

    def test_leader_crash_triggers_reelection(self, cluster):
        leader = cluster.elect("raft-org1")
        cluster.submit(make_tx(1))
        cluster.crash("org1")
        assert cluster.leader is None
        new_leader = cluster.elect()
        assert new_leader != leader
        cluster.submit(make_tx(2))
        assert len(cluster.committed_transactions()) == 2

    def test_majority_crash_blocks_writes(self, cluster):
        cluster.elect("raft-org1")
        cluster.crash("org2")
        cluster.crash("org3")
        with pytest.raises(OrderingError):
            cluster.submit(make_tx(1))

    def test_recovered_node_catches_up(self, cluster):
        cluster.elect("raft-org1")
        cluster.submit(make_tx(1))
        cluster.crash("org3")
        cluster.submit(make_tx(2))
        cluster.recover("org3")
        cluster.submit(make_tx(3))
        assert cluster.logs_consistent()
        assert cluster.node("raft-org3").commit_index == 3

    def test_committed_entries_survive_leader_change(self, cluster):
        cluster.elect("raft-org1")
        tx = make_tx(1)
        cluster.submit(tx)
        cluster.crash("org1")
        cluster.elect()
        committed = cluster.committed_transactions()
        assert committed[0].tx_id == tx.tx_id


class TestRecoveryResetsVolatileState:
    """Regression: recover() must not rejoin a node with stale vote state."""

    def test_recover_clears_voted_for_and_role(self, cluster):
        cluster.elect("raft-org1")
        assert cluster.node("raft-org2").voted_for == "raft-org1"
        cluster.crash("org2")
        cluster.recover("org2")
        node = cluster.node("raft-org2")
        assert node.voted_for is None
        assert node.role is Role.FOLLOWER

    def test_recover_keeps_persisted_log_and_term(self, cluster):
        cluster.elect("raft-org1")
        cluster.submit(make_tx(1))
        term = cluster.node("raft-org2").current_term
        cluster.crash("org2")
        cluster.recover("org2")
        node = cluster.node("raft-org2")
        assert len(node.log) == 1  # the log is persisted state
        assert node.current_term == term

    def test_stale_self_vote_no_longer_blocks_election(self):
        """The liveness failure the stale vote causes.

        A node that campaigned and lost holds a self-vote in its current
        term.  If that vote survives a crash/recover cycle, the node
        refuses to vote for a same-term candidate after rejoining — and
        a two-node quorum that includes it cannot elect anyone.
        """
        cluster = RaftCluster(["a", "b", "c"])
        cluster.elect("raft-a")
        cluster.submit(make_tx(1))
        # c falls behind, campaigns anyway, and loses — leaving it with a
        # self-vote in term 2.
        cluster.node("raft-c").log.clear()
        with pytest.raises(OrderingError, match="majority"):
            cluster.elect("raft-c")
        assert cluster.node("raft-c").voted_for == "raft-c"
        cluster.crash("c")
        cluster.recover("c")
        # The old leader dies; the quorum is now exactly {b, c}, so b needs
        # c's vote.  b campaigns in the same term c already voted in.
        cluster.crash("a")
        assert cluster.elect("raft-b") == "raft-b"
        cluster.submit(make_tx(2))
        assert cluster.logs_consistent()

    def test_crash_recover_reelect_cycle(self, cluster):
        """Full cycle: leader crashes, recovers, and can be re-elected."""
        cluster.elect("raft-org1")
        cluster.submit(make_tx(1))
        cluster.crash("org1")
        cluster.elect("raft-org2")
        cluster.submit(make_tx(2))
        cluster.recover("org1")
        cluster.submit(make_tx(3))  # recovered node catches up as follower
        assert cluster.elect("raft-org1") == "raft-org1"
        cluster.submit(make_tx(4))
        assert len(cluster.committed_transactions()) == 4
        assert cluster.logs_consistent()


class TestVisibility:
    def test_every_replica_operator_sees_contents(self, cluster):
        """Replicated ordering multiplies who sees the data (S3.4)."""
        cluster.elect("raft-org1")
        cluster.submit(make_tx(1))
        assert cluster.operators_with_visibility() == {"org1", "org2", "org3"}
        for node in cluster.nodes.values():
            assert "submitter1" in node.observer.seen_identities
            assert "k1" in node.observer.seen_data_keys

    def test_crashed_replica_misses_entries(self, cluster):
        cluster.elect("raft-org1")
        cluster.crash("org3")
        cluster.submit(make_tx(1))
        assert "k1" not in cluster.node("raft-org3").observer.seen_data_keys


class TestLogTruncationOnRecovery:
    def test_former_leader_rejoins_as_follower_without_phantom_entries(
        self, cluster
    ):
        """A recovered leader must not resurrect an unacked log suffix."""
        cluster.elect("raft-org1")
        cluster.submit(make_tx(1))
        # The leader accepted a write locally but crashed before
        # replicating it: an uncommitted suffix nobody was ever acked for.
        leader = cluster.node("raft-org1")
        leader.log.append(LogEntry(term=leader.current_term, tx=make_tx(99)))
        cluster.crash("org1")
        cluster.elect("raft-org2")
        cluster.submit(make_tx(2))
        cluster.recover("org1")
        recovered = cluster.node("raft-org1")
        assert recovered.role is Role.FOLLOWER
        assert len(recovered.log) == recovered.commit_index
        assert all(e.tx.tx_id != make_tx(99).tx_id for e in recovered.log)
        cluster.submit(make_tx(3))  # replication overwrites with new history
        assert cluster.logs_consistent()
        committed = [e.tx.tx_id for e in recovered.log[: recovered.commit_index]]
        assert make_tx(99).tx_id not in committed

    def test_truncation_is_counted_and_logged(self, cluster):
        cluster.elect("raft-org1")
        cluster.submit(make_tx(1))
        leader = cluster.node("raft-org1")
        leader.log.append(LogEntry(term=leader.current_term, tx=make_tx(98)))
        leader.log.append(LogEntry(term=leader.current_term, tx=make_tx(99)))
        cluster.crash("org1")
        cluster.recover("org1")
        counters = cluster.telemetry.metrics.snapshot()["counters"]
        assert counters["raft.log_truncations"] == 2
        assert cluster.telemetry.events.named("raft.log_truncated")

    def test_recovery_with_no_suffix_truncates_nothing(self, cluster):
        cluster.elect("raft-org1")
        cluster.submit(make_tx(1))
        cluster.crash("org3")
        cluster.recover("org3")
        counters = cluster.telemetry.metrics.snapshot()["counters"]
        assert "raft.log_truncations" not in counters
        assert cluster.logs_consistent()
