"""Validation pipeline: policies, signature checks, MVCC."""

from __future__ import annotations

import pytest

from repro.common.errors import EndorsementError, ValidationError
from repro.ledger.state import WorldState
from repro.ledger.transaction import (
    Endorsement,
    ReadEntry,
    Transaction,
    WriteEntry,
)
from repro.ledger.validation import (
    EndorsementPolicy,
    apply_writes,
    check_read_set,
    validate_and_apply,
    verify_endorsements,
)


@pytest.fixture
def keys(scheme):
    return {name: scheme.keygen_from_seed(name) for name in ("a", "b", "c")}


def endorse(scheme, keys, tx, endorsers):
    return tx.with_endorsements([
        Endorsement(endorser=e, signature=scheme.sign(keys[e], tx.signing_bytes()))
        for e in endorsers
    ])


class TestPolicies:
    def test_all_of(self):
        policy = EndorsementPolicy.all_of(["a", "b"])
        assert policy.satisfied_by({"a", "b"})
        assert not policy.satisfied_by({"a"})

    def test_any_of(self):
        policy = EndorsementPolicy.any_of(["a", "b"])
        assert policy.satisfied_by({"b"})
        assert not policy.satisfied_by({"z"})

    def test_k_of(self):
        policy = EndorsementPolicy.k_of(2, ["a", "b", "c"])
        assert policy.satisfied_by({"a", "c"})
        assert not policy.satisfied_by({"a"})

    def test_outsiders_do_not_count(self):
        policy = EndorsementPolicy.k_of(2, ["a", "b", "c"])
        assert not policy.satisfied_by({"a", "x", "y", "z"})

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValidationError):
            EndorsementPolicy(required=frozenset({"a"}), threshold=2)
        with pytest.raises(ValidationError):
            EndorsementPolicy(required=frozenset({"a"}), threshold=0)


class TestVerifyEndorsements:
    def test_satisfied_policy_passes(self, scheme, keys):
        tx = Transaction(channel="ch", submitter="a")
        tx = endorse(scheme, keys, tx, ["a", "b"])
        verify_endorsements(
            tx, EndorsementPolicy.all_of(["a", "b"]), scheme,
            lambda n: keys[n].public,
        )

    def test_missing_endorser_rejected(self, scheme, keys):
        tx = Transaction(channel="ch", submitter="a")
        tx = endorse(scheme, keys, tx, ["a"])
        with pytest.raises(EndorsementError, match="policy requires"):
            verify_endorsements(
                tx, EndorsementPolicy.all_of(["a", "b"]), scheme,
                lambda n: keys[n].public,
            )

    def test_forged_signature_rejected(self, scheme, keys):
        tx = Transaction(channel="ch", submitter="a")
        # b's endorsement signed with c's key
        forged = tx.with_endorsements([
            Endorsement("b", scheme.sign(keys["c"], tx.signing_bytes()))
        ])
        with pytest.raises(EndorsementError, match="invalid signature"):
            verify_endorsements(
                forged, EndorsementPolicy.any_of(["b"]), scheme,
                lambda n: keys[n].public,
            )

    def test_signature_over_stale_content_rejected(self, scheme, keys):
        tx = Transaction(channel="ch", submitter="a")
        endorsed = endorse(scheme, keys, tx, ["a"])
        mutated = Transaction(
            **{**tx.__dict__, "metadata": {"late": "edit"}}
        ).with_endorsements(list(endorsed.endorsements))
        with pytest.raises(EndorsementError):
            verify_endorsements(
                mutated, EndorsementPolicy.any_of(["a"]), scheme,
                lambda n: keys[n].public,
            )


class TestMVCC:
    def test_current_reads_pass(self):
        state = WorldState()
        state.put("k", 1)
        tx = Transaction(
            channel="ch", submitter="a",
            reads=(ReadEntry(key="k", version=1),),
        )
        check_read_set(tx, state)

    def test_stale_read_rejected(self):
        state = WorldState()
        state.put("k", 1)
        state.put("k", 2)
        tx = Transaction(
            channel="ch", submitter="a",
            reads=(ReadEntry(key="k", version=1),),
        )
        with pytest.raises(ValidationError, match="stale read"):
            check_read_set(tx, state)

    def test_phantom_read_rejected(self):
        state = WorldState()
        tx = Transaction(
            channel="ch", submitter="a",
            reads=(ReadEntry(key="k", version=1),),
        )
        with pytest.raises(ValidationError):
            check_read_set(tx, state)


class TestApply:
    def test_writes_applied(self):
        state = WorldState()
        tx = Transaction(
            channel="ch", submitter="a",
            writes=(WriteEntry(key="k", value=5), WriteEntry(key="j", value=6)),
        )
        apply_writes(tx, state)
        assert state.get("k") == 5
        assert state.get("j") == 6

    def test_deletes_applied(self):
        state = WorldState()
        state.put("k", 1)
        tx = Transaction(
            channel="ch", submitter="a",
            writes=(WriteEntry(key="k", is_delete=True),),
        )
        apply_writes(tx, state)
        assert not state.exists("k")

    def test_delete_of_missing_key_tolerated(self):
        state = WorldState()
        tx = Transaction(
            channel="ch", submitter="a",
            writes=(WriteEntry(key="ghost", is_delete=True),),
        )
        apply_writes(tx, state)


class TestFullPipeline:
    def test_validate_and_apply(self, scheme, keys):
        state = WorldState()
        state.put("k", 1)
        tx = Transaction(
            channel="ch", submitter="a",
            reads=(ReadEntry(key="k", version=1),),
            writes=(WriteEntry(key="k", value=2),),
        )
        tx = endorse(scheme, keys, tx, ["a", "b"])
        validate_and_apply(
            tx, state,
            policy=EndorsementPolicy.all_of(["a", "b"]),
            scheme=scheme,
            resolve_key=lambda n: keys[n].public,
        )
        assert state.get("k") == 2
        assert state.version("k") == 2

    def test_policy_without_scheme_rejected(self, keys):
        state = WorldState()
        tx = Transaction(channel="ch", submitter="a")
        with pytest.raises(ValidationError, match="needs a scheme"):
            validate_and_apply(tx, state, policy=EndorsementPolicy.any_of(["a"]))

    def test_no_policy_skips_endorsement_check(self):
        state = WorldState()
        tx = Transaction(
            channel="ch", submitter="a",
            writes=(WriteEntry(key="k", value=1),),
        )
        validate_and_apply(tx, state)
        assert state.get("k") == 1
