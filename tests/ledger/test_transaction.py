"""Transactions: identity, signing bytes, endorsement carrying."""

from __future__ import annotations

import pytest

from repro.ledger.transaction import (
    Endorsement,
    ReadEntry,
    Transaction,
    WriteEntry,
)


@pytest.fixture
def tx():
    return Transaction(
        channel="ch1",
        submitter="alice",
        reads=(ReadEntry(key="k", version=1),),
        writes=(WriteEntry(key="k", value=2),),
        private_hashes={"pdc/k": "abc123"},
        metadata={"participants": ["alice", "bob"]},
        timestamp=1.5,
    )


class TestIdentity:
    def test_tx_id_stable(self, tx):
        assert tx.tx_id == tx.tx_id

    def test_tx_id_changes_with_content(self, tx):
        other = Transaction(channel="ch1", submitter="bob")
        assert tx.tx_id != other.tx_id

    def test_tx_id_prefix(self, tx):
        assert tx.tx_id.startswith("tx:")

    def test_endorsements_do_not_change_identity(self, tx, scheme):
        key = scheme.keygen_from_seed("endorser")
        sig = scheme.sign(key, tx.signing_bytes())
        endorsed = tx.with_endorsements([Endorsement("e1", sig)])
        assert endorsed.tx_id == tx.tx_id

    def test_content_hash_differs_from_tx_id(self, tx):
        assert tx.content_hash() != tx.tx_id


class TestSigningBytes:
    def test_deterministic(self, tx):
        assert tx.signing_bytes() == tx.signing_bytes()

    def test_covers_writes(self, tx):
        other = Transaction(
            **{**tx.__dict__, "writes": (WriteEntry(key="k", value=3),)}
        )
        assert tx.signing_bytes() != other.signing_bytes()

    def test_covers_private_hashes(self, tx):
        other = Transaction(**{**tx.__dict__, "private_hashes": {}})
        assert tx.signing_bytes() != other.signing_bytes()

    def test_covers_metadata(self, tx):
        other = Transaction(**{**tx.__dict__, "metadata": {}})
        assert tx.signing_bytes() != other.signing_bytes()


class TestEndorsements:
    def test_with_endorsements_copies(self, tx, scheme):
        key = scheme.keygen_from_seed("endorser")
        sig = scheme.sign(key, tx.signing_bytes())
        endorsed = tx.with_endorsements([Endorsement("e1", sig)])
        assert len(endorsed.endorsements) == 1
        assert len(tx.endorsements) == 0

    def test_write_entry_delete_flag(self):
        entry = WriteEntry(key="k", is_delete=True)
        assert entry.is_delete
        assert entry.value is None
