"""Public anchor ledger: existence without content."""

from __future__ import annotations

import pytest

from repro.common.errors import ProofError, ValidationError
from repro.ledger.anchors import AnchorLedger, ChannelAnchorer, ExistenceProof
from repro.ledger.transaction import Transaction, WriteEntry


def make_tx(n: int) -> Transaction:
    return Transaction(
        channel="private-ch", submitter=f"org{n % 3}",
        writes=(WriteEntry(key=f"secret-{n}", value=n),),
        timestamp=float(n),
    )


@pytest.fixture
def ledger():
    return AnchorLedger()


@pytest.fixture
def anchorer(ledger):
    return ChannelAnchorer("private-ch", ledger)


class TestPublishing:
    def test_publish_returns_anchor(self, ledger):
        anchor = ledger.publish("ch", ["h1", "h2"], now=1.0)
        assert anchor.tx_count == 2
        assert anchor.sequence == 0
        assert len(ledger) == 1

    def test_empty_batch_rejected(self, ledger):
        with pytest.raises(ValidationError):
            ledger.publish("ch", [], now=1.0)

    def test_sequences_increment(self, ledger):
        a = ledger.publish("ch1", ["h"], now=1.0)
        b = ledger.publish("ch2", ["h"], now=2.0)
        assert b.sequence == a.sequence + 1

    def test_anchors_filtered_by_source(self, ledger):
        ledger.publish("ch1", ["a"], now=1.0)
        ledger.publish("ch2", ["b"], now=2.0)
        ledger.publish("ch1", ["c"], now=3.0)
        assert len(ledger.anchors_of("ch1")) == 2

    def test_unknown_sequence_rejected(self, ledger):
        with pytest.raises(ValidationError):
            ledger.anchor(5)


class TestContentFreedom:
    def test_anchor_reveals_no_transaction_content(self, ledger, anchorer):
        """The public record shows existence, never content (S2.2)."""
        txs = [make_tx(n) for n in range(5)]
        anchor = anchorer.anchor_transactions(txs, now=1.0)
        # The public artifact is a root + count; no key, value, or party.
        assert isinstance(anchor.root, bytes)
        public_view = (anchor.source, anchor.root.hex(), anchor.tx_count)
        for tx in txs:
            assert tx.submitter not in str(public_view)
            assert "secret" not in str(public_view)

    def test_source_label_is_the_only_metadata(self, ledger, anchorer):
        txs = [make_tx(0)]
        anchor = anchorer.anchor_transactions(txs, now=1.0)
        assert anchor.source == "private-ch"


class TestExistenceProofs:
    def test_prove_and_verify(self, ledger, anchorer):
        txs = [make_tx(n) for n in range(8)]
        anchorer.anchor_transactions(txs, now=1.0)
        proof = anchorer.prove_existence(txs[3])
        assert ledger.verify_existence(proof)

    def test_proof_is_single_transaction_scoped(self, ledger, anchorer):
        """Revealing one tx hash does not reveal sibling transactions."""
        txs = [make_tx(n) for n in range(8)]
        anchorer.anchor_transactions(txs, now=1.0)
        proof = anchorer.prove_existence(txs[3])
        siblings_exposed = sum(
            1 for other in txs if other.content_hash() == proof.tx_hash
        )
        assert siblings_exposed == 1
        # The path contains digests, not hashes of identifiable txs.
        assert all(isinstance(d, bytes) for d in proof.inclusion.path)

    def test_unanchored_transaction_unprovable(self, ledger, anchorer):
        anchorer.anchor_transactions([make_tx(0)], now=1.0)
        with pytest.raises(ProofError, match="never anchored"):
            anchorer.prove_existence(make_tx(99))

    def test_forged_proof_rejected(self, ledger, anchorer):
        txs = [make_tx(n) for n in range(4)]
        anchorer.anchor_transactions(txs, now=1.0)
        honest = anchorer.prove_existence(txs[0])
        forged = ExistenceProof(
            anchor_sequence=honest.anchor_sequence,
            tx_hash=make_tx(99).content_hash(),
            inclusion=honest.inclusion,
        )
        assert not ledger.verify_existence(forged)

    def test_incremental_anchoring(self, ledger, anchorer):
        batch1 = [make_tx(n) for n in range(3)]
        anchorer.anchor_transactions(batch1, now=1.0)
        all_txs = batch1 + [make_tx(n) for n in range(3, 6)]
        second = anchorer.anchor_transactions(all_txs, now=2.0)
        assert second.tx_count == 3  # only the new ones
        # Both old and new transactions are provable.
        assert ledger.verify_existence(anchorer.prove_existence(all_txs[1]))
        assert ledger.verify_existence(anchorer.prove_existence(all_txs[5]))

    def test_nothing_new_returns_none(self, ledger, anchorer):
        txs = [make_tx(0)]
        anchorer.anchor_transactions(txs, now=1.0)
        assert anchorer.anchor_transactions(txs, now=2.0) is None


class TestFabricIntegration:
    def test_channel_anchoring_end_to_end(self):
        from repro.execution.contracts import SmartContract
        from repro.platforms.fabric import FabricNetwork

        net = FabricNetwork(seed="anchor-integration")
        for org in ("Org1", "Org2"):
            net.onboard(org)
        net.create_channel("ch", ["Org1", "Org2"])

        def put(view, args):
            view.put(args["key"], args["value"])
            return args["value"]

        net.deploy_chaincode(
            "ch", SmartContract("cc", 1, "python-chaincode", {"put": put}),
            ["Org1", "Org2"],
        )
        result = net.invoke("ch", "Org1", "cc", "put",
                            {"key": "k", "value": "confidential"})
        public = AnchorLedger()
        anchorer = ChannelAnchorer("ch", public)
        channel_txs = net.channel("ch").chain.transactions()
        anchorer.anchor_transactions(channel_txs, now=net.clock.now)
        proof = anchorer.prove_existence(result.tx)
        # A third party holding only the public ledger verifies existence.
        assert public.verify_existence(proof)
