"""Idempotent redelivery: dedup keys on the wire, catch-up key helpers."""

from __future__ import annotations

from repro.common.rng import DeterministicRNG
from repro.network.simnet import SimNetwork
from repro.recovery.catchup import catchup_dedup_key, pick_provider

import pytest


@pytest.fixture
def net():
    network = SimNetwork(rng=DeterministicRNG("dedup-test"))
    for name in ("A", "B", "C"):
        network.add_node(name)
    return network


class TestMessageDedup:
    def test_duplicate_key_applied_once(self, net):
        net.send("A", "B", "item", {"n": 1}, dedup_key="item/1")
        net.send("A", "B", "item", {"n": 1}, dedup_key="item/1")
        net.run()
        assert len(net.node("B").drain("item")) == 1
        assert net.stats.deduplicated == 1

    def test_distinct_keys_both_applied(self, net):
        net.send("A", "B", "item", {"n": 1}, dedup_key="item/1")
        net.send("A", "B", "item", {"n": 2}, dedup_key="item/2")
        net.run()
        assert len(net.node("B").drain("item")) == 2
        assert net.stats.deduplicated == 0

    def test_no_key_means_no_suppression(self, net):
        net.send("A", "B", "item", {"n": 1})
        net.send("A", "B", "item", {"n": 1})
        net.run()
        assert len(net.node("B").drain("item")) == 2

    def test_has_applied_tracks_delivered_keys(self, net):
        net.send("A", "B", "item", {"n": 1}, dedup_key="item/1")
        net.run()
        assert net.node("B").has_applied("item/1")
        assert not net.node("B").has_applied("item/2")

    def test_retry_attempts_share_one_key(self, net):
        """send_with_retry retransmissions deduplicate at the recipient."""
        net.drop_probability = 0.4
        net.node("B").on(
            "ack-me",
            lambda m: net.send("B", "A", "ack", {}, dedup_key=None),
        )
        net.send_with_retry("A", "B", "ack-me", {"n": 1}, timeout=0.5)
        net.run()
        assert len(net.node("B").drain("ack-me")) == 1

    def test_crash_wipes_dedup_memory(self, net):
        """In-memory dedup state is volatile — exactly why recovery keys
        idempotence on durable positions, not on seen_dedup_keys."""
        net.send("A", "B", "item", {"n": 1}, dedup_key="item/1")
        net.run()
        net.crash_node("B")
        net.recover_node("B")
        assert not net.node("B").has_applied("item/1")
        net.send("A", "B", "item", {"n": 1}, dedup_key="item/1")
        net.run()
        assert len(net.node("B").drain("item")) == 1


class TestCatchupKeys:
    def test_key_is_stable_across_attempts(self):
        first = catchup_dedup_key("fabric", "loc-channel", "SellerCo", "tx-9")
        again = catchup_dedup_key("fabric", "loc-channel", "SellerCo", "tx-9")
        assert first == again

    def test_key_varies_by_every_component(self):
        base = catchup_dedup_key("fabric", "ch", "A", "t1")
        assert catchup_dedup_key("corda", "ch", "A", "t1") != base
        assert catchup_dedup_key("fabric", "ch2", "A", "t1") != base
        assert catchup_dedup_key("fabric", "ch", "B", "t1") != base
        assert catchup_dedup_key("fabric", "ch", "A", "t2") != base


class TestProviderSelection:
    def test_prefers_first_live_reachable_peer(self, net):
        assert pick_provider(net, ["C", "B"], "A") == "B"

    def test_skips_the_recovering_node_itself(self, net):
        assert pick_provider(net, ["A", "B"], "A") == "B"

    def test_skips_crashed_and_partitioned_peers(self, net):
        net.crash_node("B")
        net.partition("C", "A")
        assert pick_provider(net, ["B", "C"], "A") is None
        net.heal("C", "A")
        assert pick_provider(net, ["B", "C"], "A") == "C"
