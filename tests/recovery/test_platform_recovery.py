"""Per-platform crash/recover: checkpoints restore, catch-up is filtered."""

from __future__ import annotations

import pytest

from repro.execution.contracts import SmartContract
from repro.ledger.validation import EndorsementPolicy
from repro.platforms.corda import Command, ContractState, CordaNetwork
from repro.platforms.fabric import FabricNetwork
from repro.platforms.quorum import QuorumNetwork

ORGS = ("OrgA", "OrgB", "OrgC")


def put_contract(cid="store", language="python-chaincode"):
    def put(view, args):
        view.put(args["key"], args["value"])
        return args["value"]

    return SmartContract(
        contract_id=cid, version=1, language=language, functions={"put": put}
    )


# ---------------------------------------------------------------------------
# Fabric
# ---------------------------------------------------------------------------


@pytest.fixture
def fabric():
    net = FabricNetwork(seed="recovery-fabric", resilient_delivery=True)
    for org in ORGS:
        net.onboard(org)
    channel = net.create_channel("ch", list(ORGS))
    # 2-of-3 so business can continue while one member is crashed.
    net.deploy_chaincode(
        "ch", put_contract(), list(ORGS),
        policy=EndorsementPolicy.k_of(2, list(ORGS)),
    )
    return net, channel


class TestFabricRecovery:
    def test_recovered_replica_matches_peers(self, fabric):
        net, channel = fabric
        net.invoke("ch", "OrgA", "store", "put", {"key": "k1", "value": 1})
        net.checkpoint_node("OrgB")
        net.crash("OrgB")
        net.invoke(
            "ch", "OrgA", "store", "put", {"key": "k2", "value": 2},
            endorsers=["OrgA", "OrgC"],
        )
        assert channel.states["OrgB"].snapshot() == {}  # volatile state gone
        net.recover("OrgB")
        net.network.run()
        assert channel.states["OrgB"].dump() == channel.states["OrgA"].dump()

    def test_checkpoint_restores_without_reshipping_old_blocks(self, fabric):
        net, channel = fabric
        net.invoke("ch", "OrgA", "store", "put", {"key": "k1", "value": 1})
        net.checkpoint_node("OrgB")
        net.crash("OrgB")
        net.invoke(
            "ch", "OrgA", "store", "put", {"key": "k2", "value": 2},
            endorsers=["OrgA", "OrgC"],
        )
        before = net.telemetry.metrics.snapshot()["counters"].get(
            "recovery.catchup.items", 0
        )
        net.recover("OrgB")
        after = net.telemetry.metrics.snapshot()["counters"][
            "recovery.catchup.items"
        ]
        # Only the post-checkpoint delta travels: one block, one item.
        assert after - before == 1

    def test_recovery_without_checkpoint_rebuilds_from_genesis(self, fabric):
        net, channel = fabric
        net.invoke("ch", "OrgA", "store", "put", {"key": "k1", "value": 1})
        net.crash("OrgB")
        checkpoint = net.recover("OrgB")
        net.network.run()
        assert checkpoint is None
        assert channel.states["OrgB"].get("k1") == 1

    def test_recover_is_idempotent(self, fabric):
        net, _ = fabric
        net.invoke("ch", "OrgA", "store", "put", {"key": "k1", "value": 1})
        net.checkpoint_node("OrgB")
        net.crash("OrgB")
        net.crash("OrgB")  # double-crash is a no-op too
        first = net.recover("OrgB")
        second = net.recover("OrgB")
        assert first is not None and second is not None
        assert first.sequence == second.sequence
        counters = net.telemetry.metrics.snapshot()["counters"]
        assert counters["recovery.crashes"] == 1
        assert counters["recovery.recoveries"] == 1

    def test_catchup_stays_inside_channel_membership(self, fabric):
        net, _ = fabric
        side = net.create_channel("side", ["OrgA", "OrgC"])
        net.deploy_chaincode("side", put_contract("side-cc"), ["OrgA", "OrgC"])
        net.checkpoint_node("OrgB")
        net.crash("OrgB")
        net.invoke("side", "OrgA", "side-cc", "put", {"key": "s", "value": 5})
        net.recover("OrgB")
        net.network.run()
        assert side.states.get("OrgB") is None
        assert "s" not in net.network.node("OrgB").observer.seen_data_keys


# ---------------------------------------------------------------------------
# Corda
# ---------------------------------------------------------------------------


@pytest.fixture
def corda():
    net = CordaNetwork(seed="recovery-corda", resilient_delivery=True)
    for org in ORGS:
        net.onboard(org)
    net.register_contract("deal", lambda wire: None, language="kotlin")
    return net


def corda_deal(net, parties, data):
    state = ContractState(contract_id="deal", participants=parties, data=data)
    wire = net.build_transaction(
        inputs=[], outputs=[state],
        commands=[Command(name="Deal", signers=parties)],
    )
    return net.run_flow(parties[0], wire), wire


class TestCordaRecovery:
    def test_entitled_transactions_reship_on_recovery(self, corda):
        """A crash wipes the vault; catch-up re-ships entitled history."""
        net = corda
        __, wire = corda_deal(net, ("OrgA", "OrgB"), {"amount": 10})
        net.checkpoint_node("OrgB")
        net.crash("OrgB")
        assert not net.vault("OrgB").knows_transaction(wire.tx_id)
        net.recover("OrgB")
        assert net.vault("OrgB").knows_transaction(wire.tx_id)

    def test_unentitled_transactions_never_reship(self, corda):
        net = corda
        net.checkpoint_node("OrgB")
        net.crash("OrgB")
        __, side = corda_deal(net, ("OrgA", "OrgC"), {"price": 99})
        net.recover("OrgB")
        assert not net.vault("OrgB").knows_transaction(side.tx_id)
        assert "price" not in net.network.node("OrgB").observer.seen_data_keys

    def test_unconsumed_states_rebuilt_after_catchup(self, corda):
        net = corda
        result, __ = corda_deal(net, ("OrgA", "OrgB"), {"amount": 10})
        ref = result.output_refs[0]
        net.checkpoint_node("OrgB")
        net.crash("OrgB")
        assert ref not in net.vault("OrgB").unconsumed
        net.recover("OrgB")
        assert ref in net.vault("OrgB").unconsumed

    def test_recovery_survives_no_live_provider(self, corda):
        net = corda
        corda_deal(net, ("OrgA", "OrgB"), {"amount": 10})
        net.crash("OrgB")
        net.crash("OrgA")
        net.crash("OrgC")
        net.recover("OrgB")  # nobody to catch up from; no crash, no data
        assert net.vault("OrgB").transactions == {}
        net.recover("OrgA")
        net.recover("OrgC")


# ---------------------------------------------------------------------------
# Quorum
# ---------------------------------------------------------------------------


@pytest.fixture
def quorum():
    net = QuorumNetwork(seed="recovery-quorum", resilient_delivery=True)
    for org in ORGS:
        net.onboard(org)
    net.deploy_contract("OrgA", put_contract("evm", language="evm-solidity"))
    return net


class TestQuorumRecovery:
    def test_public_chain_replays_to_recovered_node(self, quorum):
        net = quorum
        net.send_public_transaction("OrgA", "evm", "put", {"key": "p", "value": 1})
        net.checkpoint_node("OrgB")
        net.crash("OrgB")
        net.send_public_transaction("OrgA", "evm", "put", {"key": "q", "value": 2})
        net.recover("OrgB")
        net.network.run()
        assert net.public_states["OrgB"].get("q") == 2
        assert net.public_states["OrgB"].dump() == net.public_states["OrgA"].dump()

    def test_entitled_private_payload_restored(self, quorum):
        net = quorum
        net.checkpoint_node("OrgB")
        net.crash("OrgB")
        result = net.send_private_transaction(
            "OrgA", "evm", "put", {"key": "s1", "value": 7}, private_for=["OrgB"]
        )
        net.recover("OrgB")
        assert net.private_states["OrgB"].get("s1") == 7
        assert net.managers["OrgB"].has_payload(result.payload_hash)
        assert net.verify_private_state("OrgB")

    def test_unentitled_private_payload_withheld(self, quorum):
        net = quorum
        net.checkpoint_node("OrgB")
        net.crash("OrgB")
        result = net.send_private_transaction(
            "OrgA", "evm", "put", {"key": "s2", "value": 8}, private_for=["OrgC"]
        )
        net.recover("OrgB")
        assert not net.private_states["OrgB"].exists("s2")
        assert not net.managers["OrgB"].has_payload(result.payload_hash)

    def test_catchup_is_position_idempotent(self, quorum):
        net = quorum
        net.send_private_transaction(
            "OrgA", "evm", "put", {"key": "s3", "value": 1}, private_for=["OrgB"]
        )
        net.checkpoint_node("OrgB")
        net.crash("OrgB")
        net.recover("OrgB")
        net.recover("OrgB")  # replaying catch-up must not double-apply
        assert net.private_states["OrgB"].get("s3") == 1
        assert net.verify_private_state("OrgB")
