"""The convergence audit: per-visibility-group agreement, structured findings."""

from __future__ import annotations

import pytest

from repro.common.errors import PlatformError
from repro.execution.contracts import SmartContract
from repro.platforms.corda import Command, ContractState, CordaNetwork
from repro.platforms.fabric import FabricNetwork
from repro.platforms.quorum import QuorumNetwork
from repro.recovery import audit_convergence

ORGS = ("OrgA", "OrgB", "OrgC")


def put_contract(cid="store", language="python-chaincode"):
    def put(view, args):
        view.put(args["key"], args["value"])
        return args["value"]

    return SmartContract(
        contract_id=cid, version=1, language=language, functions={"put": put}
    )


@pytest.fixture
def fabric():
    net = FabricNetwork(seed="conv-fabric")
    for org in ORGS:
        net.onboard(org)
    net.create_channel("ch", list(ORGS))
    net.deploy_chaincode("ch", put_contract(), list(ORGS))
    net.invoke("ch", "OrgA", "store", "put", {"key": "k", "value": 1})
    return net


@pytest.fixture
def corda():
    net = CordaNetwork(seed="conv-corda")
    for org in ORGS:
        net.onboard(org)
    net.register_contract("deal", lambda wire: None, language="kotlin")
    state = ContractState(
        contract_id="deal", participants=("OrgA", "OrgB"), data={"amount": 10}
    )
    wire = net.build_transaction(
        inputs=[], outputs=[state],
        commands=[Command(name="Deal", signers=("OrgA", "OrgB"))],
    )
    result = net.run_flow("OrgA", wire)
    return net, wire, result.output_refs[0]


@pytest.fixture
def quorum():
    net = QuorumNetwork(seed="conv-quorum")
    for org in ORGS:
        net.onboard(org)
    net.deploy_contract("OrgA", put_contract("evm", language="evm-solidity"))
    net.send_public_transaction("OrgA", "evm", "put", {"key": "p", "value": 1})
    net.send_private_transaction(
        "OrgA", "evm", "put", {"key": "s", "value": 2}, private_for=["OrgB"]
    )
    return net


class TestConvergedReports:
    def test_fabric_clean_run_converges(self, fabric):
        report = audit_convergence(fabric)
        assert report.converged
        assert report.checked_nodes == ORGS
        assert "CONVERGED" in report.render()

    def test_corda_clean_run_converges(self, corda):
        net, __, __ = corda
        report = audit_convergence(net)
        assert report.converged

    def test_quorum_clean_run_converges(self, quorum):
        report = audit_convergence(quorum)
        assert report.converged

    def test_crashed_nodes_skipped_and_reported(self, fabric):
        fabric.crash("OrgC")
        report = audit_convergence(fabric)
        assert report.converged  # a down node is lagging, not diverged
        assert report.skipped_nodes == ("OrgC",)
        assert "skipped (down): OrgC" in report.render()

    def test_audit_counts_checks(self, fabric):
        audit_convergence(fabric)
        counters = fabric.telemetry.metrics.snapshot()["counters"]
        assert counters["recovery.convergence.checks{platform=fabric}"] == 1


class TestDivergenceDetection:
    def test_fabric_replica_mismatch_detected(self, fabric):
        channel = fabric.channel("ch")
        channel.states["OrgB"].put("k", 999)
        report = audit_convergence(fabric)
        assert not report.converged
        finding = report.divergences[0]
        assert finding.scope == "ch"
        assert finding.nodes == ("OrgB",)
        assert "DIVERGED" in report.render()

    def test_fabric_version_skew_counts_as_divergence(self, fabric):
        """Same values, different MVCC versions: diverges on next read."""
        channel = fabric.channel("ch")
        state = channel.states["OrgB"]
        state.put("k", state.get("k"))  # value unchanged, version bumped
        report = audit_convergence(fabric)
        assert not report.converged

    def test_corda_missing_entitled_transaction_detected(self, corda):
        net, wire, __ = corda
        del net.vaults["OrgB"].transactions[wire.tx_id]
        report = audit_convergence(net)
        assert any(
            d.scope == wire.tx_id and "OrgB" in d.nodes
            for d in report.divergences
        )

    def test_corda_dropped_unconsumed_state_detected(self, corda):
        net, __, ref = corda
        net.vaults["OrgB"].unconsumed.pop(ref)
        report = audit_convergence(net)
        assert any(
            d.scope == f"{ref.tx_id}:{ref.index}" for d in report.divergences
        )

    def test_quorum_public_mismatch_detected(self, quorum):
        quorum.public_states["OrgC"].put("p", 404)
        report = audit_convergence(quorum)
        assert any(d.scope == "public-chain" for d in report.divergences)

    def test_quorum_double_spend_surfaces_as_divergence(self, quorum):
        """The paper's private double-spend flaw is visible to the audit."""
        quorum.demonstrate_private_double_spend(
            "OrgA", "asset/1", group_a=["OrgB"], group_b=["OrgC"]
        )
        report = audit_convergence(quorum)
        assert any(d.scope == "asset/1" for d in report.divergences)

    def test_quorum_lost_payload_breaks_replayability(self, quorum):
        manager = quorum.managers["OrgB"]
        for payload_hash in manager.payload_hashes():
            manager.delete(payload_hash)
        report = audit_convergence(quorum)
        assert any(
            d.scope == "private-replay" and d.nodes == ("OrgB",)
            for d in report.divergences
        )

    def test_divergences_counted_and_emitted(self, fabric):
        fabric.channel("ch").states["OrgB"].put("k", 999)
        audit_convergence(fabric)
        counters = fabric.telemetry.metrics.snapshot()["counters"]
        assert counters["recovery.convergence.divergences{platform=fabric}"] == 1
        assert fabric.telemetry.events.named("recovery.divergence")


class TestDispatch:
    def test_unknown_platform_rejected(self):
        class Fake:
            platform_name = "besu"

        with pytest.raises(PlatformError, match="besu"):
            audit_convergence(Fake())
