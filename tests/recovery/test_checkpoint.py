"""Durable checkpoints: canonical round-trips, sequences, accounting."""

from __future__ import annotations

import pytest

from repro.common.errors import PlatformError
from repro.recovery.checkpoint import CheckpointStore, NodeCheckpoint
from repro.telemetry import Telemetry


def make_checkpoint(node="OrgA", sequence=1, **overrides) -> NodeCheckpoint:
    fields = {
        "node": node,
        "platform": "fabric",
        "sequence": sequence,
        "taken_at": 1.5,
        "heights": {"ch": 3},
        "state_hashes": {"ch": "ab" * 32},
        "pending": {"queue": ["h1"]},
        "snapshots": {"ch": {"values": {"k": 1}, "versions": {"k": 2}}},
    }
    fields.update(overrides)
    return NodeCheckpoint(**fields)


@pytest.fixture
def store() -> CheckpointStore:
    return CheckpointStore(telemetry=Telemetry())


class TestRoundTrip:
    def test_save_returns_decoded_copy(self, store):
        saved = store.save(make_checkpoint())
        assert saved == make_checkpoint()

    def test_latest_decodes_from_bytes(self, store):
        store.save(make_checkpoint(sequence=1))
        store.save(make_checkpoint(sequence=2, heights={"ch": 9}))
        latest = store.latest("OrgA")
        assert latest.sequence == 2
        assert latest.height_of("ch") == 9

    def test_latest_of_unknown_node_is_none(self, store):
        assert store.latest("Ghost") is None

    def test_history_preserves_order(self, store):
        for sequence in (1, 2, 3):
            store.save(make_checkpoint(sequence=sequence))
        assert [c.sequence for c in store.history("OrgA")] == [1, 2, 3]

    def test_height_of_unknown_scope_is_zero(self):
        assert make_checkpoint().height_of("other-channel") == 0

    def test_snapshot_values_survive_serialization(self, store):
        snapshot = {"ch": {"values": {"loc/LC-1": {"status": "paid"}},
                           "versions": {"loc/LC-1": 4}}}
        saved = store.save(make_checkpoint(snapshots=snapshot))
        assert saved.snapshots == snapshot


class TestSequences:
    def test_next_sequence_starts_at_one(self, store):
        assert store.next_sequence("OrgA") == 1

    def test_next_sequence_counts_per_node(self, store):
        store.save(make_checkpoint(node="OrgA"))
        store.save(make_checkpoint(node="OrgA", sequence=2))
        store.save(make_checkpoint(node="OrgB"))
        assert store.next_sequence("OrgA") == 3
        assert store.next_sequence("OrgB") == 2


class TestIntegrity:
    def test_corrupt_record_raises(self, store):
        store._records["OrgA"] = [b"42"]
        with pytest.raises(PlatformError, match="corrupt"):
            store.latest("OrgA")

    def test_save_counts_bytes_and_records(self, store):
        store.save(make_checkpoint())
        counters = store.telemetry.metrics.snapshot()["counters"]
        assert counters["recovery.checkpoint.saved"] == 1
        assert counters["recovery.checkpoint.bytes"] > 0

    def test_checkpoint_event_emitted(self, store):
        store.save(make_checkpoint())
        assert store.telemetry.events.named("recovery.checkpoint")
