"""Shared fixtures: deterministic randomness, the fast test group, clocks."""

from __future__ import annotations

import pytest

from repro.common.clock import SimClock
from repro.common.rng import DeterministicRNG
from repro.crypto.groups import cached_test_group
from repro.crypto.signatures import SignatureScheme


@pytest.fixture
def rng() -> DeterministicRNG:
    return DeterministicRNG("test-suite")


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture(scope="session")
def group():
    return cached_test_group()


@pytest.fixture(scope="session")
def scheme(group) -> SignatureScheme:
    return SignatureScheme(group)
