"""Quorum private-state consistency checking (divergence detection)."""

from __future__ import annotations

import pytest

from repro.execution.contracts import SmartContract
from repro.platforms.quorum import QuorumNetwork


@pytest.fixture
def net():
    network = QuorumNetwork(seed="consistency-test")
    for node in ("N1", "N2", "N3", "N4"):
        network.onboard(node)

    def put(view, args):
        view.put(args["key"], args["value"])
        return args["value"]

    contract = SmartContract("store", 1, "evm-solidity", {"put": put})
    network.deploy_contract("N1", contract)
    return network


class TestConsistentStates:
    def test_shared_private_key_consistent(self, net):
        net.send_private_transaction(
            "N1", "store", "put", {"key": "k", "value": 7},
            private_for=["N2", "N3"],
        )
        assert net.private_state_consistent("k")
        assert set(net.private_state_views("k")) == {"N1", "N2", "N3"}

    def test_unknown_key_trivially_consistent(self, net):
        assert net.private_state_consistent("ghost")
        assert net.private_state_views("ghost") == {}

    def test_no_divergence_under_honest_use(self, net):
        for n in range(5):
            net.send_private_transaction(
                "N1", "store", "put", {"key": f"k{n}", "value": n},
                private_for=["N2"],
            )
        assert net.divergent_keys() == []


class TestDivergenceDetection:
    def test_double_spend_produces_detectable_divergence(self, net):
        """The consistency checker makes the paper's flaw measurable."""
        net.demonstrate_private_double_spend("N1", "asset", ["N2"], ["N3"])
        assert not net.private_state_consistent("asset")
        assert net.divergent_keys() == ["asset"]

    def test_views_identify_the_disagreement(self, net):
        net.demonstrate_private_double_spend("N1", "asset", ["N2"], ["N3"])
        views = net.private_state_views("asset")
        assert views["N2"] == {"owner": "N2"}
        assert views["N3"] == {"owner": "N3"}

    def test_divergence_invisible_to_public_chain(self, net):
        """No on-chain evidence distinguishes the two private histories."""
        net.demonstrate_private_double_spend("N1", "asset", ["N2"], ["N3"])
        hashes = [
            tx.private_hashes.get("payload")
            for tx in net.chain.transactions()
            if tx.metadata.get("kind") == "private"
        ]
        # Both spends look like ordinary private transactions.
        assert len(hashes) == 2
        assert all(h is not None for h in hashes)
        net.chain.verify()  # the public chain itself is perfectly valid
