"""Quorum simulation: public/private state, tx manager, documented flaws."""

from __future__ import annotations

import pytest

from repro.common.errors import (
    ContractError,
    DoubleSpendError,
    MembershipError,
    OffChainError,
    PrivacyError,
)
from repro.execution.contracts import SmartContract
from repro.platforms.quorum import QuorumNetwork
from repro.platforms.quorum.txmanager import PrivateTransactionManager


def store_cc(cid="store"):
    def put(view, args):
        view.put(args["key"], args["value"])
        return args["value"]

    return SmartContract(
        contract_id=cid, version=1, language="evm-solidity",
        functions={"put": put},
    )


@pytest.fixture
def net():
    network = QuorumNetwork(seed="quorum-test")
    for node in ("N1", "N2", "N3", "N4"):
        network.onboard(node)
    network.deploy_contract("N1", store_cc())
    return network


class TestDeployment:
    def test_public_contract_visible_everywhere(self, net):
        assert net.code_visible_to("store") == {"N1", "N2", "N3", "N4"}

    def test_private_contract_scoped(self, net):
        net.deploy_contract("N1", store_cc("private-cc"), private_for=["N2"])
        assert net.code_visible_to("private-cc") == {"N1", "N2"}

    def test_non_evm_contract_rejected(self, net):
        bad = SmartContract("x", 1, "python-chaincode", {})
        with pytest.raises(ContractError, match="EVM"):
            net.deploy_contract("N1", bad)

    def test_unknown_party_in_private_for_rejected(self, net):
        with pytest.raises(MembershipError):
            net.deploy_contract("N1", store_cc("y"), private_for=["Ghost"])

    def test_unknown_deployer_rejected(self, net):
        with pytest.raises(MembershipError):
            net.deploy_contract("Ghost", store_cc("z"))


class TestPublicTransactions:
    def test_public_state_replicated_everywhere(self, net):
        net.send_public_transaction("N1", "store", "put", {"key": "k", "value": 5})
        for node in ("N1", "N2", "N3", "N4"):
            assert net.public_states[node].get("k") == 5

    def test_public_tx_on_chain(self, net):
        result = net.send_public_transaction(
            "N1", "store", "put", {"key": "k", "value": 5}
        )
        assert net.chain.height == 1
        assert result.tx.metadata["kind"] == "public"

    def test_public_exposure_network_wide(self, net):
        net.send_public_transaction("N1", "store", "put", {"key": "pub-k", "value": 5})
        net.network.run()
        assert "pub-k" in net.network.node("N4").observer.seen_data_keys


class TestPrivateTransactions:
    def test_private_state_only_at_participants(self, net):
        net.send_private_transaction(
            "N1", "store", "put", {"key": "priv", "value": 9}, private_for=["N2"]
        )
        assert net.private_states["N1"].get("priv") == 9
        assert net.private_states["N2"].get("priv") == 9
        assert not net.private_states["N3"].exists("priv")
        assert not net.private_states["N4"].exists("priv")

    def test_only_hash_on_chain(self, net):
        result = net.send_private_transaction(
            "N1", "store", "put", {"key": "priv", "value": 9}, private_for=["N2"]
        )
        tx = net.chain.transactions()[-1]
        assert tx.private_hashes["payload"] == result.payload_hash
        assert tx.writes == ()

    def test_participant_list_broadcast_to_all(self, net):
        """The paper's second Quorum drawback, reproduced."""
        net.send_private_transaction(
            "N1", "store", "put", {"key": "priv", "value": 9}, private_for=["N2"]
        )
        net.network.run()
        for outsider in ("N3", "N4"):
            observer = net.network.node(outsider).observer
            assert {"N1", "N2"} <= observer.seen_identities
            assert "priv" not in observer.seen_data_keys

    def test_non_participant_cannot_resolve_payload(self, net):
        result = net.send_private_transaction(
            "N1", "store", "put", {"key": "priv", "value": 9}, private_for=["N2"]
        )
        with pytest.raises(PrivacyError, match="not a party"):
            net.managers["N3"].resolve(result.payload_hash)

    def test_participants_resolve_identical_payload(self, net):
        result = net.send_private_transaction(
            "N1", "store", "put", {"key": "priv", "value": 9}, private_for=["N2"]
        )
        p1 = net.managers["N1"].resolve(result.payload_hash)
        p2 = net.managers["N2"].resolve(result.payload_hash)
        assert p1 == p2
        assert p1["args"] == {"key": "priv", "value": 9}

    def test_consensus_sees_submitter_and_participants(self, net):
        net.send_private_transaction(
            "N1", "store", "put", {"key": "priv", "value": 9}, private_for=["N2"]
        )
        assert {"N1", "N2"} <= net.sequencer.observer.seen_identities


class TestDoubleSpend:
    def test_private_double_spend_succeeds(self, net):
        """Section 5: 'it does not prevent the double spending of assets'."""
        views = net.demonstrate_private_double_spend(
            "N1", "asset", ["N2"], ["N3"]
        )
        assert views["group_a_view"] == {"owner": "N2"}
        assert views["group_b_view"] == {"owner": "N3"}

    def test_private_views_diverge(self, net):
        net.demonstrate_private_double_spend("N1", "asset", ["N2"], ["N3"])
        assert (
            net.private_states["N2"].get("asset")
            != net.private_states["N3"].get("asset")
        )

    def test_public_double_spend_rejected(self, net):
        with pytest.raises(DoubleSpendError):
            net.attempt_public_double_spend("N1", "asset-pub", "N2", "N3")

    def test_first_public_spend_committed(self, net):
        try:
            net.attempt_public_double_spend("N1", "asset-pub", "N2", "N3")
        except DoubleSpendError:
            pass
        assert net.public_states["N4"].get("asset-pub") == {"owner": "N2"}


class TestTransactionManager:
    def test_payload_hash_deterministic(self):
        m1 = PrivateTransactionManager("a")
        m2 = PrivateTransactionManager("b")
        managers = {"a": m1, "b": m2}
        h1 = m1.distribute({"x": 1}, ["a", "b"], managers)
        # Same payload from another sender: same hash (content-addressed).
        h2 = m2.distribute({"x": 1}, ["a", "b"], managers)
        assert h1 == h2

    def test_delete_breaks_replay(self):
        m1 = PrivateTransactionManager("a")
        m2 = PrivateTransactionManager("b")
        managers = {"a": m1, "b": m2}
        payload_hash = m1.distribute({"x": 1}, ["a", "b"], managers)
        m2.delete(payload_hash)
        with pytest.raises(PrivacyError):
            m2.resolve(payload_hash)

    def test_delete_missing_rejected(self):
        with pytest.raises(OffChainError):
            PrivateTransactionManager("a").delete("nope")

    def test_unknown_recipient_rejected(self):
        manager = PrivateTransactionManager("a")
        with pytest.raises(PrivacyError, match="no transaction manager"):
            manager.distribute({"x": 1}, ["ghost"], {"a": manager})

    def test_payload_encrypted_per_pair(self):
        m1 = PrivateTransactionManager("a")
        m2 = PrivateTransactionManager("b")
        managers = {"a": m1, "b": m2}
        payload_hash = m1.distribute({"secret": "v"}, ["a", "b"], managers)
        stored = m2._payloads[payload_hash]
        assert b"secret" not in stored.ciphertext.body
