"""Resilient private-payload redelivery: retry-until-available (satellite).

Default mode keeps the fail-fast refusal (no state moves before every
recipient is reachable); resilient mode lets the transaction proceed for
the reachable participants and queues the payload for redelivery, with
entitlement re-checked by the holding manager at redelivery time.
"""

from __future__ import annotations

import pytest

from repro.common.errors import DeliveryError, PrivacyError
from repro.execution.contracts import SmartContract
from repro.platforms.quorum import QuorumNetwork

ORGS = ("N1", "N2", "N3")


def store_cc(cid="store"):
    def put(view, args):
        view.put(args["key"], args["value"])
        return args["value"]

    return SmartContract(
        contract_id=cid, version=1, language="evm-solidity",
        functions={"put": put},
    )


def make_net(**kwargs) -> QuorumNetwork:
    net = QuorumNetwork(seed="redelivery-test", **kwargs)
    for org in ORGS:
        net.onboard(org)
    net.deploy_contract("N1", store_cc())
    return net


class TestDefaultFailFast:
    def test_partitioned_recipient_fails_before_state_mutation(self):
        net = make_net()
        net.network.partition("N1", "N2")
        with pytest.raises(DeliveryError, match="partition"):
            net.send_private_transaction(
                "N1", "store", "put", {"key": "k", "value": 1},
                private_for=["N2", "N3"],
            )
        for org in ORGS:
            assert not net.private_states[org].exists("k")

    def test_crashed_recipient_fails_fast(self):
        net = make_net()
        net.crash("N2")
        with pytest.raises(DeliveryError, match="down"):
            net.send_private_transaction(
                "N1", "store", "put", {"key": "k", "value": 1},
                private_for=["N2"],
            )


class TestResilientRedelivery:
    def test_transaction_proceeds_with_recipient_down(self):
        net = make_net(resilient_delivery=True)
        net.crash("N2")
        result = net.send_private_transaction(
            "N1", "store", "put", {"key": "k", "value": 1},
            private_for=["N2", "N3"],
        )
        # Reachable participants applied; the down one is owed a payload.
        assert net.private_states["N1"].get("k") == 1
        assert net.private_states["N3"].get("k") == 1
        assert not net.private_states["N2"].exists("k")
        assert not net.managers["N2"].has_payload(result.payload_hash)

    def test_redelivery_applies_after_node_returns(self):
        net = make_net(resilient_delivery=True)
        net.network.partition("N1", "N2")
        result = net.send_private_transaction(
            "N1", "store", "put", {"key": "k", "value": 1},
            private_for=["N2"],
        )
        assert net.redeliver_pending() == 0  # still partitioned: stays queued
        net.network.heal("N1", "N2")
        assert net.redeliver_pending() == 1
        assert net.private_states["N2"].get("k") == 1
        assert net.managers["N2"].has_payload(result.payload_hash)
        assert net.verify_private_state("N2")

    def test_redelivery_is_idempotent(self):
        net = make_net(resilient_delivery=True)
        net.network.partition("N1", "N2")
        net.send_private_transaction(
            "N1", "store", "put", {"key": "k", "value": 1}, private_for=["N2"]
        )
        net.network.heal("N1", "N2")
        assert net.redeliver_pending() == 1
        assert net.redeliver_pending() == 0  # a second drain finds nothing
        assert net.private_states["N2"].get("k") == 1

    def test_recovery_first_then_redelivery_does_not_double_apply(self):
        """A node that caught up via recover() skips its queued payloads:
        idempotence is keyed on the durable chain position."""
        net = make_net(resilient_delivery=True)
        net.crash("N2")
        net.send_private_transaction(
            "N1", "store", "put", {"key": "k", "value": 1}, private_for=["N2"]
        )
        net.recover("N2")  # catch-up already applies the private tx
        assert net.private_states["N2"].get("k") == 1
        assert net.redeliver_pending() == 0
        assert net.verify_private_state("N2")

    def test_redelivery_counters_recorded(self):
        net = make_net(resilient_delivery=True)
        net.network.partition("N1", "N2")
        net.send_private_transaction(
            "N1", "store", "put", {"key": "k", "value": 1}, private_for=["N2"]
        )
        net.network.heal("N1", "N2")
        net.redeliver_pending()
        counters = net.telemetry.metrics.snapshot()["counters"]
        assert counters["recovery.redelivery.queued"] == 1
        assert counters["recovery.redelivery.applied"] == 1


class TestEntitlement:
    def test_manager_refuses_unentitled_redelivery(self):
        net = make_net(resilient_delivery=True)
        result = net.send_private_transaction(
            "N1", "store", "put", {"key": "k", "value": 1}, private_for=["N2"]
        )
        with pytest.raises(PrivacyError):
            net.managers["N1"].redeliver(result.payload_hash, net.managers["N3"])
        assert not net.managers["N3"].has_payload(result.payload_hash)
