"""Corda backchain resolution and its privacy cost."""

from __future__ import annotations

import pytest

from repro.common.errors import StateError, ValidationError
from repro.platforms.corda import (
    Command,
    ContractState,
    CordaNetwork,
    StateRef,
    collect_backchain,
    disclosure_of,
    verify_backchain,
)


@pytest.fixture
def net():
    network = CordaNetwork(seed="backchain-test")
    for org in ("Alice", "Bob", "Carol", "Dave"):
        network.onboard(org)
    network.register_contract("asset", lambda wire: None)
    return network


def issue(net, owner, counterparty, data=None):
    state = ContractState(
        contract_id="asset", participants=(owner, counterparty),
        data=data or {"value": 100},
    )
    wire = net.build_transaction(
        inputs=[], outputs=[state],
        commands=[Command(name="Issue", signers=(owner, counterparty))],
    )
    return net.run_flow(owner, wire)


def transfer(net, ref, seller, buyer, data=None):
    state = ContractState(
        contract_id="asset", participants=(seller, buyer),
        data=data or {"value": 100},
    )
    wire = net.build_transaction(
        inputs=[ref], outputs=[state],
        commands=[Command(name="Transfer", signers=(seller, buyer))],
    )
    return net.run_flow(seller, wire)


@pytest.fixture
def three_hop(net):
    """Alice issues with Bob; Bob transfers to Carol; Carol to Dave."""
    issued = issue(net, "Alice", "Bob")
    hop1 = transfer(net, issued.output_refs[0], "Bob", "Carol")
    hop2 = transfer(net, hop1.output_refs[0], "Carol", "Dave")
    return issued, hop1, hop2


class TestCollection:
    def test_backchain_ordered_oldest_first(self, net, three_hop):
        issued, hop1, hop2 = three_hop
        chain = collect_backchain(net.vault("Dave"), hop2.stx.wire.tx_id)
        assert [stx.wire.tx_id for stx in chain] == [
            issued.stx.wire.tx_id, hop1.stx.wire.tx_id, hop2.stx.wire.tx_id,
        ]

    def test_missing_ancestor_detected(self, net, three_hop):
        __, __h, hop2 = three_hop
        vault = net.vault("Dave")
        # Remove the genesis transaction from the vault: provenance broken.
        genesis = collect_backchain(vault, hop2.stx.wire.tx_id)[0]
        del vault.transactions[genesis.wire.tx_id]
        with pytest.raises(StateError, match="cannot resolve ancestor"):
            collect_backchain(vault, hop2.stx.wire.tx_id)

    def test_verify_backchain_accepts_honest_chain(self, net, three_hop):
        __, __h, hop2 = three_hop
        chain = collect_backchain(net.vault("Dave"), hop2.stx.wire.tx_id)
        assert verify_backchain(chain, hop2.output_refs[0])

    def test_verify_rejects_reordered_chain(self, net, three_hop):
        __, __h, hop2 = three_hop
        chain = collect_backchain(net.vault("Dave"), hop2.stx.wire.tx_id)
        assert not verify_backchain(list(reversed(chain)), hop2.output_refs[0])

    def test_verify_rejects_wrong_tip(self, net, three_hop):
        issued, __h, hop2 = three_hop
        chain = collect_backchain(net.vault("Dave"), hop2.stx.wire.tx_id)
        assert not verify_backchain(chain, issued.output_refs[0])

    def test_verify_rejects_empty_chain(self, net, three_hop):
        __, __h, hop2 = three_hop
        assert not verify_backchain([], hop2.output_refs[0])


class TestDisclosure:
    def test_new_owner_learns_full_history(self, net, three_hop):
        """The backchain privacy cost: Dave learns Alice traded this."""
        __, __h, hop2 = three_hop
        chain = collect_backchain(net.vault("Dave"), hop2.stx.wire.tx_id)
        disclosure = disclosure_of(chain)
        assert disclosure.depth == 3
        assert {"Alice", "Bob", "Carol", "Dave"} <= disclosure.identities

    def test_disclosure_grows_with_hops(self, net):
        issued = issue(net, "Alice", "Bob")
        refs = [issued.output_refs[0]]
        parties = ["Bob", "Carol", "Dave"]
        for seller, buyer in zip(parties, parties[1:]):
            result = transfer(net, refs[-1], seller, buyer)
            refs.append(result.output_refs[0])
        depth_after_one = disclosure_of(
            collect_backchain(net.vault("Carol"), refs[1].tx_id)
        ).depth
        depth_after_two = disclosure_of(
            collect_backchain(net.vault("Dave"), refs[2].tx_id)
        ).depth
        assert depth_after_two == depth_after_one + 1

    def test_one_time_keys_hide_historic_identities(self, net):
        """The Section 2.1 mitigation: pseudonymous owners in the chain."""
        anon_alice = net.create_confidential_identity("Alice")
        anon_bob = net.create_confidential_identity("Bob")
        state = ContractState(
            contract_id="asset",
            participants=("Alice", "Bob"),
            data={"value": 100},
            owner_key_y=anon_alice.public.y,
        )
        wire = net.build_transaction(
            inputs=[], outputs=[state],
            commands=[Command(name="Issue", signers=("Alice", "Bob"))],
        )
        issued = net.run_flow("Alice", wire)
        moved = ContractState(
            contract_id="asset",
            participants=("Bob", "Carol"),
            data={"value": 100},
            owner_key_y=anon_bob.public.y,
        )
        wire2 = net.build_transaction(
            inputs=[issued.output_refs[0]], outputs=[moved],
            commands=[Command(name="Transfer", signers=("Bob", "Carol"))],
        )
        result = net.run_flow("Bob", wire2)
        disclosure = disclosure_of(
            collect_backchain(net.vault("Carol"), result.stx.wire.tx_id)
        )
        # The pseudonymous keys are visible; they are not identities.
        assert len(disclosure.pseudonymous_keys) == 2
        assert anon_alice.public.y in disclosure.pseudonymous_keys


class TestNetworkResolution:
    def test_resolution_populates_requester_vault(self, net, three_hop):
        __, __h, hop2 = three_hop
        tip = hop2.output_refs[0]
        net.onboard("Eve")
        disclosure = net.resolve_backchain("Dave", "Eve", tip)
        for stx in disclosure.transactions:
            assert net.vault("Eve").knows_transaction(stx.wire.tx_id)

    def test_resolution_exposure_accounted(self, net, three_hop):
        __, __h, hop2 = three_hop
        net.onboard("Eve")
        net.resolve_backchain("Dave", "Eve", hop2.output_refs[0])
        net.network.run()
        observer = net.network.node("Eve").observer
        assert {"Alice", "Bob", "Carol"} <= observer.seen_identities

    def test_resolution_rejects_bad_tip(self, net, three_hop):
        issued, __h, hop2 = three_hop
        net.onboard("Eve")
        bad_tip = StateRef(tx_id=hop2.stx.wire.tx_id, index=99)
        with pytest.raises(ValidationError, match="structural"):
            net.resolve_backchain("Dave", "Eve", bad_tip)
