"""Fabric simulation: channels, lifecycle, PDCs, Idemix, orderer visibility."""

from __future__ import annotations

import pytest

from repro.common.errors import (
    ContractError,
    MembershipError,
    PlatformError,
    ValidationError,
)
from repro.execution.contracts import SmartContract
from repro.ledger.validation import EndorsementPolicy
from repro.offchain.stores import OffChainStore
from repro.platforms.fabric import ANONYMOUS_CLIENT, FabricNetwork


def put_cc(cid="cc"):
    def put(view, args):
        view.put(args["key"], args["value"])
        return args["value"]

    def read(view, args):
        return view.get(args["key"])

    return SmartContract(
        contract_id=cid, version=1, language="python-chaincode",
        functions={"put": put, "read": read},
    )


@pytest.fixture
def net():
    network = FabricNetwork(seed="fabric-test")
    for org in ("Org1", "Org2", "Org3"):
        network.onboard(org)
    return network


@pytest.fixture
def channel(net):
    channel = net.create_channel("ch", ["Org1", "Org2"])
    net.deploy_chaincode("ch", put_cc(), ["Org1", "Org2"])
    return channel


class TestMembership:
    def test_onboard_registers_node_and_cert(self, net):
        assert "Org1" in net.network.nodes()
        net.ca.verify(net.party("Org1").certificate)

    def test_duplicate_onboard_rejected(self, net):
        with pytest.raises(PlatformError, match="already onboarded"):
            net.onboard("Org1")

    def test_channel_requires_onboarded_members(self, net):
        with pytest.raises(MembershipError):
            net.create_channel("bad", ["Org1", "Ghost"])

    def test_duplicate_channel_rejected(self, net, channel):
        with pytest.raises(PlatformError, match="already exists"):
            net.create_channel("ch", ["Org1"])


class TestChaincodeLifecycle:
    def test_commit_requires_majority_approval(self, net):
        channel = net.create_channel("ch2", ["Org1", "Org2", "Org3"])
        contract = put_cc("cc2")
        net.install_chaincode("Org1", contract)
        channel.approve_definition(
            "Org1", "cc2", 1, EndorsementPolicy.any_of(["Org1"])
        )
        with pytest.raises(ContractError, match="majority"):
            channel.commit_definition("cc2")
        channel.approve_definition(
            "Org2", "cc2", 1, EndorsementPolicy.any_of(["Org1"])
        )
        definition = channel.commit_definition("cc2")
        assert definition.committed

    def test_invoke_requires_committed_definition(self, net):
        net.create_channel("ch3", ["Org1", "Org2"])
        with pytest.raises(ContractError, match="not committed"):
            net.invoke("ch3", "Org1", "ghost-cc", "put", {})

    def test_chaincode_visible_only_on_endorsing_peers(self, net, channel):
        visible = net.engine.registry.nodes_with_code_visibility("cc")
        assert visible == {"Org1", "Org2"}


class TestInvoke:
    def test_commit_updates_all_replicas(self, net, channel):
        net.invoke("ch", "Org1", "cc", "put", {"key": "k", "value": 7})
        assert channel.state_of("Org1").get("k") == 7
        assert channel.state_of("Org2").get("k") == 7
        assert channel.replicas_consistent()

    def test_chain_grows(self, net, channel):
        net.invoke("ch", "Org1", "cc", "put", {"key": "k", "value": 7})
        net.invoke("ch", "Org2", "cc", "put", {"key": "j", "value": 8})
        assert channel.chain.height == 2
        channel.chain.verify()

    def test_non_member_cannot_invoke(self, net, channel):
        with pytest.raises(MembershipError):
            net.invoke("ch", "Org3", "cc", "put", {"key": "k", "value": 1})

    def test_endorsements_satisfy_policy(self, net, channel):
        result = net.invoke("ch", "Org1", "cc", "put", {"key": "k", "value": 1})
        endorsers = {e.endorser for e in result.tx.endorsements}
        assert endorsers == {"Org1", "Org2"}

    def test_read_version_recorded(self, net, channel):
        net.invoke("ch", "Org1", "cc", "put", {"key": "k", "value": 1})
        result = net.invoke("ch", "Org1", "cc", "read", {"key": "k"})
        assert result.return_value == 1
        reads = {r.key: r.version for r in result.tx.reads}
        assert reads == {"k": 1}

    def test_committed_and_invalid_recorded(self, net, channel):
        result = net.invoke("ch", "Org1", "cc", "put", {"key": "k", "value": 1})
        assert result.tx.tx_id in channel.committed_tx_ids


class TestPrivacyProperties:
    def test_non_members_receive_nothing(self, net, channel):
        net.invoke("ch", "Org1", "cc", "put", {"key": "secret", "value": 1})
        net.network.run()
        outsider = net.network.node("Org3").observer
        assert "secret" not in outsider.seen_data_keys
        assert not ({"Org1", "Org2"} & outsider.seen_identities)

    def test_orderer_sees_members_and_data(self, net, channel):
        """The Section 5 caveat, reproduced."""
        net.invoke("ch", "Org1", "cc", "put", {"key": "secret", "value": 1})
        assert {"Org1", "Org2"} <= net.orderer.observer.seen_identities
        assert "secret" in net.orderer.observer.seen_data_keys

    def test_channels_isolate_each_other(self, net, channel):
        net.create_channel("ch-b", ["Org2", "Org3"])
        net.deploy_chaincode("ch-b", put_cc("cc-b"), ["Org2", "Org3"])
        net.invoke("ch", "Org1", "cc", "put", {"key": "a-secret", "value": 1})
        net.invoke("ch-b", "Org3", "cc-b", "put", {"key": "b-secret", "value": 2})
        net.network.run()
        # Org3 (only on ch-b) never learned ch's data, and vice versa.
        assert "a-secret" not in net.network.node("Org3").observer.seen_data_keys
        assert "b-secret" not in net.network.node("Org1").observer.seen_data_keys
        # But the shared orderer accumulated both (S3.4).
        assert {"a-secret", "b-secret"} <= net.orderer.observer.seen_data_keys


class TestIdemix:
    def test_anonymous_submission_hides_client(self, net, channel):
        result = net.invoke(
            "ch", "Org1", "cc", "put", {"key": "k", "value": 1}, anonymous=True
        )
        assert result.tx.submitter == ANONYMOUS_CLIENT
        assert "idemix" in result.tx.metadata

    def test_anonymous_submitter_not_in_orderer_view(self, net, channel):
        before = set(net.orderer.observer.seen_identities)
        net.invoke(
            "ch", "Org1", "cc", "put", {"key": "k2", "value": 1}, anonymous=True
        )
        gained = net.orderer.observer.seen_identities - before
        # The orderer learns the endorsers but never the submitting client.
        assert ANONYMOUS_CLIENT not in gained

    def test_anonymous_commit_still_applies(self, net, channel):
        net.invoke(
            "ch", "Org1", "cc", "put", {"key": "anon", "value": 5}, anonymous=True
        )
        assert channel.reference_state().get("anon") == 5


class TestPrivateDataCollections:
    def test_pdc_keeps_values_off_chain(self, net, channel):
        channel.create_collection("col", ["Org1"])
        result = net.invoke(
            "ch", "Org1", "cc", "put", {"key": "ref", "value": "see-col"},
            collection_writes={"col": {"pii": {"ssn": "123"}}},
        )
        # Hash on chain, value in the member store only.
        assert "col/pii" in result.tx.private_hashes
        assert channel.collection("col").get("Org1", "pii") == {"ssn": "123"}
        for tx in channel.chain.transactions():
            for write in tx.writes:
                assert write.value != {"ssn": "123"}

    def test_pdc_members_listed_in_transaction(self, net, channel):
        """The paper's PDC caveat: membership is disclosed."""
        channel.create_collection("col", ["Org1"])
        result = net.invoke(
            "ch", "Org1", "cc", "put", {"key": "ref", "value": 1},
            collection_writes={"col": {"pii": "x"}},
        )
        assert result.tx.metadata["collections"] == [
            {"collection": "col", "members": ["Org1"]}
        ]

    def test_non_member_cannot_read_collection(self, net, channel):
        channel.create_collection("col", ["Org1"])
        with pytest.raises(MembershipError):
            channel.collection("col").get("Org2", "pii")

    def test_purge_erases_from_all_member_stores(self, net, channel):
        channel.create_collection("col", ["Org1", "Org2"])
        net.invoke(
            "ch", "Org1", "cc", "put", {"key": "ref", "value": 1},
            collection_writes={"col": {"pii": "x"}},
        )
        channel.collection("col").purge("pii", reason="gdpr")
        for store in channel.collection("col").stores.values():
            assert store.is_deleted("pii")

    def test_unknown_collection_rejected(self, net, channel):
        with pytest.raises(MembershipError, match="no collection"):
            channel.collection("ghost")

    def test_collection_members_must_be_channel_members(self, net, channel):
        with pytest.raises(MembershipError):
            channel.create_collection("bad", ["Org1", "Org3"])
