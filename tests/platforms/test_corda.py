"""Corda simulation: flows, notaries, tear-offs, confidential identities."""

from __future__ import annotations

import pytest

from repro.common.errors import (
    ContractError,
    DoubleSpendError,
    MembershipError,
    ProofError,
    ValidationError,
)
from repro.platforms.corda import (
    Command,
    ComponentGroup,
    ContractState,
    CordaNetwork,
    Oracle,
    StateRef,
)


@pytest.fixture
def net():
    network = CordaNetwork(seed="corda-test")
    for org in ("Alice", "Bob", "Carol"):
        network.onboard(org)

    def verify_iou(wire):
        for state in wire.outputs:
            if state.contract_id == "iou" and state.data.get("amount", 0) <= 0:
                raise ContractError("amount must be positive")

    network.register_contract("iou", verify_iou, language="kotlin")
    return network


def issue_iou(net, amount=10, participants=("Alice", "Bob")):
    state = ContractState(
        contract_id="iou", participants=tuple(participants),
        data={"amount": amount},
    )
    wire = net.build_transaction(
        inputs=[], outputs=[state],
        commands=[Command(name="Issue", signers=tuple(participants))],
    )
    return net.run_flow(participants[0], wire)


class TestFlows:
    def test_flow_records_in_participant_vaults(self, net):
        result = issue_iou(net)
        assert net.vault("Alice").knows_transaction(result.stx.wire.tx_id)
        assert net.vault("Bob").knows_transaction(result.stx.wire.tx_id)

    def test_uninvolved_vault_empty(self, net):
        result = issue_iou(net)
        assert not net.vault("Carol").knows_transaction(result.stx.wire.tx_id)
        assert len(net.vault("Carol")) == 0

    def test_all_signers_collected(self, net):
        result = issue_iou(net)
        assert set(result.stx.signatures) == {"Alice", "Bob"}

    def test_signatures_verify_over_root(self, net):
        result = issue_iou(net)
        result.stx.verify_signatures(
            net.scheme,
            lambda n: net.party(n).public_key,
            {"Alice", "Bob"},
        )

    def test_contract_verification_runs(self, net):
        with pytest.raises(ContractError, match="positive"):
            issue_iou(net, amount=-5)

    def test_unregistered_contract_rejected(self, net):
        state = ContractState(
            contract_id="ghost", participants=("Alice", "Bob"), data={}
        )
        wire = net.build_transaction(
            inputs=[], outputs=[state],
            commands=[Command(name="X", signers=("Alice",))],
        )
        with pytest.raises(ContractError, match="no verifier"):
            net.run_flow("Alice", wire)

    def test_unknown_initiator_rejected(self, net):
        wire = net.build_transaction(inputs=[], outputs=[], commands=[])
        with pytest.raises(MembershipError):
            net.run_flow("Mallory", wire)

    def test_spend_consumes_state(self, net):
        issued = issue_iou(net)
        spend = net.build_transaction(
            inputs=[issued.output_refs[0]],
            outputs=[ContractState("iou", ("Alice", "Bob"), {"amount": 10, "settled": True})],
            commands=[Command(name="Settle", signers=("Alice", "Bob"))],
        )
        net.run_flow("Alice", spend)
        assert issued.output_refs[0] not in net.vault("Alice").unconsumed


class TestNotary:
    def test_double_spend_rejected(self, net):
        issued = issue_iou(net)

        def spend_tx(tag):
            return net.build_transaction(
                inputs=[issued.output_refs[0]],
                outputs=[ContractState("iou", ("Alice", "Bob"), {"amount": 10, "tag": tag})],
                commands=[Command(name="Settle", signers=("Alice", "Bob"))],
            )

        net.run_flow("Alice", spend_tx("first"))
        with pytest.raises(DoubleSpendError):
            net.run_flow("Alice", spend_tx("second"))

    def test_non_validating_notary_sees_nothing(self, net):
        issue_iou(net, amount=777)
        assert net.notary.observer.seen_identities == set()
        assert net.notary.observer.seen_data_keys == set()
        assert net.notary.total_notarised == 1

    def test_validating_notary_sees_everything(self):
        net = CordaNetwork(seed="corda-validating", validating_notary=True)
        for org in ("Alice", "Bob"):
            net.onboard(org)
        net.register_contract("iou", lambda wire: None)
        issue_iou(net)
        assert {"Alice", "Bob"} <= net.notary.observer.seen_identities
        assert "amount" in net.notary.observer.seen_data_keys

    def test_validating_notary_reruns_contracts(self):
        net = CordaNetwork(seed="corda-validating2", validating_notary=True)
        for org in ("Alice", "Bob"):
            net.onboard(org)

        def strict(wire):
            for state in wire.outputs:
                if state.data.get("amount", 0) > 100:
                    raise ContractError("too large")

        net.register_contract("iou", strict)
        with pytest.raises(ContractError, match="too large"):
            issue_iou(net, amount=1000)

    def test_notary_spent_ref_tracking(self, net):
        issued = issue_iou(net)
        assert not net.notary.is_spent(issued.output_refs[0])
        spend = net.build_transaction(
            inputs=[issued.output_refs[0]],
            outputs=[ContractState("iou", ("Alice", "Bob"), {"amount": 10, "x": 1})],
            commands=[Command(name="Settle", signers=("Alice", "Bob"))],
        )
        net.run_flow("Alice", spend)
        assert net.notary.is_spent(issued.output_refs[0])


class TestTearOffs:
    def test_filtered_transaction_verifies(self, net):
        issued = issue_iou(net)
        filtered = issued.stx.wire.filtered(
            [ComponentGroup.COMMANDS, ComponentGroup.NOTARY]
        )
        assert filtered.verify()

    def test_hidden_groups_absent(self, net):
        issued = issue_iou(net)
        filtered = issued.stx.wire.filtered([ComponentGroup.COMMANDS])
        assert filtered.visible_of_group("outputs") == []
        assert len(filtered.visible_of_group("commands")) == 1

    def test_root_matches_full_transaction(self, net):
        issued = issue_iou(net)
        filtered = issued.stx.wire.filtered([ComponentGroup.NOTARY])
        assert filtered.signing_payload() == issued.stx.wire.signing_payload()

    def test_component_indices_partition(self, net):
        issued = issue_iou(net)
        wire = issued.stx.wire
        all_indices = []
        for group in ComponentGroup:
            all_indices.extend(wire.component_indices(group))
        assert sorted(all_indices) == list(range(wire.merkle_tree().leaf_count))


class TestOracle:
    @pytest.fixture
    def rate_wire(self, net):
        state = ContractState(
            contract_id="iou", participants=("Alice", "Bob"),
            data={"amount": 50, "notional": 1_000_000},
        )
        return net.build_transaction(
            inputs=[], outputs=[state],
            commands=[
                Command(name="Issue", signers=("Alice", "Bob")),
                Command(name="Rate", signers=("oracle",),
                        payload={"fact": "EUR/USD", "value": 1.25}),
            ],
        )

    def test_oracle_attests_correct_fact(self, net, rate_wire):
        oracle = Oracle("oracle", net.scheme, {"EUR/USD": 1.25})
        filtered = rate_wire.filtered([ComponentGroup.COMMANDS, ComponentGroup.NOTARY])
        attestation = oracle.attest(filtered, "EUR/USD")
        assert net.scheme.verify(
            oracle.key.public, rate_wire.signing_payload(), attestation.signature
        )

    def test_oracle_rejects_wrong_value(self, net, rate_wire):
        oracle = Oracle("oracle", net.scheme, {"EUR/USD": 1.30})
        filtered = rate_wire.filtered([ComponentGroup.COMMANDS, ComponentGroup.NOTARY])
        with pytest.raises(ValidationError, match="oracle says"):
            oracle.attest(filtered, "EUR/USD")

    def test_oracle_rejects_missing_fact(self, net, rate_wire):
        oracle = Oracle("oracle", net.scheme, {"EUR/USD": 1.25})
        filtered = rate_wire.filtered([ComponentGroup.NOTARY])
        with pytest.raises(ValidationError, match="no visible command"):
            oracle.attest(filtered, "EUR/USD")

    def test_oracle_never_sees_torn_off_outputs(self, net, rate_wire):
        oracle = Oracle("oracle", net.scheme, {"EUR/USD": 1.25})
        filtered = rate_wire.filtered([ComponentGroup.COMMANDS, ComponentGroup.NOTARY])
        oracle.attest(filtered, "EUR/USD")
        assert "notional" not in oracle.observer.seen_data_keys

    def test_oracle_signature_usable_in_flow(self, net, rate_wire):
        oracle = Oracle("oracle", net.scheme, {"EUR/USD": 1.25})
        filtered = rate_wire.filtered([ComponentGroup.COMMANDS, ComponentGroup.NOTARY])
        attestation = oracle.attest(filtered, "EUR/USD")
        result = net.run_flow(
            "Alice", rate_wire,
            extra_signatures={"oracle": attestation.signature},
        )
        assert "oracle" in result.stx.signatures


class TestConfidentialIdentities:
    def test_one_time_keys_unlinkable(self, net):
        a = net.create_confidential_identity("Alice")
        b = net.create_confidential_identity("Alice")
        assert a.public.y != b.public.y

    def test_owner_resolvable_with_certificate(self, net):
        identity = net.create_confidential_identity("Alice")
        assert net.reveal_owner("Bob", identity.public.y) == "Alice"

    def test_unknown_key_unresolvable(self, net):
        with pytest.raises(MembershipError, match="no linking certificate"):
            net.reveal_owner("Bob", 12345)

    def test_state_owned_by_one_time_key(self, net):
        identity = net.create_confidential_identity("Alice")
        state = ContractState(
            contract_id="iou", participants=("Alice", "Bob"),
            data={"amount": 5}, owner_key_y=identity.public.y,
        )
        wire = net.build_transaction(
            inputs=[], outputs=[state],
            commands=[Command(name="Issue", signers=("Alice", "Bob"))],
        )
        result = net.run_flow("Alice", wire)
        recorded = net.vault("Bob").state_at(result.output_refs[0])
        assert recorded.owner_key_y == identity.public.y
        assert recorded.owner_key_y != net.party("Alice").public_key.y


class TestP2PPrivacy:
    def test_uninvolved_node_receives_no_messages(self, net):
        issue_iou(net, amount=42)
        net.network.run()
        carol = net.network.node("Carol")
        assert carol.inbox == []
        assert carol.observer.seen_identities == set()
