"""Capability probes: every platform answers every Table 1 row."""

from __future__ import annotations

import pytest

from repro.core.mechanisms import Mechanism, all_mechanisms
from repro.core.matrix import PAPER_TABLE_1
from repro.platforms.base import SupportLevel
from repro.platforms.corda import CordaNetwork
from repro.platforms.fabric import FabricNetwork
from repro.platforms.quorum import QuorumNetwork


@pytest.fixture(scope="module")
def probe_results():
    platforms = [
        FabricNetwork(seed="probes-f"),
        CordaNetwork(seed="probes-c"),
        QuorumNetwork(seed="probes-q"),
    ]
    return {p.platform_name: p.probe_all() for p in platforms}


class TestCoverage:
    def test_every_platform_answers_every_mechanism(self, probe_results):
        for platform, results in probe_results.items():
            assert set(results) == set(all_mechanisms())

    def test_results_carry_evidence(self, probe_results):
        for results in probe_results.values():
            for result in results.values():
                assert result.evidence
                assert len(result.evidence) > 20

    def test_most_probes_are_exercised(self, probe_results):
        """The matrix should rest on executed code, not opinion."""
        for platform, results in probe_results.items():
            exercised = sum(1 for r in results.values() if r.exercised)
            assert exercised >= len(results) - 4, platform


class TestAgreementWithPaper:
    @pytest.mark.parametrize("platform", ["fabric", "corda", "quorum"])
    def test_column_matches_paper(self, probe_results, platform):
        for mechanism in all_mechanisms():
            expected = PAPER_TABLE_1[(platform, mechanism)]
            actual = probe_results[platform][mechanism].level
            assert actual == expected, (
                f"{platform}/{mechanism.value}: paper {expected.value!r}, "
                f"probe {actual.value!r}"
            )


class TestKeyDifferentiators:
    """The cells that distinguish the platforms, asserted individually."""

    def test_only_fabric_has_native_zkp_identity(self, probe_results):
        levels = {
            p: probe_results[p][Mechanism.ZKP_OF_IDENTITY].level
            for p in probe_results
        }
        assert levels["fabric"] is SupportLevel.NATIVE
        assert levels["corda"] is SupportLevel.REWRITE
        assert levels["quorum"] is SupportLevel.REWRITE

    def test_only_corda_has_native_one_time_keys(self, probe_results):
        levels = {
            p: probe_results[p][Mechanism.ONE_TIME_PUBLIC_KEYS].level
            for p in probe_results
        }
        assert levels["corda"] is SupportLevel.NATIVE
        assert levels["fabric"] is SupportLevel.REWRITE
        assert levels["quorum"] is SupportLevel.IMPLEMENTABLE

    def test_only_corda_has_native_tear_offs(self, probe_results):
        levels = {
            p: probe_results[p][Mechanism.MERKLE_TEAR_OFFS].level
            for p in probe_results
        }
        assert levels["corda"] is SupportLevel.NATIVE
        assert levels["fabric"] is SupportLevel.IMPLEMENTABLE
        assert levels["quorum"] is SupportLevel.REWRITE

    def test_tee_universally_requires_rewrite(self, probe_results):
        for platform in probe_results:
            assert (
                probe_results[platform][Mechanism.TRUSTED_EXECUTION_ENVIRONMENT].level
                is SupportLevel.REWRITE
            )

    def test_advanced_crypto_universally_implementable(self, probe_results):
        for platform in probe_results:
            for mechanism in (
                Mechanism.ZKP_ON_DATA,
                Mechanism.MULTIPARTY_COMPUTATION,
                Mechanism.HOMOMORPHIC_ENCRYPTION,
            ):
                assert (
                    probe_results[platform][mechanism].level
                    is SupportLevel.IMPLEMENTABLE
                )

    def test_corda_install_scoping_not_applicable(self, probe_results):
        assert (
            probe_results["corda"][Mechanism.INSTALL_ON_INVOLVED_NODES].level
            is SupportLevel.NOT_APPLICABLE
        )

    def test_everyone_separates_ledgers(self, probe_results):
        for platform in probe_results:
            for mechanism in (
                Mechanism.SEPARATION_OF_LEDGERS_PARTIES,
                Mechanism.SEPARATION_OF_LEDGERS_DATA,
            ):
                assert probe_results[platform][mechanism].level is SupportLevel.NATIVE
