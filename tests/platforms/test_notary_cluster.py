"""Notary clusters: quorum receipts, crash tolerance, double-spend safety."""

from __future__ import annotations

import pytest

from repro.common.clock import SimClock
from repro.common.errors import DoubleSpendError, OrderingError
from repro.platforms.corda import (
    Command,
    ComponentGroup,
    ContractState,
    NotaryCluster,
)
from repro.platforms.corda.states import StateRef
from repro.platforms.corda.transactions import WireTransaction


@pytest.fixture
def cluster(scheme, clock):
    return NotaryCluster("cluster", scheme, clock, replicas=3)


def make_wire(inputs=(), tag=0) -> WireTransaction:
    state = ContractState(
        contract_id="asset", participants=("A", "B"), data={"tag": tag}
    )
    return WireTransaction(
        inputs=tuple(inputs),
        outputs=(state,),
        commands=(Command(name="Move", signers=("A", "B")),),
        attachments=(),
        notary="cluster",
        time_window=0.0,
    )


def filtered(wire):
    return wire.filtered([ComponentGroup.INPUTS, ComponentGroup.NOTARY])


class TestClusterSetup:
    def test_even_size_rejected(self, scheme, clock):
        with pytest.raises(OrderingError, match="odd"):
            NotaryCluster("c", scheme, clock, replicas=4)

    def test_majority(self, cluster, scheme, clock):
        assert cluster.majority() == 2
        assert NotaryCluster("c5", scheme, clock, replicas=5).majority() == 3


class TestQuorumNotarisation:
    def test_majority_receipt(self, cluster):
        receipt = cluster.notarise_filtered(filtered(make_wire()))
        assert receipt.signer_count >= cluster.majority()

    def test_double_spend_rejected_cluster_wide(self, cluster):
        genesis = make_wire(tag=1)
        cluster.notarise_filtered(filtered(genesis))
        ref = StateRef(tx_id=genesis.tx_id, index=0)
        cluster.notarise_filtered(filtered(make_wire(inputs=[ref], tag=2)))
        with pytest.raises(DoubleSpendError):
            cluster.notarise_filtered(filtered(make_wire(inputs=[ref], tag=3)))

    def test_survives_minority_crash(self, cluster):
        cluster.crash(0)
        receipt = cluster.notarise_filtered(filtered(make_wire(tag=4)))
        assert receipt.signer_count >= cluster.majority()

    def test_majority_crash_halts_service(self, cluster):
        cluster.crash(0)
        cluster.crash(1)
        with pytest.raises(OrderingError, match="quorum"):
            cluster.notarise_filtered(filtered(make_wire(tag=5)))

    def test_recovery_restores_service(self, cluster):
        cluster.crash(0)
        cluster.crash(1)
        cluster.recover(0)
        receipt = cluster.notarise_filtered(filtered(make_wire(tag=6)))
        assert receipt.signer_count >= 2

    def test_receipts_from_distinct_replicas(self, cluster):
        receipt = cluster.notarise_filtered(filtered(make_wire(tag=7)))
        notaries = [r.notary for r in receipt.receipts]
        assert len(set(notaries)) == len(notaries)


class TestClusterVisibility:
    def test_non_validating_cluster_learns_nothing(self, cluster):
        cluster.notarise_filtered(filtered(make_wire(tag=8)))
        knowledge = cluster.combined_knowledge()
        assert knowledge["identities"] == []
        assert knowledge["data_keys"] == []

    def test_validating_cluster_multiplies_visibility(self, scheme, clock):
        """Every replica of a validating cluster sees the payload — the
        replication-visibility trade-off, same as the Raft orderer."""
        cluster = NotaryCluster(
            "vc", scheme, clock, replicas=3, validating=True
        )
        from repro.platforms.corda.transactions import SignedTransaction

        wire = make_wire(tag=9)
        stx = SignedTransaction(wire=wire)
        key_a = scheme.keygen_from_seed("A")
        key_b = scheme.keygen_from_seed("B")
        stx.add_signature("A", scheme.sign(key_a, wire.signing_payload()))
        stx.add_signature("B", scheme.sign(key_b, wire.signing_payload()))
        cluster.notarise_full(stx)
        knowledge = cluster.combined_knowledge()
        assert "A" in knowledge["identities"]
        assert "tag" in knowledge["data_keys"]
