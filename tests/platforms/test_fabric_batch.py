"""Fabric batch commit: validation codes and MVCC conflicts in one block."""

from __future__ import annotations

import pytest

from repro.common.errors import PlatformError
from repro.execution.contracts import SmartContract
from repro.platforms.fabric import FabricNetwork, ValidationCode


@pytest.fixture
def net():
    network = FabricNetwork(seed="batch-test")
    for org in ("Org1", "Org2"):
        network.onboard(org)
    network.create_channel("ch", ["Org1", "Org2"])

    def put(view, args):
        view.put(args["key"], args["value"])
        return args["value"]

    def transfer(view, args):
        balance = view.get("balance", 0)
        view.put("balance", balance - args["amount"])
        return balance - args["amount"]

    contract = SmartContract(
        "cc", 1, "python-chaincode", {"put": put, "transfer": transfer}
    )
    network.deploy_chaincode("ch", contract, ["Org1", "Org2"])
    return network


class TestBatchCommit:
    def test_independent_proposals_all_valid(self, net):
        proposals = [
            net.propose("ch", "Org1", "cc", "put", {"key": f"k{n}", "value": n})
            for n in range(3)
        ]
        results = net.submit_batch("ch", proposals)
        assert all(r.valid for r in results)
        assert all(r.validation_code is ValidationCode.VALID for r in results)

    def test_one_block_many_transactions(self, net):
        proposals = [
            net.propose("ch", "Org1", "cc", "put", {"key": f"k{n}", "value": n})
            for n in range(4)
        ]
        height_before = net.channel("ch").chain.height
        net.submit_batch("ch", proposals)
        chain = net.channel("ch").chain
        assert chain.height == height_before + 1
        assert len(chain.blocks()[-1].transactions) == 4
        chain.verify()

    def test_wrong_channel_rejected(self, net):
        net.create_channel("other", ["Org1"])
        proposal = net.propose("ch", "Org1", "cc", "put", {"key": "k", "value": 1})
        with pytest.raises(PlatformError, match="different channel"):
            net.submit_batch("other", [proposal])


class TestMVCCConflicts:
    def test_conflicting_reads_first_wins(self, net):
        """Two transfers endorsed over the same balance snapshot: the
        second is marked MVCC_READ_CONFLICT and does not apply."""
        net.invoke("ch", "Org1", "cc", "put", {"key": "balance", "value": 100})
        a = net.propose("ch", "Org1", "cc", "transfer", {"amount": 30})
        b = net.propose("ch", "Org2", "cc", "transfer", {"amount": 50})
        results = net.submit_batch("ch", [a, b])
        assert results[0].validation_code is ValidationCode.VALID
        assert results[1].validation_code is ValidationCode.MVCC_READ_CONFLICT
        # Only the first transfer applied — no double spend of the balance.
        assert net.channel("ch").reference_state().get("balance") == 70

    def test_conflict_ordering_is_block_order(self, net):
        net.invoke("ch", "Org1", "cc", "put", {"key": "balance", "value": 100})
        a = net.propose("ch", "Org1", "cc", "transfer", {"amount": 30})
        b = net.propose("ch", "Org2", "cc", "transfer", {"amount": 50})
        results = net.submit_batch("ch", [b, a])
        assert results[0].valid
        assert not results[1].valid
        assert net.channel("ch").reference_state().get("balance") == 50

    def test_invalid_tx_still_recorded_on_chain(self, net):
        net.invoke("ch", "Org1", "cc", "put", {"key": "balance", "value": 10})
        a = net.propose("ch", "Org1", "cc", "transfer", {"amount": 1})
        b = net.propose("ch", "Org2", "cc", "transfer", {"amount": 2})
        results = net.submit_batch("ch", [a, b])
        channel = net.channel("ch")
        chain_tx_ids = {tx.tx_id for tx in channel.chain.transactions()}
        assert results[1].tx.tx_id in chain_tx_ids
        assert results[1].tx.tx_id in channel.invalid_tx_ids

    def test_replicas_consistent_after_conflicts(self, net):
        net.invoke("ch", "Org1", "cc", "put", {"key": "balance", "value": 100})
        proposals = [
            net.propose("ch", "Org1", "cc", "transfer", {"amount": 10})
            for __ in range(4)
        ]
        results = net.submit_batch("ch", proposals)
        assert [r.valid for r in results] == [True, False, False, False]
        assert net.channel("ch").replicas_consistent()

    def test_disjoint_keys_do_not_conflict(self, net):
        a = net.propose("ch", "Org1", "cc", "put", {"key": "x", "value": 1})
        b = net.propose("ch", "Org2", "cc", "put", {"key": "y", "value": 2})
        results = net.submit_batch("ch", [a, b])
        assert all(r.valid for r in results)
