"""Quorum private-state replay (node recovery) and its deletion conflict."""

from __future__ import annotations

import pytest

from repro.common.errors import MembershipError, PrivacyError
from repro.execution.contracts import SmartContract
from repro.platforms.quorum import QuorumNetwork


@pytest.fixture
def net():
    network = QuorumNetwork(seed="replay-test")
    for node in ("N1", "N2", "N3"):
        network.onboard(node)

    def put(view, args):
        view.put(args["key"], args["value"])
        return args["value"]

    def increment(view, args):
        view.put(args["key"], view.get(args["key"], 0) + 1)
        return view.get(args["key"])

    contract = SmartContract(
        "store", 1, "evm-solidity", {"put": put, "increment": increment}
    )
    network.deploy_contract("N1", contract)
    return network


class TestReplay:
    def test_rebuild_matches_live_state(self, net):
        for n in range(5):
            net.send_private_transaction(
                "N1", "store", "put", {"key": f"k{n}", "value": n},
                private_for=["N2"],
            )
        assert net.verify_private_state("N2")
        assert net.verify_private_state("N1")

    def test_rebuild_respects_transaction_order(self, net):
        for __ in range(3):
            net.send_private_transaction(
                "N1", "store", "increment", {"key": "counter"},
                private_for=["N2"],
            )
        rebuilt = net.rebuild_private_state("N2")
        assert rebuilt.get("counter") == 3

    def test_non_participant_rebuilds_empty(self, net):
        net.send_private_transaction(
            "N1", "store", "put", {"key": "k", "value": 1}, private_for=["N2"]
        )
        assert len(net.rebuild_private_state("N3")) == 0

    def test_unknown_node_rejected(self, net):
        with pytest.raises(MembershipError):
            net.rebuild_private_state("Ghost")

    def test_public_transactions_ignored_by_private_replay(self, net):
        net.send_public_transaction("N1", "store", "put", {"key": "pub", "value": 1})
        net.send_private_transaction(
            "N1", "store", "put", {"key": "priv", "value": 2}, private_for=["N2"]
        )
        rebuilt = net.rebuild_private_state("N2")
        assert rebuilt.exists("priv")
        assert not rebuilt.exists("pub")


class TestDeletionConflict:
    """The executable justification for Quorum's '-' off-chain cell."""

    def test_deleted_payload_breaks_recovery(self, net):
        result = net.send_private_transaction(
            "N1", "store", "put", {"key": "gdpr", "value": "pii"},
            private_for=["N2"],
        )
        net.managers["N2"].delete(result.payload_hash)
        with pytest.raises(PrivacyError):
            net.rebuild_private_state("N2")

    def test_other_nodes_unaffected_by_local_deletion(self, net):
        result = net.send_private_transaction(
            "N1", "store", "put", {"key": "gdpr", "value": "pii"},
            private_for=["N2"],
        )
        net.managers["N2"].delete(result.payload_hash)
        # N1 still holds its copy and can recover.
        assert net.verify_private_state("N1")
