"""Static/dynamic agreement on the L1 audit scenario.

The same source file drives both sides: ``repro.core.audit`` runs the
trade scenario on all three platforms and *measures* what leaks, while
the static analyzer reads that file and *predicts* the leaks without
executing anything.  This test pins the two views together:

- the plaintext state writes the Fabric/Quorum scenarios deliberately
  commit (and suppress) correspond to measured outcomes: on Fabric the
  ordering service sees the confidential value; on Quorum the private
  transaction mechanism contains it and only the participant list leaks;
- the static Quorum participant-broadcast note matches the dynamic
  ``participant_list_broadcast`` observation;
- the Corda scenario, which uses tear-offs and a non-validating notary,
  has neither a static flow finding nor a dynamic leak.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import analyze_paths
from repro.core.audit import audit_all

AUDIT_SOURCE = (
    pathlib.Path(__file__).parent.parent.parent
    / "src" / "repro" / "core" / "audit.py"
)


@pytest.fixture(scope="module")
def static_findings():
    report = analyze_paths([AUDIT_SOURCE])
    assert not report.parse_errors
    # Include suppressed findings: an acknowledged leak is still a leak,
    # and the dynamic audit measures it all the same.
    return report.findings


@pytest.fixture(scope="module")
def dynamic_rows():
    return {r.platform: r.summary_row() for r in audit_all(seed="crosscheck")}


def _in_scenario(findings, scenario, rule_id):
    return [
        f
        for f in findings
        if f.rule_id == rule_id and f.context.startswith(scenario)
    ]


def test_fabric_plaintext_write_agrees(static_findings, dynamic_rows):
    predicted = _in_scenario(static_findings, "audit_fabric", "flow-to-state")
    assert len(predicted) == 1
    assert dynamic_rows["fabric"]["orderer_sees_data"] is True


def test_quorum_plaintext_write_is_contained_by_private_tx(
    static_findings, dynamic_rows
):
    """The flip side of the Fabric case: the analyzer flags the same
    plaintext state write (it cannot know how the contract is deployed),
    but the scenario submits it as a private transaction, so the public
    chain carries only the payload digest and the orderer learns nothing.
    The residual dynamic leak is the participant list, not the data —
    which is what justifies the suppression in the source."""
    predicted = _in_scenario(static_findings, "audit_quorum", "flow-to-state")
    assert len(predicted) == 1
    assert dynamic_rows["quorum"]["orderer_sees_data"] is False
    assert dynamic_rows["quorum"]["uninvolved_data_leaks"] == 0


def test_quorum_participant_broadcast_agrees(static_findings, dynamic_rows):
    predicted = _in_scenario(
        static_findings, "audit_quorum", "quorum-participant-broadcast"
    )
    assert len(predicted) == 1
    assert dynamic_rows["quorum"]["participant_list_broadcast"] is True


def test_corda_is_clean_both_ways(static_findings, dynamic_rows):
    flow_rules = {
        "flow-to-state",
        "flow-to-log",
        "flow-to-message",
        "flow-to-metadata",
        "plaintext-broadcast",
    }
    predicted = [
        f
        for f in static_findings
        if f.context.startswith("audit_corda") and f.rule_id in flow_rules
    ]
    assert predicted == []
    row = dynamic_rows["corda"]
    assert row["orderer_sees_data"] is False
    assert row["participant_list_broadcast"] is False


def test_no_unacknowledged_static_leaks(static_findings):
    """Every ERROR the analyzer finds in the audit file is a deliberate,
    suppressed demonstration — nothing leaks by accident."""
    unacknowledged = [
        f
        for f in static_findings
        if f.severity.value == "error" and not f.suppressed
    ]
    assert unacknowledged == []
