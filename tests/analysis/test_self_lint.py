"""The repo holds itself to its own rules: strict self-lint stays clean.

Intentional demonstrations of leaky designs (the audit scenario's
plaintext write) carry justified ``# repro: allow(...)`` suppressions;
everything else must genuinely pass.  This test is the regression guard
behind ``scripts/check.sh``.
"""

from __future__ import annotations

from repro.analysis import Severity, analyze_paths, self_paths


def _report():
    return analyze_paths(self_paths())


def test_self_lint_strict_is_clean():
    report = _report()
    blocking = [
        f.render()
        for f in report.active()
        if f.severity in (Severity.ERROR, Severity.WARNING)
    ]
    assert blocking == []
    assert report.parse_errors == []
    assert report.exit_code(strict=True) == 0


def test_self_lint_covers_the_package_and_examples():
    report = _report()
    # The whole src/repro tree plus examples/ — not a token subset.
    assert report.files_analyzed > 50


def test_intentional_audit_leaks_are_suppressed_not_hidden():
    report = _report()
    acknowledged = [
        f
        for f in report.suppressed()
        if f.rule_id == "flow-to-state" and f.path.endswith("core/audit.py")
    ]
    # One per platform scenario that deliberately writes plaintext state
    # (Fabric and Quorum); the dynamic audit measures exactly these.
    assert len(acknowledged) == 2
