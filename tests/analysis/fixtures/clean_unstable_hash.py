"""Clean: a stable cryptographic digest replaces builtin hash()."""

from repro.crypto.hashing import hash_hex

from repro.execution import SmartContract


def key_for(view, args):
    bucket = int(hash_hex("bucket", args["payload"])[:2], 16) % 16
    view.put("bucket", bucket)
    return bucket


CONTRACT = SmartContract(
    contract_id="index", version=1, language="python",
    functions={"key_for": key_for},
)
