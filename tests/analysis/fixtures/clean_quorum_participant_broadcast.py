"""Clean: a public transaction makes no interaction-privacy claim."""


def place_order(client, payload):
    client.send_transaction(payload)
