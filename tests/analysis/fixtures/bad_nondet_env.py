"""Bad: environment access inside a registered contract function."""

import os

from repro.execution import SmartContract


def price(view, args):
    rate = os.environ.get("FX_RATE", "1.0")
    view.put("rate", rate)
    return rate


CONTRACT = SmartContract(
    contract_id="fx", version=1, language="python",
    functions={"price": price},
)
