"""Bad: plaintext confidential value written to shared ledger state."""


def record_trade(view, args):
    secret_price = args["price"]
    view.put("trade/latest", secret_price)
    return secret_price
