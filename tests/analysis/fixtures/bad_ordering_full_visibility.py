"""Bad (design note): a validating notary sees full transaction contents."""


def build(CordaNetwork):
    return CordaNetwork(seed="demo", validating_notary=True)
