"""Clean: the payload is encrypted before it leaves the party."""


def notify(network, shared_key, secret_terms):
    network.send("OrgB", encrypt(shared_key, secret_terms))
