"""Clean: the timestamp comes from the transaction itself."""

from repro.execution import SmartContract


def expire(view, args):
    deadline = args["tx_time_window_end"]
    view.put("expiry", deadline)
    return deadline


CONTRACT = SmartContract(
    contract_id="demo", version=1, language="python",
    functions={"expire": expire},
)
