"""Bad: builtin hash() is salted per process — replicas disagree."""

from repro.execution import SmartContract


def key_for(view, args):
    bucket = hash(args["payload"]) % 16
    view.put("bucket", bucket)
    return bucket


CONTRACT = SmartContract(
    contract_id="index", version=1, language="python",
    functions={"key_for": key_for},
)
