"""Clean: only the digest crosses the trust boundary."""

from repro.crypto.hashing import hash_hex


def announce(network, secret_terms):
    network.broadcast(hash_hex("terms", secret_terms))
