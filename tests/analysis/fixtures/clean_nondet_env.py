"""Clean: the external fact arrives as an oracle-attested argument."""

from repro.execution import SmartContract


def price(view, args):
    rate = args["oracle_attested_rate"]
    view.put("rate", rate)
    return rate


CONTRACT = SmartContract(
    contract_id="fx", version=1, language="python",
    functions={"price": price},
)
