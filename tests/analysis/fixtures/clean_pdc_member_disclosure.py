"""Clean: a plain channel write involves no collection metadata."""


def setup(channel):
    channel.invoke("trade-cc", "record", {"volume": 10})
