"""Clean: a non-validating notary only sees tear-off hashes."""


def build(CordaNetwork):
    return CordaNetwork(seed="demo", validating_notary=False)
