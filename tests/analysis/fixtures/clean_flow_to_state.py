"""Clean: only a digest of the confidential value reaches the ledger."""

from repro.crypto.hashing import hash_hex


def record_trade(view, args):
    secret_price = args["price"]
    view.put("trade/latest", hash_hex("trade", secret_price))
    return None
