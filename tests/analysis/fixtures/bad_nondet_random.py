"""Bad: randomness inside a registered contract function."""

import random

from repro.execution import SmartContract


def draw(view, args):
    winner = random.choice(args["entrants"])
    view.put("winner", winner)
    return winner


CONTRACT = SmartContract(
    contract_id="lottery", version=1, language="python",
    functions={"draw": draw},
)
