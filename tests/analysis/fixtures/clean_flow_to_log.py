"""Clean: only a redacted digest of the value is logged."""

from repro.crypto.hashing import hash_hex


def show_customer(customer_passport):
    print("onboarded", hash_hex("kyc", customer_passport))
