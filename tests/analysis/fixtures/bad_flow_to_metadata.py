"""Bad: confidential value placed in transaction metadata."""


def submit(ledger, secret_bid):
    ledger.record("auction", metadata={"bid": secret_bid})
