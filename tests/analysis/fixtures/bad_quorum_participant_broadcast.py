"""Bad (design note): the private_for list is broadcast network-wide."""


def place_order(client, payload):
    client.send_private_transaction(payload, private_for=["OrgB"])
