"""Bad: confidential value printed to the operational log."""


def show_customer(customer_passport):
    print("onboarded", customer_passport)
