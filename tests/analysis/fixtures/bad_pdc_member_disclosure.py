"""Bad (design note): collection membership shows up in transactions."""


def setup(channel):
    channel.create_collection("pricing", members=["OrgA", "OrgB"])
