"""Bad: confidential value broadcast beyond the participant set."""


def announce(network, secret_terms):
    network.broadcast(secret_terms)
