"""Bad: confidential payload sent point-to-point in the clear."""


def notify(network, secret_terms):
    network.send("OrgC", secret_terms)
