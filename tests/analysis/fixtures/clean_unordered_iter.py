"""Clean: sorted() pins the iteration order on every node."""

from repro.execution import SmartContract


def settle(view, args):
    total = 0
    for member in sorted({"OrgA", "OrgB", "OrgC"}):
        total += args.get(member, 0)
        view.put("last-visited", member)
    view.put("total", total)
    return total


CONTRACT = SmartContract(
    contract_id="settle", version=1, language="python",
    functions={"settle": settle},
)
