"""Clean: the 'random' choice is derived deterministically from inputs."""

from repro.crypto.hashing import hash_hex

from repro.execution import SmartContract


def draw(view, args):
    entrants = args["entrants"]
    digest = hash_hex("draw", args["tx_id"])
    winner = entrants[int(digest[:8], 16) % len(entrants)]
    view.put("winner", winner)
    return winner


CONTRACT = SmartContract(
    contract_id="lottery", version=1, language="python",
    functions={"draw": draw},
)
