"""Clean: metadata carries only a commitment to the value."""


def submit(ledger, secret_bid):
    ledger.record("auction", metadata={"bid_commitment": commit(secret_bid)})
