"""Bad: wall-clock read inside a registered contract function."""

import time

from repro.execution import SmartContract


def expire(view, args):
    now = time.time()
    view.put("expiry", now)
    return now


CONTRACT = SmartContract(
    contract_id="demo", version=1, language="python",
    functions={"expire": expire},
)
