"""The seeded violation corpus: every rule detects its bad fixture and
stays silent on the corrected twin.

Each ``bad_<rule>.py`` commits exactly the violation the rule targets;
each ``clean_<rule>.py`` applies the paper's recommended mechanism (hash
anchor, encryption, commitment, transaction timestamp, sorted iteration,
non-validating notary, ...) and must produce zero findings.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import RULES, Severity, analyze_paths, rule

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
RULE_IDS = sorted(RULES)


def _slug(rule_id: str) -> str:
    return rule_id.replace("-", "_")


def test_corpus_covers_every_rule():
    for rule_id in RULE_IDS:
        assert (FIXTURES / f"bad_{_slug(rule_id)}.py").is_file()
        assert (FIXTURES / f"clean_{_slug(rule_id)}.py").is_file()


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_is_detected(rule_id):
    report = analyze_paths([FIXTURES / f"bad_{_slug(rule_id)}.py"])
    assert not report.parse_errors
    detected = {f.rule_id for f in report.active()}
    assert rule_id in detected


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_clean_fixture_is_silent(rule_id):
    report = analyze_paths([FIXTURES / f"clean_{_slug(rule_id)}.py"])
    assert not report.parse_errors
    assert report.active() == []


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_detected_findings_carry_rule_metadata(rule_id):
    report = analyze_paths([FIXTURES / f"bad_{_slug(rule_id)}.py"])
    target = [f for f in report.active() if f.rule_id == rule_id]
    assert target
    expected = rule(rule_id)
    for finding in target:
        assert finding.code == expected.code
        assert finding.severity is expected.severity
        assert finding.line > 0
        assert finding.hint
        assert finding.path.endswith(f"bad_{_slug(rule_id)}.py")


def test_error_rules_fail_default_exit_code():
    error_rules = [r for r in RULE_IDS if RULES[r].severity is Severity.ERROR]
    assert error_rules  # the catalog has ERROR rules
    for rule_id in error_rules:
        report = analyze_paths([FIXTURES / f"bad_{_slug(rule_id)}.py"])
        assert report.exit_code(strict=False) == 1


def test_info_rules_never_fail():
    info_rules = [r for r in RULE_IDS if RULES[r].severity is Severity.INFO]
    assert info_rules
    for rule_id in info_rules:
        report = analyze_paths([FIXTURES / f"bad_{_slug(rule_id)}.py"])
        assert report.exit_code(strict=True) == 0


def test_warning_rules_fail_only_under_strict():
    warning_rules = [
        r for r in RULE_IDS if RULES[r].severity is Severity.WARNING
    ]
    assert warning_rules
    for rule_id in warning_rules:
        report = analyze_paths([FIXTURES / f"bad_{_slug(rule_id)}.py"])
        only_warnings = all(
            f.severity is not Severity.ERROR for f in report.active()
        )
        if only_warnings:
            assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1
