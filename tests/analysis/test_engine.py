"""Engine behavior: suppressions, JSON output, CLI wiring, file walking."""

from __future__ import annotations

import json
import pathlib
import textwrap

import pytest

from repro.analysis import (
    SuppressionIndex,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from repro.cli import main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

LEAKY = textwrap.dedent(
    """\
    def record(view, args):
        secret_price = args["price"]
        view.put("trade", secret_price)
    """
)


class TestSuppressions:
    def test_unsuppressed_finding_is_active(self):
        findings = analyze_source(LEAKY)
        assert [f.rule_id for f in findings] == ["flow-to-state"]
        assert not findings[0].suppressed

    def test_same_line_suppression_by_rule_id(self):
        source = LEAKY.replace(
            'view.put("trade", secret_price)',
            'view.put("trade", secret_price)  # repro: allow(flow-to-state)',
        )
        findings = analyze_source(source)
        assert len(findings) == 1
        assert findings[0].suppressed

    def test_standalone_comment_covers_next_line(self):
        source = LEAKY.replace(
            '    view.put("trade", secret_price)',
            '    # repro: allow(flow-to-state)\n'
            '    view.put("trade", secret_price)',
        )
        findings = analyze_source(source)
        assert len(findings) == 1
        assert findings[0].suppressed

    def test_suppression_by_code_and_wildcard(self):
        for marker in ("F101", "*"):
            source = LEAKY.replace(
                'view.put("trade", secret_price)',
                f'view.put("trade", secret_price)  # repro: allow({marker})',
            )
            findings = analyze_source(source)
            assert findings[0].suppressed, marker

    def test_wrong_rule_does_not_suppress(self):
        source = LEAKY.replace(
            'view.put("trade", secret_price)',
            'view.put("trade", secret_price)  # repro: allow(nondet-time)',
        )
        findings = analyze_source(source)
        assert not findings[0].suppressed

    def test_suppression_marks_rather_than_deletes(self):
        source = LEAKY + "    # repro: allow(flow-to-state)\n"
        index = SuppressionIndex.from_source(source)
        assert index.allows(4, "flow-to-state", "F101")
        report = analyze_paths([FIXTURES / "bad_flow_to_state.py"])
        assert len(report.findings) == len(report.active()) + len(
            report.suppressed()
        )


class TestReportOutput:
    def test_json_document_shape(self):
        report = analyze_paths([FIXTURES / "bad_flow_to_state.py"])
        document = json.loads(report.to_json())
        assert document["files_analyzed"] == 1
        assert document["parse_errors"] == []
        finding = document["findings"][0]
        assert finding["rule_id"] == "flow-to-state"
        assert finding["code"] == "F101"
        assert finding["severity"] == "error"
        assert finding["line"] > 0
        assert "record_trade" in finding["context"]

    def test_text_report_has_summary_line(self):
        report = analyze_paths([FIXTURES / "bad_flow_to_log.py"])
        text = report.render_text()
        assert "summary:" in text
        assert "flow-to-log" in text

    def test_parse_error_fails_exit_code(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        report = analyze_paths([broken])
        assert report.parse_errors
        assert report.exit_code() == 1


class TestFileWalking:
    def test_directory_walk_deduplicates(self):
        files = iter_python_files([FIXTURES, FIXTURES / "bad_flow_to_state.py"])
        resolved = [f.resolve() for f in files]
        assert len(resolved) == len(set(resolved))
        assert any(f.name == "bad_flow_to_state.py" for f in files)

    def test_non_python_paths_are_skipped(self, tmp_path):
        (tmp_path / "notes.txt").write_text("not python")
        assert iter_python_files([tmp_path / "notes.txt"]) == []


class TestCli:
    def test_lint_reports_error_exit(self, capsys):
        code = main(["lint", str(FIXTURES / "bad_flow_to_state.py")])
        assert code == 1
        assert "F101" in capsys.readouterr().out

    def test_lint_clean_file_exits_zero(self, capsys):
        code = main(["lint", str(FIXTURES / "clean_flow_to_state.py")])
        assert code == 0
        assert "0 error" in capsys.readouterr().out

    def test_lint_strict_promotes_warnings(self, capsys):
        target = str(FIXTURES / "bad_flow_to_log.py")
        assert main(["lint", target]) == 0
        capsys.readouterr()
        assert main(["lint", "--strict", target]) == 1

    def test_lint_json_output(self, capsys):
        code = main(["lint", "--json", str(FIXTURES / "bad_nondet_time.py")])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert any(
            f["rule_id"] == "nondet-time" for f in document["findings"]
        )

    def test_lint_without_paths_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "path" in capsys.readouterr().err.lower()
