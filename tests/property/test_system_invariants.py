"""Property-based tests over system-level invariants.

Hypothesis drives random operation sequences against the ledger, the
platforms, and the decision engine, asserting the invariants the paper's
analysis rests on: chains stay verifiable, replicas never diverge,
privacy boundaries hold for every workload, and the decision tree is
monotone in its dominant constraints.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decision import decide_data_confidentiality
from repro.core.mechanisms import Mechanism, info
from repro.core.requirements import DataClassRequirements
from repro.execution.contracts import SmartContract
from repro.ledger.block import Chain
from repro.ledger.transaction import Transaction, WriteEntry
from repro.platforms.fabric import FabricNetwork
from repro.platforms.quorum import QuorumNetwork


# ---------------------------------------------------------------------------
# Chain invariants
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.lists(
        st.tuples(st.sampled_from("abc"), st.integers(0, 100)),
        min_size=1, max_size=4,
    ),
    min_size=1, max_size=10,
))
def test_chain_always_verifies_after_any_append_sequence(blocks):
    chain = Chain("prop")
    for index, writes in enumerate(blocks):
        txs = [
            Transaction(
                channel="prop", submitter=f"s{index}",
                writes=tuple(WriteEntry(key=k, value=v) for k, v in writes),
                timestamp=float(index),
            )
        ]
        chain.append(txs, timestamp=float(index))
    chain.verify()
    assert chain.height == len(blocks)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=3, max_value=10),
    st.integers(min_value=2, max_value=8),
)
def test_pruned_chain_preserves_all_transactions(total_blocks, prune_at):
    if prune_at >= total_blocks:
        prune_at = total_blocks - 1
    chain = Chain("prop")
    for n in range(total_blocks):
        chain.append(
            [Transaction(channel="prop", submitter=f"s{n}", timestamp=float(n))],
            timestamp=float(n),
        )
    chain.prune_below(prune_at + 1)
    chain.verify()
    live = len(chain.transactions())
    archived = sum(len(b.transactions) for b in chain.archived_blocks())
    assert live + archived == total_blocks


# ---------------------------------------------------------------------------
# Fabric invariants
# ---------------------------------------------------------------------------


def _fabric_with_channel(seed: str) -> FabricNetwork:
    net = FabricNetwork(seed=seed)
    for org in ("Org1", "Org2", "Outsider"):
        net.onboard(org)
    net.create_channel("ch", ["Org1", "Org2"])

    def put(view, args):
        view.put(args["key"], args["value"])
        return args["value"]

    contract = SmartContract("cc", 1, "python-chaincode", {"put": put})
    net.deploy_chaincode("ch", contract, ["Org1", "Org2"])
    return net


@settings(max_examples=10, deadline=None)
@given(st.lists(
    st.tuples(
        st.sampled_from(["Org1", "Org2"]),
        st.sampled_from(["k1", "k2", "k3"]),
        st.integers(0, 1000),
    ),
    min_size=1, max_size=8,
))
def test_fabric_replicas_never_diverge(operations):
    net = _fabric_with_channel(f"prop-{hash(tuple(operations)) & 0xffff}")
    for submitter, key, value in operations:
        net.invoke("ch", submitter, "cc", "put", {"key": key, "value": value})
    channel = net.channel("ch")
    assert channel.replicas_consistent()
    channel.chain.verify()
    # Last-writer-wins on each key across both replicas.
    last = {}
    for submitter, key, value in operations:
        last[key] = value
    for key, value in last.items():
        assert channel.reference_state().get(key) == value


@settings(max_examples=10, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["k1", "k2"]), st.integers(0, 100)),
    min_size=1, max_size=6,
))
def test_fabric_outsider_never_learns_channel_data(operations):
    net = _fabric_with_channel(f"prop-priv-{hash(tuple(operations)) & 0xffff}")
    for key, value in operations:
        net.invoke("ch", "Org1", "cc", "put", {"key": key, "value": value})
    net.network.run()
    outsider = net.network.node("Outsider").observer
    assert outsider.seen_data_keys == set()
    assert not ({"Org1", "Org2"} & outsider.seen_identities)


# ---------------------------------------------------------------------------
# Quorum invariants
# ---------------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(st.lists(
    st.tuples(
        st.sampled_from(["N2", "N3"]),
        st.sampled_from(["k1", "k2"]),
        st.integers(0, 100),
    ),
    min_size=1, max_size=6,
))
def test_quorum_private_state_always_replayable(operations):
    net = QuorumNetwork(seed=f"prop-q-{hash(tuple(operations)) & 0xffff}")
    for node in ("N1", "N2", "N3"):
        net.onboard(node)

    def put(view, args):
        view.put(args["key"], args["value"])
        return args["value"]

    net.deploy_contract(
        "N1", SmartContract("s", 1, "evm-solidity", {"put": put})
    )
    for recipient, key, value in operations:
        net.send_private_transaction(
            "N1", "s", "put", {"key": key, "value": value},
            private_for=[recipient],
        )
    for node in ("N1", "N2", "N3"):
        assert net.verify_private_state(node)
    net.chain.verify()


# ---------------------------------------------------------------------------
# Decision-tree metamorphic properties
# ---------------------------------------------------------------------------


_flag_strategy = st.fixed_dictionaries({
    "private_from_counterparties": st.booleans(),
    "encrypted_sharing_allowed": st.booleans(),
    "onchain_record_desired": st.booleans(),
    "partial_visibility_within_transaction": st.booleans(),
    "uninvolved_validation_required": st.booleans(),
})


@settings(max_examples=50, deadline=None)
@given(_flag_strategy)
def test_deletion_always_dominates(flags):
    """Adding deletion_required to ANY input forces the off-chain terminal."""
    rec = decide_data_confidentiality(
        DataClassRequirements(name="p", deletion_required=True, **flags)
    )
    assert rec.primary is Mechanism.OFF_CHAIN_PEER_DATA


@settings(max_examples=50, deadline=None)
@given(_flag_strategy)
def test_primary_always_belongs_to_transactions_or_logic_category(flags):
    rec = decide_data_confidentiality(
        DataClassRequirements(name="p", **flags)
    )
    assert info(rec.primary).category.value in ("transactions", "logic")


@settings(max_examples=50, deadline=None)
@given(_flag_strategy)
def test_tearoffs_only_ever_supplement_segregation(flags):
    rec = decide_data_confidentiality(
        DataClassRequirements(name="p", **flags)
    )
    if Mechanism.MERKLE_TEAR_OFFS in rec.supplementary:
        assert rec.primary is Mechanism.SEPARATION_OF_LEDGERS_DATA


@settings(max_examples=50, deadline=None)
@given(_flag_strategy, st.booleans())
def test_shared_function_flag_only_matters_with_private_inputs(flags, shared):
    if not flags["private_from_counterparties"]:
        return
    rec = decide_data_confidentiality(DataClassRequirements(
        name="p", shared_function_on_private_inputs=shared, **flags
    ))
    expected = (
        Mechanism.MULTIPARTY_COMPUTATION if shared else Mechanism.ZKP_ON_DATA
    )
    assert rec.primary is expected
