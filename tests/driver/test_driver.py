"""The cross-platform workload driver: batching, metrics, reports."""

from __future__ import annotations

import pytest

from repro.driver import (
    BENCH_ORGS,
    Driver,
    DriverConfig,
    build_scenario,
    kv_scenario,
    loc_scenario,
    trade_scenario,
)
from repro.platforms.base import TxRequest


class TestConfig:
    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            DriverConfig(batch_size=0)

    def test_defaults_are_drip_feed_with_forced_cuts(self):
        config = DriverConfig()
        assert config.batch_size == 1
        assert config.force_cut is True


class TestRun:
    def test_all_requests_get_receipts_in_order(self):
        scenario = kv_scenario("fabric", 7, seed="driver")
        report = Driver(scenario.platform, DriverConfig(batch_size=3)).run(
            scenario.requests
        )
        assert report.operations == 7
        assert [r.request for r in report.receipts] == scenario.requests

    def test_failures_do_not_stop_the_run(self):
        scenario = kv_scenario("quorum", 2, seed="driver-fail")
        bad = TxRequest(submitter="OrgA", contract_id="kv-store",
                        function="missing", args={})
        report = Driver(scenario.platform, DriverConfig(batch_size=3)).run(
            [scenario.requests[0], bad, scenario.requests[1]]
        )
        assert report.operations == 3
        assert report.committed == 2
        assert report.failed == 1
        assert report.status_counts()["rejected:ContractError"] == 1

    def test_emits_driver_metrics(self):
        scenario = kv_scenario("corda", 5, seed="driver-metrics")
        Driver(scenario.platform, DriverConfig(batch_size=2)).run(
            scenario.requests
        )
        snapshot = scenario.platform.telemetry.metrics.snapshot()
        assert snapshot["counters"]["driver.submitted"] == 5
        assert snapshot["counters"]["driver.committed"] == 5
        assert snapshot["histograms"]["driver.batch_size"]["count"] == 3
        assert snapshot["histograms"]["driver.latency"]["count"] == 5
        assert snapshot["gauges"]["driver.last_throughput_tps"] > 0

    def test_run_span_wraps_submissions(self):
        scenario = kv_scenario("fabric", 2, seed="driver-span")
        Driver(scenario.platform).run(scenario.requests)
        spans = scenario.platform.telemetry.tracer.spans
        names = [span.name for span in spans]
        assert "driver.run" in names
        run_span = next(s for s in spans if s.name == "driver.run")
        assert run_span.attributes["operations"] == 2
        assert run_span.attributes["platform"] == "fabric"

    def test_batching_outpaces_drip_feed_on_fabric(self):
        """The orderer's cutting policy rewards full in-flight batches."""
        drip = kv_scenario("fabric", 40, seed="driver-tp")
        batched = kv_scenario("fabric", 40, seed="driver-tp")
        drip_report = Driver(
            drip.platform, DriverConfig(batch_size=1, force_cut=False)
        ).run(drip.requests)
        batched_report = Driver(
            batched.platform, DriverConfig(batch_size=40, force_cut=False)
        ).run(batched.requests)
        assert drip_report.committed == batched_report.committed == 40
        assert (
            batched_report.throughput_tps >= 2 * drip_report.throughput_tps
        )

    def test_deterministic_across_runs(self):
        reports = []
        for __ in range(2):
            scenario = trade_scenario("quorum", 6, seed="driver-det")
            reports.append(
                Driver(scenario.platform, DriverConfig(batch_size=2)).run(
                    scenario.requests
                ).to_dict()
            )
        assert reports[0] == reports[1]


class TestReport:
    def test_to_dict_round_trips_key_figures(self):
        scenario = loc_scenario("corda", 4, seed="driver-report")
        report = Driver(scenario.platform, DriverConfig(batch_size=5)).run(
            scenario.requests
        )
        payload = report.to_dict()
        assert payload["operations"] == report.operations
        assert payload["committed"] == report.committed
        assert payload["platform"] == "corda"
        assert set(payload["cache_stats"]) == {
            "signature_verify", "certificate_chain",
        }

    def test_render_text_mentions_caches_and_throughput(self):
        scenario = loc_scenario("fabric", 4, seed="driver-render")
        report = Driver(scenario.platform, DriverConfig(batch_size=5)).run(
            scenario.requests
        )
        text = report.render_text()
        assert "throughput" in text
        assert "signature_verify" in text
        assert "certificate_chain" in text


class TestScenarios:
    @pytest.mark.parametrize("platform_name", ("fabric", "corda", "quorum"))
    @pytest.mark.parametrize("workload", ("kv", "trades", "loc"))
    def test_every_pair_compiles_and_commits(self, platform_name, workload):
        scenario = build_scenario(platform_name, workload, 3, seed="matrix")
        report = Driver(scenario.platform, DriverConfig(batch_size=4)).run(
            scenario.requests
        )
        assert report.operations == len(scenario.requests) > 0
        assert report.failed == 0

    def test_same_seed_same_requests(self):
        a = build_scenario("fabric", "trades", 5, seed="stable")
        b = build_scenario("fabric", "trades", 5, seed="stable")
        assert a.requests == b.requests

    def test_bench_orgs_cover_the_audit_cast(self):
        assert set(("OrgA", "OrgB", "OrgC", "OrgD", "OrgE")) == set(BENCH_ORGS)
