"""Every example script must run cleanly — they are part of the API."""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[s.stem for s in EXAMPLE_SCRIPTS]
)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_expected_example_set():
    names = {s.stem for s in EXAMPLE_SCRIPTS}
    assert {
        "quickstart",
        "letter_of_credit",
        "secret_ballot",
        "oracle_tearoff",
        "platform_selection",
        "private_ordering",
        "design_to_deployment",
        "kyc_consortium",
    } <= names
