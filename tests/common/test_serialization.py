"""Canonical serialization: determinism, round trips, edge cases."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.serialization import (
    canonical_bytes,
    canonical_json,
    from_canonical_json,
)


class TestCanonicalJson:
    def test_sorted_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_no_whitespace(self):
        text = canonical_json({"a": [1, 2, {"b": 3}]})
        assert " " not in text

    def test_dict_order_independent(self):
        assert canonical_json({"x": 1, "y": 2}) == canonical_json({"y": 2, "x": 1})

    def test_bytes_are_tagged(self):
        text = canonical_json({"k": b"\x01\x02"})
        assert "0102" in text
        assert "__bytes_hex__" in text

    def test_bytes_round_trip(self):
        original = {"payload": b"\x00\xffhello"}
        assert from_canonical_json(canonical_json(original)) == original

    def test_tuple_becomes_list(self):
        assert canonical_json((1, 2)) == "[1,2]"

    def test_set_is_sorted(self):
        assert canonical_json({3, 1, 2}) == "[1,2,3]"

    def test_dataclass_serializes_as_dict(self):
        @dataclasses.dataclass
        class Point:
            x: int
            y: int

        assert canonical_json(Point(1, 2)) == '{"x":1,"y":2}'

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json(float("nan"))

    def test_unserializable_type_rejected(self):
        with pytest.raises(TypeError):
            canonical_json(object())

    def test_canonical_bytes_is_utf8(self):
        assert canonical_bytes({"k": "v"}) == b'{"k":"v"}'

    @given(
        st.recursive(
            st.none() | st.booleans() | st.integers() | st.text(),
            lambda children: st.lists(children)
            | st.dictionaries(st.text(), children),
            max_leaves=20,
        )
    )
    def test_round_trip_property(self, value):
        assert from_canonical_json(canonical_json(value)) == value

    @given(st.dictionaries(st.text(), st.integers(), min_size=1))
    def test_equal_values_equal_encodings(self, mapping):
        reordered = dict(reversed(list(mapping.items())))
        assert canonical_json(mapping) == canonical_json(reordered)

    @given(st.binary(max_size=64))
    def test_bytes_round_trip_property(self, blob):
        assert from_canonical_json(canonical_json({"b": blob})) == {"b": blob}
