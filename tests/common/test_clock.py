"""SimClock: monotonicity and bounds."""

from __future__ import annotations

import pytest

from repro.common.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(start=10.0).now == 10.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(start=10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0

    def test_repr_contains_time(self):
        assert "3.5" in repr(SimClock(start=3.5))
