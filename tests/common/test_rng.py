"""DeterministicRNG: reproducibility, uniformity bounds, forking."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.rng import DeterministicRNG


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRNG("seed")
        b = DeterministicRNG("seed")
        assert a.randbytes(64) == b.randbytes(64)

    def test_different_seeds_differ(self):
        assert DeterministicRNG("x").randbytes(32) != DeterministicRNG("y").randbytes(32)

    def test_int_seed_accepted(self):
        assert DeterministicRNG(42).randbytes(8) == DeterministicRNG(42).randbytes(8)

    def test_bytes_seed_accepted(self):
        assert DeterministicRNG(b"s").randbytes(8) == DeterministicRNG(b"s").randbytes(8)

    def test_stream_advances(self):
        rng = DeterministicRNG("s")
        assert rng.randbytes(16) != rng.randbytes(16)

    def test_fork_independent_of_parent_consumption(self):
        a = DeterministicRNG("seed")
        fork_early = a.fork("child").randbytes(16)
        a.randbytes(100)
        fork_late = a.fork("child").randbytes(16)
        assert fork_early == fork_late

    def test_forks_with_different_labels_differ(self):
        rng = DeterministicRNG("seed")
        assert rng.fork("a").randbytes(16) != rng.fork("b").randbytes(16)


class TestDistributions:
    def test_randbytes_length(self):
        rng = DeterministicRNG("s")
        for n in (0, 1, 31, 32, 33, 100):
            assert len(rng.randbytes(n)) == n

    def test_randbytes_negative_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRNG("s").randbytes(-1)

    def test_randint_below_in_range(self):
        rng = DeterministicRNG("s")
        for __ in range(200):
            assert 0 <= rng.randint_below(7) < 7

    def test_randint_below_covers_all_values(self):
        rng = DeterministicRNG("s")
        seen = {rng.randint_below(4) for __ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_randint_below_invalid_bound(self):
        with pytest.raises(ValueError):
            DeterministicRNG("s").randint_below(0)

    def test_randint_range_inclusive(self):
        rng = DeterministicRNG("s")
        values = {rng.randint_range(5, 7) for __ in range(100)}
        assert values == {5, 6, 7}

    def test_randint_range_empty(self):
        with pytest.raises(ValueError):
            DeterministicRNG("s").randint_range(3, 2)

    def test_uniform_in_range(self):
        rng = DeterministicRNG("s")
        for __ in range(100):
            value = rng.uniform(1.5, 2.5)
            assert 1.5 <= value < 2.5

    def test_choice_from_sequence(self):
        rng = DeterministicRNG("s")
        items = ["a", "b", "c"]
        assert {rng.choice(items) for __ in range(100)} == set(items)

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRNG("s").choice([])

    def test_shuffle_is_permutation(self):
        rng = DeterministicRNG("s")
        items = list(range(20))
        shuffled = rng.shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(20))  # original untouched

    @given(st.integers(min_value=1, max_value=10**9))
    def test_randint_below_bound_property(self, bound):
        rng = DeterministicRNG(f"prop-{bound}")
        assert 0 <= rng.randint_below(bound) < bound
