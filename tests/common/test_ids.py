"""Content identifiers: stability and abbreviation."""

from __future__ import annotations

from repro.common.ids import content_id, short


class TestContentId:
    def test_stable_for_equal_content(self):
        assert content_id("tx", {"a": 1}) == content_id("tx", {"a": 1})

    def test_differs_by_content(self):
        assert content_id("tx", {"a": 1}) != content_id("tx", {"a": 2})

    def test_differs_by_kind(self):
        assert content_id("tx", {"a": 1}) != content_id("block", {"a": 1})

    def test_kind_prefix(self):
        assert content_id("tx", 1).startswith("tx:")

    def test_length_parameter(self):
        identifier = content_id("tx", 1, length=8)
        assert len(identifier.split(":")[1]) == 8

    def test_dict_order_irrelevant(self):
        assert content_id("s", {"x": 1, "y": 2}) == content_id("s", {"y": 2, "x": 1})


class TestShort:
    def test_abbreviates_digest(self):
        identifier = content_id("tx", {"a": 1})
        abbreviated = short(identifier, length=4)
        assert abbreviated.startswith("tx:")
        assert len(abbreviated) == len("tx:") + 4

    def test_plain_string(self):
        assert short("abcdefghij", length=4) == "abcd"
