"""Table 1 matrix: ground truth integrity, comparison, platform scoring."""

from __future__ import annotations

import pytest

from repro.core.guide import design_solution
from repro.core.matrix import (
    PAPER_TABLE_1,
    PLATFORMS,
    MatrixComparison,
    score_platforms,
)
from repro.core.mechanisms import Mechanism, all_mechanisms
from repro.core.requirements import (
    DataClassRequirements,
    InteractionPrivacy,
    UseCaseRequirements,
)
from repro.platforms.base import ProbeResult, SupportLevel


class TestGroundTruth:
    def test_complete_matrix(self):
        assert len(PAPER_TABLE_1) == 15 * 3
        for platform in PLATFORMS:
            for mechanism in all_mechanisms():
                assert (platform, mechanism) in PAPER_TABLE_1

    def test_spot_check_cells(self):
        assert PAPER_TABLE_1[("fabric", Mechanism.ZKP_OF_IDENTITY)] is SupportLevel.NATIVE
        assert PAPER_TABLE_1[("corda", Mechanism.MERKLE_TEAR_OFFS)] is SupportLevel.NATIVE
        assert PAPER_TABLE_1[("quorum", Mechanism.OFF_CHAIN_PEER_DATA)] is SupportLevel.REWRITE
        assert (
            PAPER_TABLE_1[("corda", Mechanism.INSTALL_ON_INVOLVED_NODES)]
            is SupportLevel.NOT_APPLICABLE
        )

    def test_unanimous_rows(self):
        for mechanism in (
            Mechanism.SEPARATION_OF_LEDGERS_PARTIES,
            Mechanism.SYMMETRIC_ENCRYPTION,
            Mechanism.PRIVATE_SEQUENCING_SERVICE,
            Mechanism.OPEN_SOURCE,
        ):
            for platform in PLATFORMS:
                assert PAPER_TABLE_1[(platform, mechanism)] is SupportLevel.NATIVE


class TestComparison:
    def _fake_probe(self, platform, mechanism, level):
        return ProbeResult(
            platform=platform, mechanism=mechanism, level=level,
            evidence="synthetic", exercised=False,
        )

    def test_perfect_agreement(self):
        regenerated = {
            key: self._fake_probe(key[0], key[1], level)
            for key, level in PAPER_TABLE_1.items()
        }
        comparison = MatrixComparison(regenerated=regenerated)
        assert comparison.agreement_ratio == 1.0
        assert comparison.disagreements == []

    def test_disagreement_reported(self):
        regenerated = {
            key: self._fake_probe(key[0], key[1], level)
            for key, level in PAPER_TABLE_1.items()
        }
        key = ("fabric", Mechanism.ZKP_OF_IDENTITY)
        regenerated[key] = self._fake_probe(*key, SupportLevel.REWRITE)
        comparison = MatrixComparison(regenerated=regenerated)
        assert comparison.agreements == 44
        assert len(comparison.disagreements) == 1
        assert "MISMATCH" in comparison.render()

    def test_render_contains_all_rows(self):
        regenerated = {
            key: self._fake_probe(key[0], key[1], level)
            for key, level in PAPER_TABLE_1.items()
        }
        text = MatrixComparison(regenerated=regenerated).render()
        assert "Merkle trees and tear-offs" in text
        assert "[PARTIES]" in text and "[LOGIC]" in text
        assert "agreement: 45/45" in text


class TestPlatformScoring:
    def _design(self, data_class: DataClassRequirements):
        return design_solution(UseCaseRequirements(
            name="scored",
            interaction_privacy=InteractionPrivacy.GROUP_PRIVATE,
            data_classes=(data_class,),
        ))

    def test_scores_sorted_descending(self):
        design = self._design(DataClassRequirements(name="d"))
        scores = score_platforms(design)
        values = [s.score for s in scores]
        assert values == sorted(values, reverse=True)

    def test_deletion_requirement_penalizes_quorum(self):
        """Quorum's '-' off-chain cell should rank it below the others."""
        design = self._design(
            DataClassRequirements(name="pii", deletion_required=True)
        )
        scores = {s.platform: s.score for s in score_platforms(design)}
        assert scores["quorum"] < scores["fabric"]
        assert Mechanism.OFF_CHAIN_PEER_DATA in next(
            s for s in score_platforms(design) if s.platform == "quorum"
        ).blocked

    def test_tear_off_requirement_favours_corda(self):
        design = self._design(DataClassRequirements(
            name="d",
            encrypted_sharing_allowed=False,
            onchain_record_desired=True,
            partial_visibility_within_transaction=True,
        ))
        scores = {s.platform: s.score for s in score_platforms(design)}
        assert scores["corda"] >= scores["fabric"] > scores["quorum"]

    def test_empty_design_scores_perfect(self):
        design = design_solution(UseCaseRequirements(
            name="empty",
            data_classes=(DataClassRequirements(name="d"),),
        ))
        # Only segregation is needed; every platform supports it natively.
        for score in score_platforms(design):
            assert score.score == 1.0

    def test_na_cells_skipped(self):
        from repro.core.guide import SolutionDesign

        design = SolutionDesign(use_case="logic-only")
        design.logic_mechanism = Mechanism.INSTALL_ON_INVOLVED_NODES
        corda_score = next(
            s for s in score_platforms(design) if s.platform == "corda"
        )
        # N/A for Corda: neither native nor blocked, just absent.
        assert corda_score.native == []
        assert corda_score.blocked == []
        assert corda_score.score == 1.0
