"""Requirements model: validation and consistency rules."""

from __future__ import annotations

import pytest

from repro.common.errors import RequirementsError
from repro.core.requirements import (
    DataClassRequirements,
    DeploymentContext,
    InteractionPrivacy,
    LogicRequirements,
    UseCaseRequirements,
)


class TestDataClassRequirements:
    def test_defaults_are_permissive(self):
        dc = DataClassRequirements(name="d")
        assert not dc.deletion_required
        assert dc.encrypted_sharing_allowed
        assert dc.onchain_record_desired

    def test_shared_function_implies_private_inputs(self):
        with pytest.raises(RequirementsError, match="implies"):
            DataClassRequirements(
                name="d",
                private_from_counterparties=False,
                shared_function_on_private_inputs=True,
            )

    def test_consistent_shared_function_accepted(self):
        DataClassRequirements(
            name="d",
            private_from_counterparties=True,
            shared_function_on_private_inputs=True,
        )


class TestUseCaseRequirements:
    def _dc(self, name="d"):
        return DataClassRequirements(name=name)

    def test_at_least_one_data_class(self):
        with pytest.raises(RequirementsError, match="at least one"):
            UseCaseRequirements(name="u", data_classes=())

    def test_duplicate_data_class_names_rejected(self):
        with pytest.raises(RequirementsError, match="duplicate"):
            UseCaseRequirements(
                name="u", data_classes=(self._dc("a"), self._dc("a"))
            )

    def test_data_class_lookup(self):
        requirements = UseCaseRequirements(
            name="u", data_classes=(self._dc("a"), self._dc("b"))
        )
        assert requirements.data_class("b").name == "b"
        with pytest.raises(RequirementsError, match="no data class"):
            requirements.data_class("z")

    def test_defaults(self):
        requirements = UseCaseRequirements(name="u", data_classes=(self._dc(),))
        assert requirements.interaction_privacy is InteractionPrivacy.NONE
        assert isinstance(requirements.logic, LogicRequirements)
        assert isinstance(requirements.deployment, DeploymentContext)
        assert requirements.deployment.ordering_service_trusted
