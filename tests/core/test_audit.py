"""Leakage audit: the Section 5 claims, quantified and asserted."""

from __future__ import annotations

import pytest

from repro.core.audit import (
    audit_all,
    audit_corda,
    audit_fabric,
    audit_quorum,
)


@pytest.fixture(scope="module")
def reports():
    return {r.platform: r for r in audit_all(seed="test-audit")}


class TestFabricClaims:
    def test_uninvolved_orgs_learn_nothing(self, reports):
        report = reports["fabric"]
        assert report.uninvolved_identity_leaks() == 0
        assert report.uninvolved_data_leaks() == 0

    def test_orderer_sees_parties_and_data(self, reports):
        """'the ordering service has full visibility of channel members as
        well as all transactions' (Section 5)."""
        ordering = reports["fabric"].ordering_principal
        assert ordering.learned_trading_identities == {"OrgA", "OrgB"}
        assert ordering.learned_confidential_data

    def test_validated_ledger_blocks_double_spend(self, reports):
        assert reports["fabric"].validated_double_spend_rejected


class TestCordaClaims:
    def test_full_isolation_of_uninvolved(self, reports):
        report = reports["corda"]
        assert report.uninvolved_identity_leaks() == 0
        assert report.uninvolved_data_leaks() == 0

    def test_non_validating_notary_blind(self, reports):
        """With tear-offs, the notary learns neither parties nor data."""
        ordering = reports["corda"].ordering_principal
        assert ordering.learned_trading_identities == set()
        assert not ordering.learned_confidential_data

    def test_notary_still_blocks_double_spend(self, reports):
        assert reports["corda"].validated_double_spend_rejected


class TestQuorumClaims:
    def test_participant_list_broadcast(self, reports):
        """'the public ledger includes private transactions, including the
        list of participants' (Section 5)."""
        report = reports["quorum"]
        assert report.participant_list_broadcast
        assert report.uninvolved_identity_leaks() == 6  # 2 ids x 3 outsiders

    def test_private_payload_stays_confidential(self, reports):
        assert reports["quorum"].uninvolved_data_leaks() == 0

    def test_private_double_spend_succeeds(self, reports):
        """'it does not prevent the double spending of assets' (Section 5)."""
        assert reports["quorum"].private_double_spend_succeeded

    def test_public_double_spend_rejected(self, reports):
        assert reports["quorum"].validated_double_spend_rejected


class TestCrossPlatformShape:
    """The relative ordering the paper's narrative implies."""

    def test_corda_ordering_principal_blindest(self, reports):
        fabric_sees = len(reports["fabric"].ordering_principal.identities)
        corda_sees = len(reports["corda"].ordering_principal.identities)
        assert corda_sees < fabric_sees

    def test_quorum_leaks_most_identities_to_uninvolved(self, reports):
        leaks = {
            p: reports[p].uninvolved_identity_leaks()
            for p in ("fabric", "corda", "quorum")
        }
        assert leaks["quorum"] > leaks["fabric"] == leaks["corda"] == 0

    def test_no_platform_leaks_confidential_data_to_uninvolved(self, reports):
        for report in reports.values():
            assert report.uninvolved_data_leaks() == 0

    def test_summary_rows_complete(self, reports):
        for report in reports.values():
            row = report.summary_row()
            assert set(row) == {
                "platform",
                "uninvolved_identity_leaks",
                "uninvolved_data_leaks",
                "orderer_sees_identities",
                "orderer_sees_data",
                "participant_list_broadcast",
                "private_double_spend_succeeded",
                "validated_double_spend_rejected",
            }
