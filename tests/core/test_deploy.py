"""Deployment builder: the design is enforced end to end."""

from __future__ import annotations

import pytest

from repro.common.errors import GuideError, PrivacyError
from repro.core.deploy import build_deployment
from repro.core.guide import design_solution
from repro.core.requirements import (
    DataClassRequirements,
    DeploymentContext,
    InteractionPrivacy,
    UseCaseRequirements,
)

PARTIES = ["OrgA", "OrgB", "OrgC"]


def make_requirements(**overrides):
    base = dict(
        name="deploy-case",
        interaction_privacy=InteractionPrivacy.GROUP_PRIVATE,
        data_classes=(
            DataClassRequirements(name="pii", deletion_required=True),
            DataClassRequirements(name="trade"),
            DataClassRequirements(name="balance", private_from_counterparties=True),
            DataClassRequirements(
                name="votes",
                private_from_counterparties=True,
                shared_function_on_private_inputs=True,
            ),
        ),
        deployment=DeploymentContext(ordering_service_trusted=False),
    )
    base.update(overrides)
    return UseCaseRequirements(**base)


@pytest.fixture(scope="module")
def deployment():
    requirements = make_requirements()
    design = design_solution(requirements)
    return build_deployment(
        design, requirements, PARTIES,
        extra_network_members=["Outsider"], seed="test-deploy",
    )


class TestConstruction:
    def test_channel_scoped_to_parties(self, deployment):
        channel = deployment.network.channel(deployment.channel_name)
        assert channel.members == frozenset(PARTIES)

    def test_collection_per_deletable_class(self, deployment):
        channel = deployment.network.channel(deployment.channel_name)
        assert "col-pii" in channel.collections

    def test_untrusted_orderer_is_member_operated(self, deployment):
        assert deployment.network.orderer.operator in PARTIES

    def test_encryption_configured_for_untrusted_orderer(self, deployment):
        assert "trade" in deployment.encrypted_classes
        assert set(deployment._key_wraps["trade"]) == set(PARTIES)

    def test_too_few_parties_rejected(self):
        requirements = make_requirements()
        design = design_solution(requirements)
        with pytest.raises(GuideError, match="two parties"):
            build_deployment(design, requirements, ["solo"])


class TestRouting:
    def test_pii_goes_to_collection_and_erases(self, deployment):
        deployment.record("pii", "OrgA", "passport-1", {"num": "P-9"})
        assert deployment.read("pii", "OrgB", "passport-1") == {"num": "P-9"}
        deployment.erase("pii", "passport-1")
        with pytest.raises(Exception):
            deployment.read("pii", "OrgB", "passport-1")

    def test_pii_value_never_on_chain(self, deployment):
        deployment.record("pii", "OrgA", "passport-2", {"num": "SECRET-77"})
        chain = deployment.network.channel(deployment.channel_name).chain
        for tx in chain.transactions():
            for write in tx.writes:
                assert "SECRET-77" not in str(write.value)

    def test_trade_encrypted_on_chain_decrypted_for_members(self, deployment):
        deployment.record("trade", "OrgA", "t1", {"amount": 42})
        assert deployment.read("trade", "OrgB", "t1") == {"amount": 42}
        stored = deployment.network.channel(
            deployment.channel_name
        ).reference_state().get("trade/t1")
        assert set(stored) == {"nonce_hex", "body_hex", "tag_hex"}
        assert "42" not in stored["body_hex"]

    def test_non_party_cannot_decrypt(self, deployment):
        from repro.common.errors import MembershipError

        deployment.record("trade", "OrgA", "t2", {"amount": 7})
        # Outsiders are stopped at the channel boundary already...
        with pytest.raises(MembershipError):
            deployment.read("trade", "Outsider", "t2")
        # ...and even a channel member without a key wrap cannot decrypt.
        wrap = deployment._key_wraps["trade"].pop("OrgC")
        try:
            with pytest.raises(PrivacyError, match="no key wrap"):
                deployment.read("trade", "OrgC", "t2")
        finally:
            deployment._key_wraps["trade"]["OrgC"] = wrap

    def test_zkp_class_refuses_plain_record(self, deployment):
        with pytest.raises(PrivacyError, match="commit_value"):
            deployment.record("balance", "OrgA", "b1", 100)

    def test_mpc_class_refuses_plain_record(self, deployment):
        with pytest.raises(PrivacyError, match="compute_sum"):
            deployment.record("votes", "OrgA", "v1", 1)

    def test_erase_refused_for_onledger_classes(self, deployment):
        with pytest.raises(PrivacyError, match="off-chain"):
            deployment.erase("trade", "t1")


class TestZkpPath:
    def test_commit_and_prove_threshold(self, deployment):
        deployment.commit_value("balance", "OrgA", "acct", 900)
        proof = deployment.prove_at_least("balance", "acct", 500)
        assert deployment.verify_at_least("balance", "OrgB", "acct", proof)

    def test_onchain_record_is_commitment_only(self, deployment):
        deployment.commit_value("balance", "OrgA", "acct2", 1234)
        stored = deployment.network.channel(
            deployment.channel_name
        ).reference_state().get("balance/acct2")
        assert set(stored) == {"commitment"}
        assert stored["commitment"] != 1234


class TestMpcPath:
    def test_aggregate_committed_votes_private(self, deployment):
        total, stats, __ = deployment.compute_sum(
            "votes", "OrgA", "motion-1",
            {"OrgA": 1, "OrgB": 0, "OrgC": 1},
        )
        assert total == 2
        stored = deployment.network.channel(
            deployment.channel_name
        ).reference_state().get("votes/motion-1")
        assert stored == {"aggregate": 2, "parties": 3}


class TestEndToEndPrivacy:
    def test_outsider_learns_nothing_from_operations(self, deployment):
        deployment.network.network.run()
        outsider = deployment.network.network.node("Outsider").observer
        assert outsider.seen_data_keys == set()
        assert not (set(PARTIES) & outsider.seen_identities)

    def test_member_orderer_sees_only_ciphertext_for_trade(self, deployment):
        # The orderer observed the key names but the value is ciphertext;
        # the encrypted classes' plaintext never crossed the wire.
        orderer = deployment.network.orderer.observer
        assert "trade/t1" in orderer.seen_data_keys
