"""Figure 1 decision tree: every branch, exhaustive coverage, traces."""

from __future__ import annotations

import itertools

import pytest

from repro.core.decision import decide_data_confidentiality
from repro.core.mechanisms import Mechanism
from repro.core.requirements import DataClassRequirements, DeploymentContext


def dc(**kwargs) -> DataClassRequirements:
    return DataClassRequirements(name="test", **kwargs)


class TestSpineBranches:
    """Each paper-prose branch, asserted directly."""

    def test_deletion_forces_off_chain(self):
        rec = decide_data_confidentiality(dc(deletion_required=True))
        assert rec.primary is Mechanism.OFF_CHAIN_PEER_DATA

    def test_deletion_dominates_everything_else(self):
        rec = decide_data_confidentiality(dc(
            deletion_required=True,
            encrypted_sharing_allowed=False,
            uninvolved_validation_required=True,
        ))
        assert rec.primary is Mechanism.OFF_CHAIN_PEER_DATA

    def test_private_inputs_with_shared_function_yield_mpc(self):
        rec = decide_data_confidentiality(dc(
            private_from_counterparties=True,
            shared_function_on_private_inputs=True,
        ))
        assert rec.primary is Mechanism.MULTIPARTY_COMPUTATION

    def test_private_inputs_without_shared_function_yield_zkp(self):
        rec = decide_data_confidentiality(dc(private_from_counterparties=True))
        assert rec.primary is Mechanism.ZKP_ON_DATA
        assert any("boolean affirmation" in n for n in rec.notes)

    def test_no_encrypted_sharing_with_onchain_yields_segregation(self):
        rec = decide_data_confidentiality(dc(
            encrypted_sharing_allowed=False, onchain_record_desired=True
        ))
        assert rec.primary is Mechanism.SEPARATION_OF_LEDGERS_DATA

    def test_tear_offs_supplement_segregation(self):
        rec = decide_data_confidentiality(dc(
            encrypted_sharing_allowed=False,
            onchain_record_desired=True,
            partial_visibility_within_transaction=True,
        ))
        assert Mechanism.MERKLE_TEAR_OFFS in rec.supplementary

    def test_no_tear_offs_without_partial_visibility(self):
        rec = decide_data_confidentiality(dc(
            encrypted_sharing_allowed=False, onchain_record_desired=True
        ))
        assert Mechanism.MERKLE_TEAR_OFFS not in rec.supplementary

    def test_no_encrypted_sharing_no_onchain_yields_off_chain(self):
        rec = decide_data_confidentiality(dc(
            encrypted_sharing_allowed=False, onchain_record_desired=False
        ))
        assert rec.primary is Mechanism.OFF_CHAIN_PEER_DATA

    def test_uninvolved_validation_yields_tee(self):
        rec = decide_data_confidentiality(dc(uninvolved_validation_required=True))
        assert rec.primary is Mechanism.TRUSTED_EXECUTION_ENVIRONMENT
        assert any("Homomorphic" in n for n in rec.notes)

    def test_default_is_segregated_ledgers(self):
        rec = decide_data_confidentiality(dc())
        assert rec.primary is Mechanism.SEPARATION_OF_LEDGERS_DATA


class TestDeploymentModifier:
    def test_untrusted_admin_adds_encryption(self):
        deployment = DeploymentContext(third_party_node_admin=True)
        rec = decide_data_confidentiality(dc(), deployment)
        assert Mechanism.SYMMETRIC_ENCRYPTION in rec.supplementary

    def test_untrusted_orderer_adds_encryption(self):
        deployment = DeploymentContext(ordering_service_trusted=False)
        rec = decide_data_confidentiality(dc(), deployment)
        assert Mechanism.SYMMETRIC_ENCRYPTION in rec.supplementary

    def test_trusted_deployment_adds_nothing(self):
        rec = decide_data_confidentiality(dc(), DeploymentContext())
        assert Mechanism.SYMMETRIC_ENCRYPTION not in rec.supplementary

    def test_encryption_also_added_on_off_chain_path(self):
        deployment = DeploymentContext(third_party_node_admin=True)
        rec = decide_data_confidentiality(dc(deletion_required=True), deployment)
        assert rec.primary is Mechanism.OFF_CHAIN_PEER_DATA
        assert Mechanism.SYMMETRIC_ENCRYPTION in rec.supplementary


class TestTraces:
    def test_every_recommendation_has_a_path(self):
        rec = decide_data_confidentiality(dc())
        assert len(rec.path) >= 2
        for step in rec.path:
            assert step.question
            assert step.rationale

    def test_rationales_cite_the_paper(self):
        rec = decide_data_confidentiality(dc(deletion_required=True))
        assert any("(S3.2)" in step.rationale for step in rec.path)

    def test_describe_renders_path_and_outcome(self):
        rec = decide_data_confidentiality(dc(private_from_counterparties=True))
        text = rec.describe()
        assert "Zero-knowledge proofs" in text
        assert "[yes]" in text and "[no ]" in text


class TestExhaustiveEnumeration:
    """Every consistent combination terminates in exactly one mechanism."""

    FLAGS = (
        "deletion_required",
        "private_from_counterparties",
        "shared_function_on_private_inputs",
        "encrypted_sharing_allowed",
        "onchain_record_desired",
        "partial_visibility_within_transaction",
        "uninvolved_validation_required",
    )

    def _all_consistent_inputs(self):
        for values in itertools.product([False, True], repeat=len(self.FLAGS)):
            kwargs = dict(zip(self.FLAGS, values))
            if (
                kwargs["shared_function_on_private_inputs"]
                and not kwargs["private_from_counterparties"]
            ):
                continue
            yield kwargs

    def test_total_function_over_input_space(self):
        count = 0
        for kwargs in self._all_consistent_inputs():
            rec = decide_data_confidentiality(dc(**kwargs))
            assert rec.primary in Mechanism
            assert rec.path
            count += 1
        assert count == 96  # 128 combinations minus 32 inconsistent ones

    def test_terminal_set_matches_figure_1(self):
        terminals = {
            decide_data_confidentiality(dc(**kwargs)).primary
            for kwargs in self._all_consistent_inputs()
        }
        assert terminals == {
            Mechanism.OFF_CHAIN_PEER_DATA,
            Mechanism.MULTIPARTY_COMPUTATION,
            Mechanism.ZKP_ON_DATA,
            Mechanism.SEPARATION_OF_LEDGERS_DATA,
            Mechanism.TRUSTED_EXECUTION_ENVIRONMENT,
        }

    def test_deterministic(self):
        for kwargs in self._all_consistent_inputs():
            a = decide_data_confidentiality(dc(**kwargs))
            b = decide_data_confidentiality(dc(**kwargs))
            assert a.primary is b.primary
            assert a.supplementary == b.supplementary


class TestRenderFigure:
    def test_static_figure_names_all_terminals(self):
        from repro.core.decision import render_figure

        figure = render_figure()
        for terminal in (
            "OFF-CHAIN DATA",
            "MULTIPARTY COMPUTATION",
            "ZERO-KNOWLEDGE PROOFS",
            "SEGREGATED LEDGERS",
            "TRUSTED EXECUTION ENVIRONMENTS",
            "MERKLE TREE TEAR-OFFS",
        ):
            assert terminal in figure

    def test_static_figure_matches_engine_on_spine_order(self):
        """The rendered question order equals the executable tree's."""
        from repro.core.decision import render_figure

        figure = render_figure()
        deletion = figure.index("deletion required")
        private = figure.index("private even from transacting")
        encrypted = figure.index("encrypted data be shared")
        uninvolved = figure.index("uninvolved parties must validate")
        assert deletion < private < encrypted < uninvolved
