"""The full design guide: interaction, logic, deployment, composition."""

from __future__ import annotations

import pytest

from repro.core.guide import (
    design_interaction_privacy,
    design_logic_confidentiality,
    design_solution,
)
from repro.core.mechanisms import Mechanism
from repro.core.requirements import (
    DataClassRequirements,
    DeploymentContext,
    InteractionPrivacy,
    LogicRequirements,
    UseCaseRequirements,
)


class TestInteractionPrivacy:
    """Section 3.1's three nested levels."""

    def test_none_needs_nothing(self):
        assert design_interaction_privacy(InteractionPrivacy.NONE) == []

    def test_group_private_uses_separate_ledger(self):
        mechanisms = design_interaction_privacy(InteractionPrivacy.GROUP_PRIVATE)
        assert mechanisms == [Mechanism.SEPARATION_OF_LEDGERS_PARTIES]

    def test_subgroup_adds_one_time_keys(self):
        mechanisms = design_interaction_privacy(
            InteractionPrivacy.SUBGROUP_UNLINKABLE
        )
        assert Mechanism.ONE_TIME_PUBLIC_KEYS in mechanisms
        assert Mechanism.ZKP_OF_IDENTITY not in mechanisms

    def test_individual_adds_zkp(self):
        mechanisms = design_interaction_privacy(
            InteractionPrivacy.INDIVIDUAL_ANONYMOUS
        )
        assert Mechanism.ZKP_OF_IDENTITY in mechanisms
        assert Mechanism.ONE_TIME_PUBLIC_KEYS in mechanisms
        assert Mechanism.SEPARATION_OF_LEDGERS_PARTIES in mechanisms


class TestLogicConfidentiality:
    """Section 3.3's four criteria."""

    def test_no_privacy_needed(self):
        mechanism, notes = design_logic_confidentiality(LogicRequirements())
        assert mechanism is None

    def test_admin_hiding_requires_tee(self):
        mechanism, notes = design_logic_confidentiality(
            LogicRequirements(keep_logic_private=True, hide_from_node_admin=True)
        )
        assert mechanism is Mechanism.TRUSTED_EXECUTION_ENVIRONMENT
        assert any("maturity" in n.lower() for n in notes)

    def test_admin_hiding_without_logic_privacy_still_tee(self):
        mechanism, __ = design_logic_confidentiality(
            LogicRequirements(keep_logic_private=False, hide_from_node_admin=True)
        )
        assert mechanism is Mechanism.TRUSTED_EXECUTION_ENVIRONMENT

    def test_language_freedom_requires_external_engine(self):
        mechanism, notes = design_logic_confidentiality(
            LogicRequirements(keep_logic_private=True, need_any_language=True)
        )
        assert mechanism is Mechanism.OFF_CHAIN_EXECUTION_ENGINE
        assert any("version" in n.lower() for n in notes)

    def test_default_is_scoped_installation(self):
        mechanism, __ = design_logic_confidentiality(
            LogicRequirements(keep_logic_private=True)
        )
        assert mechanism is Mechanism.INSTALL_ON_INVOLVED_NODES

    def test_versioning_requirement_noted(self):
        mechanism, notes = design_logic_confidentiality(
            LogicRequirements(
                keep_logic_private=True, need_inbuilt_versioning=True
            )
        )
        assert mechanism is Mechanism.INSTALL_ON_INVOLVED_NODES
        assert any("versioning requirement satisfied" in n for n in notes)

    def test_tee_beats_language_freedom(self):
        """Admin-hiding is the stronger constraint; TEE wins."""
        mechanism, __ = design_logic_confidentiality(
            LogicRequirements(
                keep_logic_private=True,
                hide_from_node_admin=True,
                need_any_language=True,
            )
        )
        assert mechanism is Mechanism.TRUSTED_EXECUTION_ENVIRONMENT


class TestFullSolution:
    def _requirements(self, **overrides) -> UseCaseRequirements:
        base = dict(
            name="test-case",
            interaction_privacy=InteractionPrivacy.GROUP_PRIVATE,
            data_classes=(
                DataClassRequirements(name="pii", deletion_required=True),
                DataClassRequirements(name="trade"),
            ),
            logic=LogicRequirements(keep_logic_private=True),
            deployment=DeploymentContext(),
        )
        base.update(overrides)
        return UseCaseRequirements(**base)

    def test_per_data_class_recommendations(self):
        design = design_solution(self._requirements())
        assert design.recommendation_for("pii").primary is Mechanism.OFF_CHAIN_PEER_DATA
        assert (
            design.recommendation_for("trade").primary
            is Mechanism.SEPARATION_OF_LEDGERS_DATA
        )

    def test_all_mechanisms_aggregated(self):
        design = design_solution(self._requirements())
        mechanisms = design.all_mechanisms()
        assert Mechanism.SEPARATION_OF_LEDGERS_PARTIES in mechanisms
        assert Mechanism.OFF_CHAIN_PEER_DATA in mechanisms
        assert Mechanism.INSTALL_ON_INVOLVED_NODES in mechanisms

    def test_unknown_data_class_raises(self):
        design = design_solution(self._requirements())
        with pytest.raises(KeyError):
            design.recommendation_for("ghost")

    def test_untrusted_orderer_advice(self):
        design = design_solution(self._requirements(
            deployment=DeploymentContext(ordering_service_trusted=False)
        ))
        assert any("private sequencing" in a.lower() for a in design.deployment_advice)

    def test_trusted_orderer_advice_warns_visibility(self):
        design = design_solution(self._requirements())
        assert any("visibility" in a for a in design.deployment_advice)

    def test_external_infrastructure_advice(self):
        design = design_solution(self._requirements(
            deployment=DeploymentContext(per_org_infrastructure=False)
        ))
        assert any("external infrastructure" in a for a in design.deployment_advice)

    def test_describe_is_complete_report(self):
        design = design_solution(self._requirements())
        text = design.describe()
        assert "Interaction privacy" in text
        assert "pii" in text and "trade" in text
        assert "Business logic" in text
        assert "Deployment" in text

    def test_describe_handles_empty_sections(self):
        design = design_solution(UseCaseRequirements(
            name="minimal",
            data_classes=(DataClassRequirements(name="d"),),
        ))
        text = design.describe()
        assert "no interaction-privacy mechanism required" in text
        assert "logic confidentiality not required" in text
