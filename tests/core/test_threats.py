"""Threat-model evaluation, cross-validated against the leakage auditor."""

from __future__ import annotations

import pytest

from repro.core.guide import design_solution
from repro.core.mechanisms import Mechanism
from repro.core.requirements import (
    DataClassRequirements,
    DeploymentContext,
    InteractionPrivacy,
    LogicRequirements,
    UseCaseRequirements,
)
from repro.core.threats import (
    ALL_EXPOSURES,
    COVERAGE,
    Adversary,
    Asset,
    evaluate_design,
    mechanisms_covering,
)


def minimal_design(**overrides):
    base = dict(
        name="threat-case",
        interaction_privacy=InteractionPrivacy.GROUP_PRIVATE,
        data_classes=(DataClassRequirements(name="d"),),
    )
    base.update(overrides)
    return design_solution(UseCaseRequirements(**base))


class TestCoverageMap:
    def test_every_mechanism_has_an_entry(self):
        for mechanism in Mechanism:
            assert mechanism in COVERAGE

    def test_only_tee_covers_node_admin_data(self):
        covering = mechanisms_covering(Adversary.NODE_ADMIN, Asset.TRANSACTION_DATA)
        assert Mechanism.TRUSTED_EXECUTION_ENVIRONMENT in covering
        assert Mechanism.INSTALL_ON_INVOLVED_NODES not in covering

    def test_only_zkp_identity_covers_counterparty_identity(self):
        covering = mechanisms_covering(Adversary.COUNTERPARTY, Asset.IDENTITY)
        assert covering == [Mechanism.ZKP_OF_IDENTITY]

    def test_exposure_universe_size(self):
        assert len(ALL_EXPOSURES) == len(Adversary) * len(Asset)


class TestEvaluation:
    def test_segregation_covers_uninvolved_but_not_orderer(self):
        assessment = evaluate_design(minimal_design())
        assert assessment.is_covered(Adversary.UNINVOLVED_MEMBER, Asset.IDENTITY)
        assert assessment.is_covered(
            Adversary.UNINVOLVED_MEMBER, Asset.TRANSACTION_DATA
        )
        assert not assessment.is_covered(
            Adversary.ORDERING_OPERATOR, Asset.TRANSACTION_DATA
        )

    def test_untrusted_orderer_design_covers_orderer_data(self):
        design = minimal_design(
            deployment=DeploymentContext(ordering_service_trusted=False)
        )
        assessment = evaluate_design(design)
        # Symmetric encryption joins the design and covers the orderer.
        assert assessment.is_covered(
            Adversary.ORDERING_OPERATOR, Asset.TRANSACTION_DATA
        )

    def test_tee_logic_covers_admin(self):
        design = minimal_design(
            logic=LogicRequirements(
                keep_logic_private=True, hide_from_node_admin=True
            )
        )
        assessment = evaluate_design(design)
        assert assessment.is_covered(Adversary.NODE_ADMIN, Asset.BUSINESS_LOGIC)
        assert assessment.is_covered(Adversary.NODE_ADMIN, Asset.TRANSACTION_DATA)

    def test_mpc_design_covers_counterparty_data(self):
        design = minimal_design(data_classes=(
            DataClassRequirements(
                name="votes",
                private_from_counterparties=True,
                shared_function_on_private_inputs=True,
            ),
        ))
        assessment = evaluate_design(design)
        assert assessment.is_covered(Adversary.COUNTERPARTY, Asset.TRANSACTION_DATA)

    def test_residual_partitions_universe(self):
        assessment = evaluate_design(minimal_design())
        assert assessment.covered | assessment.residual == set(ALL_EXPOSURES)
        assert not (assessment.covered & assessment.residual)

    def test_render_matrix(self):
        text = evaluate_design(minimal_design()).render()
        assert "EXPOSED" in text and "covered" in text
        for adversary in Adversary:
            assert adversary.value in text


class TestCrossValidationWithAudit:
    """The coverage map's claims must match what the auditor measures."""

    def test_fabric_audit_matches_segregation_coverage(self):
        from repro.core.audit import audit_fabric

        report = audit_fabric(seed="threat-xval-f")
        # Map says segregation covers uninvolved members: audit agrees.
        assert report.uninvolved_identity_leaks() == 0
        assert report.uninvolved_data_leaks() == 0
        # Map says segregation does NOT cover the orderer: audit agrees.
        assert report.ordering_principal.learned_confidential_data

    def test_corda_tearoff_matches_orderer_coverage(self):
        from repro.core.audit import audit_corda

        report = audit_corda(seed="threat-xval-c")
        # Tear-offs cover (orderer, data) and (orderer, identity): the
        # non-validating notary learned neither.
        assert not report.ordering_principal.learned_confidential_data
        assert not report.ordering_principal.learned_trading_identities
