"""Mechanism catalog: completeness and metadata coherence."""

from __future__ import annotations

import pytest

from repro.core.mechanisms import (
    Category,
    Maturity,
    Mechanism,
    all_mechanisms,
    by_category,
    info,
)


class TestCatalogCompleteness:
    def test_fifteen_table_rows(self):
        assert len(all_mechanisms()) == 15

    def test_category_sizes_match_table_1(self):
        assert len(by_category(Category.PARTIES)) == 3
        assert len(by_category(Category.TRANSACTIONS)) == 7
        assert len(by_category(Category.LOGIC)) == 3
        assert len(by_category(Category.MISC)) == 2

    def test_every_mechanism_has_info(self):
        for mechanism in Mechanism:
            assert info(mechanism).mechanism is mechanism

    def test_display_names_unique_within_category(self):
        for category in Category:
            names = [info(m).display_name for m in by_category(category)]
            assert len(names) == len(set(names))


class TestMaturityLevels:
    """Section 2's maturity caveats, encoded."""

    def test_homomorphic_is_proof_of_concept(self):
        assert (
            info(Mechanism.HOMOMORPHIC_ENCRYPTION).maturity
            is Maturity.PROOF_OF_CONCEPT
        )

    def test_zkp_on_data_is_scenario_specific(self):
        assert info(Mechanism.ZKP_ON_DATA).maturity is Maturity.SCENARIO_SPECIFIC

    def test_tee_and_mpc_experimental(self):
        assert info(Mechanism.TRUSTED_EXECUTION_ENVIRONMENT).maturity is Maturity.EXPERIMENTAL
        assert info(Mechanism.MULTIPARTY_COMPUTATION).maturity is Maturity.EXPERIMENTAL

    def test_core_mechanisms_production_ready(self):
        for mechanism in (
            Mechanism.SEPARATION_OF_LEDGERS_DATA,
            Mechanism.OFF_CHAIN_PEER_DATA,
            Mechanism.SYMMETRIC_ENCRYPTION,
            Mechanism.MERKLE_TEAR_OFFS,
        ):
            assert info(mechanism).maturity is Maturity.PRODUCTION


class TestDecisionProperties:
    def test_only_off_chain_allows_deletion(self):
        deleters = [
            m for m in all_mechanisms() if info(m).allows_deletion
        ]
        assert deleters == [Mechanism.OFF_CHAIN_PEER_DATA]

    def test_mpc_computes_shared_functions(self):
        assert info(Mechanism.MULTIPARTY_COMPUTATION).computes_shared_function
        assert not info(Mechanism.ZKP_ON_DATA).computes_shared_function

    def test_tee_hides_from_admin(self):
        assert info(Mechanism.TRUSTED_EXECUTION_ENVIRONMENT).hides_from_admin
        assert not info(Mechanism.OFF_CHAIN_EXECUTION_ENGINE).hides_from_admin

    def test_only_offchain_engine_allows_any_language(self):
        flexible = [
            m for m in by_category(Category.LOGIC) if info(m).any_language
        ]
        assert flexible == [Mechanism.OFF_CHAIN_EXECUTION_ENGINE]
