"""Markdown report generation."""

from __future__ import annotations

import pytest

from repro.core.guide import design_solution
from repro.core.report import render_markdown
from repro.core.requirements import (
    DataClassRequirements,
    DeploymentContext,
    InteractionPrivacy,
    LogicRequirements,
    UseCaseRequirements,
)


@pytest.fixture
def design():
    return design_solution(UseCaseRequirements(
        name="report-case",
        interaction_privacy=InteractionPrivacy.SUBGROUP_UNLINKABLE,
        data_classes=(
            DataClassRequirements(name="pii", deletion_required=True),
            DataClassRequirements(
                name="votes",
                private_from_counterparties=True,
                shared_function_on_private_inputs=True,
            ),
        ),
        logic=LogicRequirements(keep_logic_private=True, hide_from_node_admin=True),
        deployment=DeploymentContext(ordering_service_trusted=False),
    ))


class TestRenderMarkdown:
    def test_contains_all_sections(self, design):
        report = render_markdown(design)
        for heading in (
            "# Privacy & confidentiality design: report-case",
            "## 1. Privacy of interactions",
            "## 2. Confidentiality of transactions and data",
            "## 3. Confidentiality of business logic",
            "## 4. Platform assessment",
            "## 5. Deployment checklist",
        ):
            assert heading in report

    def test_decision_tables_per_data_class(self, design):
        report = render_markdown(design)
        assert "### Data class `pii`" in report
        assert "### Data class `votes`" in report
        assert "| step | question | answer |" in report

    def test_maturity_warnings_for_immature_mechanisms(self, design):
        report = render_markdown(design)
        # MPC (experimental) and TEE (experimental) must carry warnings.
        assert report.count("⚠") >= 2
        assert "experimental" in report

    def test_platform_scores_table(self, design):
        report = render_markdown(design)
        assert "| platform | score |" in report
        for platform in ("fabric", "corda", "quorum"):
            assert f"| {platform} |" in report

    def test_blocked_mechanisms_called_out(self, design):
        report = render_markdown(design)
        # TEE is blocked everywhere; at least one platform line says so.
        assert "requires substantial rewriting" in report

    def test_deployment_checklist_items(self, design):
        report = render_markdown(design)
        assert "- [ ]" in report
        assert "private sequencing" in report.lower()

    def test_no_logic_mechanism_case(self):
        design = design_solution(UseCaseRequirements(
            name="open-logic",
            data_classes=(DataClassRequirements(name="d"),),
        ))
        report = render_markdown(design)
        assert "shared with all participants" in report


class TestThreatSection:
    def test_threat_matrix_rendered(self, design):
        report = render_markdown(design)
        assert "## 6. Threat coverage" in report
        assert "**EXPOSED**" in report
        assert "ordering-operator" in report

    def test_covered_cells_present(self, design):
        report = render_markdown(design)
        assert "covered" in report
