"""Workload generators: determinism, distributions, validation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import DeterministicRNG
from repro.workloads import (
    LOC_STAGES,
    ZipfianKeys,
    kv_update_stream,
    loc_stream,
    measure_contention,
    trade_stream,
)


class TestKVStream:
    def test_deterministic_for_seed(self):
        a = list(kv_update_stream(["s1", "s2"], 50, seed="x"))
        b = list(kv_update_stream(["s1", "s2"], 50, seed="x"))
        assert a == b

    def test_seed_changes_stream(self):
        a = list(kv_update_stream(["s1"], 50, seed="x"))
        b = list(kv_update_stream(["s1"], 50, seed="y"))
        assert a != b

    def test_length(self):
        assert len(list(kv_update_stream(["s1"], 123))) == 123

    def test_submitters_drawn_from_pool(self):
        ops = list(kv_update_stream(["a", "b", "c"], 200))
        assert {op.submitter for op in ops} == {"a", "b", "c"}

    def test_no_submitters_rejected(self):
        with pytest.raises(ValueError):
            list(kv_update_stream([], 10))

    def test_zipf_skew_concentrates_traffic(self):
        uniform = measure_contention(
            list(kv_update_stream(["s"], 2000, key_count=32, skew=0.0))
        )
        skewed = measure_contention(
            list(kv_update_stream(["s"], 2000, key_count=32, skew=2.0))
        )
        assert skewed.hottest_key_share > 2 * uniform.hottest_key_share

    def test_uniform_covers_keyspace(self):
        report = measure_contention(
            list(kv_update_stream(["s"], 2000, key_count=16, skew=0.0))
        )
        assert report.distinct_keys == 16


class TestZipfianKeys:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianKeys(0)
        with pytest.raises(ValueError):
            ZipfianKeys(4, skew=-1.0)

    def test_draw_in_range(self):
        keys = ZipfianKeys(8, skew=1.0)
        rng = DeterministicRNG("z")
        for __ in range(100):
            key = keys.draw(rng)
            assert key.startswith("key-")
            assert 0 <= int(key.split("-")[1]) < 8

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 64), st.floats(0.0, 3.0))
    def test_cdf_terminates(self, key_count, skew):
        keys = ZipfianKeys(key_count, skew)
        rng = DeterministicRNG(f"{key_count}-{skew}")
        assert keys.draw(rng)


class TestTradeStream:
    def test_buyer_never_seller(self):
        for trade in trade_stream(["a", "b", "c"], 200):
            assert trade.buyer != trade.seller

    def test_confidential_fraction_zero_and_one(self):
        all_open = list(trade_stream(["a", "b"], 100, confidential_fraction=0.0))
        assert not any(t.confidential for t in all_open)
        all_private = list(trade_stream(["a", "b"], 100, confidential_fraction=1.0))
        assert all(t.confidential for t in all_private)

    def test_fraction_roughly_respected(self):
        trades = list(trade_stream(["a", "b", "c"], 1000, confidential_fraction=0.3))
        share = sum(t.confidential for t in trades) / len(trades)
        assert 0.2 < share < 0.4

    def test_validation(self):
        with pytest.raises(ValueError):
            list(trade_stream(["solo"], 10))
        with pytest.raises(ValueError):
            list(trade_stream(["a", "b"], 10, confidential_fraction=1.5))

    def test_notional_positive(self):
        assert all(t.notional > 0 for t in trade_stream(["a", "b"], 100))

    def test_deterministic_for_seed(self):
        a = list(trade_stream(["a", "b", "c"], 50, seed="t"))
        b = list(trade_stream(["a", "b", "c"], 50, seed="t"))
        assert a == b


class TestZipfSkewMonotonicity:
    def test_hottest_key_share_rises_with_skew(self):
        """Contention is monotone in the skew knob across a ladder."""
        shares = [
            measure_contention(
                list(kv_update_stream(["s"], 3000, key_count=32, skew=skew))
            ).hottest_key_share
            for skew in (0.0, 0.5, 1.0, 1.5, 2.0)
        ]
        assert shares == sorted(shares)
        assert shares[-1] > shares[0]

    def test_distinct_keys_shrink_with_skew(self):
        uniform = measure_contention(
            list(kv_update_stream(["s"], 500, key_count=64, skew=0.0))
        )
        skewed = measure_contention(
            list(kv_update_stream(["s"], 500, key_count=64, skew=2.5))
        )
        assert skewed.distinct_keys < uniform.distinct_keys

    def test_skew_zero_is_uniform_cdf(self):
        keys = ZipfianKeys(10, skew=0.0)
        assert keys._cdf[0] == pytest.approx(0.1)
        assert keys._cdf[-1] == pytest.approx(1.0)

    def test_bisect_draw_handles_cdf_edges(self):
        """Draws at the extreme ends of [0, 1) stay within the keyspace."""

        class PinnedRNG:
            def __init__(self, value):
                self.value = value

            def uniform(self, low, high):
                return self.value

        keys = ZipfianKeys(4, skew=1.0)
        assert keys.draw(PinnedRNG(0.0)) == "key-0000"
        assert keys.draw(PinnedRNG(0.9999999)) == "key-0003"
        assert keys.draw(PinnedRNG(1.0)) == "key-0003"


class TestLoCStream:
    def test_deterministic_for_seed(self):
        a = list(loc_stream(["a", "b"], ["c", "d"], 40, seed="l"))
        b = list(loc_stream(["a", "b"], ["c", "d"], 40, seed="l"))
        assert a == b

    def test_seed_changes_stream(self):
        a = list(loc_stream(["a", "b"], ["c", "d"], 40, seed="l1"))
        b = list(loc_stream(["a", "b"], ["c", "d"], 40, seed="l2"))
        assert a != b

    def test_stages_are_lifecycle_prefixes(self):
        for application in loc_stream(["a"], ["b"], 200):
            depth = len(application.stages)
            assert 1 <= depth <= len(LOC_STAGES)
            assert application.stages == LOC_STAGES[:depth]

    def test_completion_fraction_bounds(self):
        done = [
            app.completed
            for app in loc_stream(["a"], ["b"], 400, completion_fraction=0.75)
        ]
        share = sum(done) / len(done)
        assert 0.6 < share < 0.9
        assert all(
            app.completed
            for app in loc_stream(["a"], ["b"], 50, completion_fraction=1.0)
        )
        assert not any(
            app.completed
            for app in loc_stream(["a"], ["b"], 50, completion_fraction=0.0)
        )

    def test_applicant_never_own_beneficiary(self):
        for app in loc_stream(["a", "b"], ["a", "b", "c"], 200):
            assert app.applicant != app.beneficiary

    def test_single_overlapping_party_still_generates(self):
        apps = list(loc_stream(["a"], ["a"], 10))
        assert len(apps) == 10  # degenerate pool falls back, never empty

    def test_amounts_positive_and_ids_unique(self):
        apps = list(loc_stream(["a"], ["b"], 100))
        assert all(app.amount > 0 for app in apps)
        assert len({app.loc_id for app in apps}) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            list(loc_stream([], ["b"], 10))
        with pytest.raises(ValueError):
            list(loc_stream(["a"], ["b"], 10, completion_fraction=-0.1))
