"""Workload generators: determinism, distributions, validation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import DeterministicRNG
from repro.workloads import (
    ZipfianKeys,
    kv_update_stream,
    measure_contention,
    trade_stream,
)


class TestKVStream:
    def test_deterministic_for_seed(self):
        a = list(kv_update_stream(["s1", "s2"], 50, seed="x"))
        b = list(kv_update_stream(["s1", "s2"], 50, seed="x"))
        assert a == b

    def test_seed_changes_stream(self):
        a = list(kv_update_stream(["s1"], 50, seed="x"))
        b = list(kv_update_stream(["s1"], 50, seed="y"))
        assert a != b

    def test_length(self):
        assert len(list(kv_update_stream(["s1"], 123))) == 123

    def test_submitters_drawn_from_pool(self):
        ops = list(kv_update_stream(["a", "b", "c"], 200))
        assert {op.submitter for op in ops} == {"a", "b", "c"}

    def test_no_submitters_rejected(self):
        with pytest.raises(ValueError):
            list(kv_update_stream([], 10))

    def test_zipf_skew_concentrates_traffic(self):
        uniform = measure_contention(
            list(kv_update_stream(["s"], 2000, key_count=32, skew=0.0))
        )
        skewed = measure_contention(
            list(kv_update_stream(["s"], 2000, key_count=32, skew=2.0))
        )
        assert skewed.hottest_key_share > 2 * uniform.hottest_key_share

    def test_uniform_covers_keyspace(self):
        report = measure_contention(
            list(kv_update_stream(["s"], 2000, key_count=16, skew=0.0))
        )
        assert report.distinct_keys == 16


class TestZipfianKeys:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianKeys(0)
        with pytest.raises(ValueError):
            ZipfianKeys(4, skew=-1.0)

    def test_draw_in_range(self):
        keys = ZipfianKeys(8, skew=1.0)
        rng = DeterministicRNG("z")
        for __ in range(100):
            key = keys.draw(rng)
            assert key.startswith("key-")
            assert 0 <= int(key.split("-")[1]) < 8

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 64), st.floats(0.0, 3.0))
    def test_cdf_terminates(self, key_count, skew):
        keys = ZipfianKeys(key_count, skew)
        rng = DeterministicRNG(f"{key_count}-{skew}")
        assert keys.draw(rng)


class TestTradeStream:
    def test_buyer_never_seller(self):
        for trade in trade_stream(["a", "b", "c"], 200):
            assert trade.buyer != trade.seller

    def test_confidential_fraction_zero_and_one(self):
        all_open = list(trade_stream(["a", "b"], 100, confidential_fraction=0.0))
        assert not any(t.confidential for t in all_open)
        all_private = list(trade_stream(["a", "b"], 100, confidential_fraction=1.0))
        assert all(t.confidential for t in all_private)

    def test_fraction_roughly_respected(self):
        trades = list(trade_stream(["a", "b", "c"], 1000, confidential_fraction=0.3))
        share = sum(t.confidential for t in trades) / len(trades)
        assert 0.2 < share < 0.4

    def test_validation(self):
        with pytest.raises(ValueError):
            list(trade_stream(["solo"], 10))
        with pytest.raises(ValueError):
            list(trade_stream(["a", "b"], 10, confidential_fraction=1.5))

    def test_notional_positive(self):
        assert all(t.notional > 0 for t in trade_stream(["a", "b"], 100))
