"""Schnorr group arithmetic and generation."""

from __future__ import annotations

import pytest

from repro.common.rng import DeterministicRNG
from repro.crypto.groups import (
    SchnorrGroup,
    _is_probable_prime,
    cached_test_group,
    small_group,
)


class TestPrimality:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 7919):
            assert _is_probable_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 9, 15, 91, 561, 7917):
            assert not _is_probable_prime(n)

    def test_carmichael_numbers_rejected(self):
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not _is_probable_prime(n)


class TestGroupStructure:
    def test_safe_prime_relation(self, group):
        assert group.p == 2 * group.q + 1

    def test_generators_in_subgroup(self, group):
        assert group.contains(group.g)
        assert group.contains(group.h)

    def test_generators_independent(self, group):
        assert group.g != group.h

    def test_contains_rejects_outside(self, group):
        assert not group.contains(0)
        assert not group.contains(group.p)

    def test_identity_is_member(self, group):
        assert group.contains(1)

    def test_bad_group_rejected(self):
        with pytest.raises(ValueError):
            SchnorrGroup(p=23, q=7, g=2, h=3)  # p != 2q+1


class TestGroupOps:
    def test_exp_reduces_exponent(self, group):
        assert group.exp(group.g, group.q + 5) == group.exp(group.g, 5)

    def test_exp_of_q_is_identity(self, group):
        assert group.exp(group.g, group.q) == 1

    def test_mul_inv(self, group, rng):
        a = group.exp(group.g, group.random_scalar(rng))
        assert group.mul(a, group.inv(a)) == 1

    def test_commit_structure(self, group):
        assert group.commit(0, 0) == 1
        assert group.commit(1, 0) == group.g
        assert group.commit(0, 1) == group.h

    def test_random_scalar_range(self, group, rng):
        for __ in range(50):
            scalar = group.random_scalar(rng)
            assert 1 <= scalar < group.q

    def test_hash_to_scalar_range_and_determinism(self, group):
        s1 = group.hash_to_scalar("t", b"data")
        s2 = group.hash_to_scalar("t", b"data")
        assert s1 == s2
        assert 0 <= s1 < group.q
        assert group.hash_to_scalar("t", b"other") != s1

    def test_hash_to_element_in_subgroup(self, group):
        element = group.hash_to_element("t", b"data")
        assert group.contains(element)
        assert element != 1


class TestGroupGeneration:
    def test_small_group_deterministic(self):
        a = small_group(bits=64, seed="x")
        b = small_group(bits=64, seed="x")
        assert (a.p, a.q, a.g, a.h) == (b.p, b.q, b.g, b.h)

    def test_small_group_seed_matters(self):
        assert small_group(bits=64, seed="x").p != small_group(bits=64, seed="y").p

    def test_small_group_too_small_rejected(self):
        with pytest.raises(ValueError):
            small_group(bits=16)

    def test_cached_test_group_is_memoized(self):
        assert cached_test_group() is cached_test_group()

    def test_test_group_size(self):
        assert cached_test_group().q.bit_length() >= 159
