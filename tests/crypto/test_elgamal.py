"""ElGamal: element encryption, re-randomization, hybrid key transport."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DecryptionError
from repro.common.rng import DeterministicRNG
from repro.crypto.elgamal import (
    ElGamal,
    receive_encrypted,
    share_encrypted,
)
from repro.crypto.symmetric import SymmetricKey


@pytest.fixture
def elgamal(group):
    return ElGamal(group)


@pytest.fixture
def alice(scheme):
    return scheme.keygen_from_seed("elgamal-alice")


@pytest.fixture
def bob(scheme):
    return scheme.keygen_from_seed("elgamal-bob")


class TestElementEncryption:
    def test_round_trip(self, elgamal, alice, rng):
        element = elgamal.group.exp(elgamal.group.g, 777)
        ct = elgamal.encrypt_element(alice.public, element, rng)
        assert elgamal.decrypt_element(alice, ct) == element

    def test_wrong_key_garbles(self, elgamal, alice, bob, rng):
        element = elgamal.group.exp(elgamal.group.g, 777)
        ct = elgamal.encrypt_element(alice.public, element, rng)
        assert elgamal.decrypt_element(bob, ct) != element

    def test_probabilistic(self, elgamal, alice, rng):
        element = elgamal.group.exp(elgamal.group.g, 777)
        a = elgamal.encrypt_element(alice.public, element, rng)
        b = elgamal.encrypt_element(alice.public, element, rng)
        assert (a.c1, a.c2) != (b.c1, b.c2)

    def test_non_element_rejected(self, elgamal, alice, rng):
        with pytest.raises(DecryptionError, match="subgroup"):
            elgamal.encrypt_element(alice.public, 0, rng)

    def test_rerandomize_unlinkable_same_plaintext(self, elgamal, alice, rng):
        element = elgamal.group.exp(elgamal.group.g, 42)
        ct = elgamal.encrypt_element(alice.public, element, rng)
        fresh = elgamal.rerandomize(alice.public, ct, rng)
        assert (fresh.c1, fresh.c2) != (ct.c1, ct.c2)
        assert elgamal.decrypt_element(alice, fresh) == element


class TestKeyTransport:
    def test_wrap_unwrap(self, elgamal, alice, rng):
        key = SymmetricKey.from_seed("transport")
        wrapped = elgamal.wrap_key(alice.public, key, rng)
        assert elgamal.unwrap_key(alice, wrapped).raw == key.raw

    def test_wrong_recipient_cannot_unwrap(self, elgamal, alice, bob, rng):
        key = SymmetricKey.from_seed("transport")
        wrapped = elgamal.wrap_key(alice.public, key, rng)
        with pytest.raises(DecryptionError):
            elgamal.unwrap_key(bob, wrapped)

    def test_key_bytes_not_visible_in_wrap(self, elgamal, alice, rng):
        key = SymmetricKey.from_seed("transport")
        wrapped = elgamal.wrap_key(alice.public, key, rng)
        assert key.raw not in wrapped.wrapped.body


class TestSharingPattern:
    def test_multi_recipient_sharing(self, alice, bob, rng, group):
        payload = b"confidential agreement"
        ct, wraps = share_encrypted(
            payload,
            {"alice": alice.public, "bob": bob.public},
            rng,
            group=group,
        )
        assert receive_encrypted(ct, wraps["alice"], alice, group=group) == payload
        assert receive_encrypted(ct, wraps["bob"], bob, group=group) == payload

    def test_non_recipient_locked_out(self, alice, bob, scheme, rng, group):
        mallory = scheme.keygen_from_seed("elgamal-mallory")
        ct, wraps = share_encrypted(
            b"secret", {"alice": alice.public}, rng, group=group
        )
        with pytest.raises(DecryptionError):
            receive_encrypted(ct, wraps["alice"], mallory, group=group)

    def test_single_ciphertext_many_wraps(self, scheme, rng, group):
        recipients = {
            f"org{i}": scheme.keygen_from_seed(f"share-{i}").public
            for i in range(5)
        }
        ct, wraps = share_encrypted(b"x" * 1000, recipients, rng, group=group)
        assert len(wraps) == 5
        # One payload ciphertext regardless of recipient count.
        assert ct.size() < 1100

    @settings(max_examples=15, deadline=None)
    @given(st.binary(min_size=1, max_size=256))
    def test_round_trip_property(self, payload):
        from repro.crypto.signatures import SignatureScheme

        scheme = SignatureScheme()
        key = scheme.keygen_from_seed("prop")
        rng = DeterministicRNG(payload)
        ct, wraps = share_encrypted(payload, {"p": key.public}, rng)
        assert receive_encrypted(ct, wraps["p"], key) == payload
