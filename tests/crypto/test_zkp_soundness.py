"""Adversarial soundness: cheating provers against the ZKP layer.

The correctness tests show honest proofs verify; these show *dishonest*
ones do not.  Each test plays a concrete attack a malicious party could
mount — forged bit proofs, mismatched aggregates, mixed transcripts —
and asserts the verifier rejects.
"""

from __future__ import annotations

import pytest

from repro.common.rng import DeterministicRNG
from repro.crypto.commitments import Opening, PedersenScheme
from repro.crypto.zkp import (
    BitProof,
    FundsProof,
    RangeProof,
    RangeProver,
    prove_sufficient_funds,
    verify_sufficient_funds,
)


@pytest.fixture
def prover(group):
    return RangeProver(group)


@pytest.fixture
def pedersen(prover):
    return PedersenScheme(prover.group)


@pytest.fixture
def rng():
    return DeterministicRNG("soundness")


class TestRangeProofSoundness:
    def test_bit_commitments_from_another_value_rejected(
        self, prover, pedersen, rng
    ):
        """Graft a valid proof for value A onto a commitment to value B."""
        __, opening_a = pedersen.commit(5, rng)
        commitment_b, __ = pedersen.commit(200, rng)
        proof_for_a = prover.prove_range(5, opening_a, 8, b"ctx", rng)
        assert not prover.verify_range(commitment_b, proof_for_a, b"ctx")

    def test_swapped_bit_proofs_rejected(self, prover, pedersen, rng):
        """Reorder bit proofs between positions (changes the value)."""
        commitment, opening = pedersen.commit(6, rng)  # 0b110
        proof = prover.prove_range(6, opening, 4, b"ctx", rng)
        shuffled = RangeProof(
            bits=proof.bits,
            bit_commitments=tuple(reversed(proof.bit_commitments)),
            bit_proofs=tuple(reversed(proof.bit_proofs)),
            aggregate_blinding=proof.aggregate_blinding,
        )
        assert not prover.verify_range(commitment, shuffled, b"ctx")

    def test_truncated_proof_rejected(self, prover, pedersen, rng):
        commitment, opening = pedersen.commit(6, rng)
        proof = prover.prove_range(6, opening, 8, b"ctx", rng)
        truncated = RangeProof(
            bits=8,
            bit_commitments=proof.bit_commitments[:4],
            bit_proofs=proof.bit_proofs[:4],
            aggregate_blinding=proof.aggregate_blinding,
        )
        assert not prover.verify_range(commitment, truncated, b"ctx")

    def test_non_bit_commitment_rejected(self, prover, pedersen, rng):
        """Replace one bit commitment with a commitment to 2: the OR-proof
        over {0,1} cannot be completed, so any forgery fails."""
        commitment, opening = pedersen.commit(1, rng)
        proof = prover.prove_range(1, opening, 2, b"ctx", rng)
        two_commitment, __ = pedersen.commit_with(2, 7)
        forged = RangeProof(
            bits=proof.bits,
            bit_commitments=(two_commitment.element,) + proof.bit_commitments[1:],
            bit_proofs=proof.bit_proofs,
            aggregate_blinding=proof.aggregate_blinding,
        )
        assert not prover.verify_range(commitment, forged, b"ctx")

    def test_bit_proof_challenge_split_must_sum(self, prover, pedersen, rng):
        """Tamper with one branch's challenge: e0 + e1 != H(transcript)."""
        commitment, opening = pedersen.commit(1, rng)
        proof = prover.prove_range(1, opening, 2, b"ctx", rng)
        original = proof.bit_proofs[0]
        tampered_bit = BitProof(
            commitment_zero=original.commitment_zero,
            commitment_one=original.commitment_one,
            challenge_zero=(original.challenge_zero + 1) % prover.group.q,
            challenge_one=original.challenge_one,
            response_zero=original.response_zero,
            response_one=original.response_one,
        )
        forged = RangeProof(
            bits=proof.bits,
            bit_commitments=proof.bit_commitments,
            bit_proofs=(tampered_bit,) + proof.bit_proofs[1:],
            aggregate_blinding=proof.aggregate_blinding,
        )
        assert not prover.verify_range(commitment, forged, b"ctx")

    def test_element_outside_group_rejected(self, prover, pedersen, rng):
        commitment, opening = pedersen.commit(1, rng)
        proof = prover.prove_range(1, opening, 2, b"ctx", rng)
        forged = RangeProof(
            bits=proof.bits,
            bit_commitments=(prover.group.p - 1,) + proof.bit_commitments[1:],
            bit_proofs=proof.bit_proofs,
            aggregate_blinding=proof.aggregate_blinding,
        )
        assert not prover.verify_range(commitment, forged, b"ctx")


class TestFundsProofSoundness:
    def test_proof_for_lower_threshold_fails_higher_claim(
        self, prover, pedersen, rng
    ):
        """A 'balance >= 100' proof must not pass as 'balance >= 900'."""
        commitment, opening = pedersen.commit(500, rng)
        weak = prove_sufficient_funds(prover, 500, opening, 100, 12, b"tx", rng)
        inflated = FundsProof(threshold=900, range_proof=weak.range_proof)
        assert not verify_sufficient_funds(prover, commitment, inflated, b"tx")

    def test_replaying_proof_on_poorer_account_fails(
        self, prover, pedersen, rng
    ):
        """A rich account's proof does not transfer to a poor account's
        commitment."""
        rich_commitment, rich_opening = pedersen.commit(10_000, rng)
        poor_commitment, __ = pedersen.commit(10, rng)
        proof = prove_sufficient_funds(
            prover, 10_000, rich_opening, 5_000, 16, b"tx", rng
        )
        assert verify_sufficient_funds(prover, rich_commitment, proof, b"tx")
        assert not verify_sufficient_funds(prover, poor_commitment, proof, b"tx")

    def test_context_replay_across_transactions_fails(
        self, prover, pedersen, rng
    ):
        commitment, opening = pedersen.commit(500, rng)
        proof = prove_sufficient_funds(prover, 500, opening, 100, 12, b"tx-1", rng)
        assert not verify_sufficient_funds(prover, commitment, proof, b"tx-2")
