"""Authenticated symmetric cipher: round trips, tamper detection."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DecryptionError
from repro.common.rng import DeterministicRNG
from repro.crypto.symmetric import Ciphertext, SymmetricKey


@pytest.fixture
def key():
    return SymmetricKey.from_seed("test-key")


class TestRoundTrip:
    def test_encrypt_decrypt(self, key, rng):
        ct = key.encrypt(b"hello world", rng)
        assert key.decrypt(ct) == b"hello world"

    def test_empty_plaintext(self, key, rng):
        ct = key.encrypt(b"", rng)
        assert key.decrypt(ct) == b""

    def test_ciphertext_differs_from_plaintext(self, key, rng):
        ct = key.encrypt(b"secret-content", rng)
        assert ct.body != b"secret-content"

    def test_fresh_nonce_per_encryption(self, key, rng):
        a = key.encrypt(b"same", rng)
        b = key.encrypt(b"same", rng)
        assert a.nonce != b.nonce
        assert a.body != b.body

    def test_associated_data_binds(self, key, rng):
        ct = key.encrypt(b"payload", rng, associated_data=b"header-1")
        assert key.decrypt(ct, associated_data=b"header-1") == b"payload"
        with pytest.raises(DecryptionError):
            key.decrypt(ct, associated_data=b"header-2")


class TestTamperDetection:
    def test_flipped_body_bit(self, key, rng):
        ct = key.encrypt(b"payload", rng)
        tampered = Ciphertext(
            nonce=ct.nonce,
            body=bytes([ct.body[0] ^ 1]) + ct.body[1:],
            tag=ct.tag,
        )
        with pytest.raises(DecryptionError):
            key.decrypt(tampered)

    def test_flipped_nonce(self, key, rng):
        ct = key.encrypt(b"payload", rng)
        tampered = Ciphertext(
            nonce=bytes([ct.nonce[0] ^ 1]) + ct.nonce[1:],
            body=ct.body, tag=ct.tag,
        )
        with pytest.raises(DecryptionError):
            key.decrypt(tampered)

    def test_wrong_key(self, key, rng):
        other = SymmetricKey.from_seed("other-key")
        ct = key.encrypt(b"payload", rng)
        with pytest.raises(DecryptionError):
            other.decrypt(ct)


class TestKeyManagement:
    def test_key_size_enforced(self):
        with pytest.raises(ValueError):
            SymmetricKey(b"short")

    def test_from_seed_deterministic(self):
        assert SymmetricKey.from_seed("s").raw == SymmetricKey.from_seed("s").raw

    def test_generate_uses_rng(self):
        a = SymmetricKey.generate(DeterministicRNG("k"))
        b = SymmetricKey.generate(DeterministicRNG("k"))
        assert a.raw == b.raw

    def test_raw_exposes_shareable_key(self, key, rng):
        # Wrapping workflow: share raw key, reconstruct, decrypt.
        reconstructed = SymmetricKey(key.raw)
        ct = key.encrypt(b"shared", rng)
        assert reconstructed.decrypt(ct) == b"shared"

    def test_size_accounting(self, key, rng):
        ct = key.encrypt(b"x" * 100, rng)
        assert ct.size() == len(ct.nonce) + 100 + len(ct.tag)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=512))
    def test_round_trip_property(self, plaintext):
        key = SymmetricKey.from_seed("prop")
        rng = DeterministicRNG("prop-rng")
        assert key.decrypt(key.encrypt(plaintext, rng)) == plaintext
