"""Simulated TEEs: attestation, isolation, sealing, rollback detection."""

from __future__ import annotations

import pytest

from repro.common.errors import AttestationError, CryptoError
from repro.common.rng import DeterministicRNG
from repro.common.serialization import canonical_bytes, from_canonical_json
from repro.crypto.tee import Attestation, Enclave, Manufacturer, measure_code


def adder(args):
    return {"sum": args["a"] + args["b"]}


def multiplier(args):
    return {"product": args["a"] * args["b"]}


@pytest.fixture
def manufacturer():
    return Manufacturer()


@pytest.fixture
def enclave(manufacturer):
    return manufacturer.provision()


def run_in_enclave(enclave, args, nonce=b"n1"):
    rng = DeterministicRNG("tee-test")
    session = enclave.establish_session_key(rng)
    ct = session.encrypt(canonical_bytes(args), rng)
    out, attestation = enclave.execute(ct, nonce)
    result = from_canonical_json(session.decrypt(out).decode("utf-8"))
    return result, attestation


class TestExecution:
    def test_computation_correct(self, enclave):
        enclave.load(adder)
        result, __ = run_in_enclave(enclave, {"a": 2, "b": 3})
        assert result == {"sum": 5}

    def test_no_code_loaded_rejected(self, enclave, rng):
        session_error = None
        with pytest.raises(CryptoError):
            enclave.execute(None, b"n")

    def test_output_encrypted_for_caller_only(self, enclave):
        enclave.load(adder)
        rng = DeterministicRNG("caller")
        session = enclave.establish_session_key(rng)
        ct = session.encrypt(canonical_bytes({"a": 1, "b": 1}), rng)
        out, __ = enclave.execute(ct, b"n")
        # The raw output bytes are not the plaintext result.
        assert b"sum" not in out.body


class TestAttestation:
    def test_valid_attestation(self, manufacturer, enclave):
        measurement = enclave.load(adder)
        __, attestation = run_in_enclave(enclave, {"a": 1, "b": 2}, nonce=b"x")
        manufacturer.verify_attestation(attestation, measurement, b"x")

    def test_measurement_identifies_code(self):
        assert measure_code(adder) != measure_code(multiplier)

    def test_wrong_measurement_rejected(self, manufacturer, enclave):
        enclave.load(adder)
        __, attestation = run_in_enclave(enclave, {"a": 1, "b": 2}, nonce=b"x")
        with pytest.raises(AttestationError, match="measurement"):
            manufacturer.verify_attestation(
                attestation, measure_code(multiplier), b"x"
            )

    def test_replayed_nonce_rejected(self, manufacturer, enclave):
        measurement = enclave.load(adder)
        __, attestation = run_in_enclave(enclave, {"a": 1, "b": 2}, nonce=b"x")
        with pytest.raises(AttestationError, match="nonce"):
            manufacturer.verify_attestation(attestation, measurement, b"y")

    def test_unknown_enclave_rejected(self, manufacturer, enclave):
        measurement = enclave.load(adder)
        __, attestation = run_in_enclave(enclave, {"a": 1, "b": 2}, nonce=b"x")
        forged = Attestation(**{**attestation.__dict__, "enclave_id": "enclave-9999"})
        with pytest.raises(AttestationError, match="unknown enclave"):
            manufacturer.verify_attestation(forged, measurement, b"x")

    def test_counter_advances_per_execution(self, manufacturer, enclave):
        measurement = enclave.load(adder)
        __, att1 = run_in_enclave(enclave, {"a": 1, "b": 2}, nonce=b"x1")
        __, att2 = run_in_enclave(enclave, {"a": 1, "b": 2}, nonce=b"x2")
        assert att2.counter == att1.counter + 1

    def test_rollback_detected(self, manufacturer, enclave):
        measurement = enclave.load(adder)
        __, att1 = run_in_enclave(enclave, {"a": 1, "b": 2}, nonce=b"x1")
        __, att2 = run_in_enclave(enclave, {"a": 1, "b": 2}, nonce=b"x2")
        # A relying party that has seen counter=2 rejects counter=1.
        with pytest.raises(AttestationError, match="rollback"):
            manufacturer.verify_attestation(
                att1, measurement, b"x1", minimum_counter=att2.counter
            )


class TestIsolation:
    def test_host_log_contains_only_sizes(self, enclave):
        enclave.load(adder)
        run_in_enclave(enclave, {"a": 10, "b": 20})
        for entry in enclave.host_log:
            assert isinstance(entry.visible_bytes, int)
        assert not enclave.host_observed_plaintext()

    def test_host_log_records_operations(self, enclave):
        enclave.load(adder)
        run_in_enclave(enclave, {"a": 1, "b": 2})
        operations = [entry.operation for entry in enclave.host_log]
        assert operations == ["load", "key-exchange", "execute-input", "execute-output"]


class TestSealing:
    def test_seal_unseal_round_trip(self, enclave):
        enclave.load(adder)
        sealed = enclave.seal_state({"balance": 99})
        assert enclave.unseal_state(sealed) == {"balance": 99}

    def test_sealed_state_is_ciphertext(self, enclave):
        enclave.load(adder)
        sealed = enclave.seal_state({"balance": 99})
        assert b"balance" not in sealed.body

    def test_other_enclave_cannot_unseal(self, manufacturer, enclave):
        enclave.load(adder)
        sealed = enclave.seal_state({"balance": 99})
        other = manufacturer.provision()
        other.load(adder)
        with pytest.raises(Exception):
            other.unseal_state(sealed)

    def test_seal_requires_loaded_code(self, enclave):
        with pytest.raises(CryptoError):
            enclave.seal_state({"x": 1})
