"""One-time public keys: unlinkability, linking certs, co-ownership proofs."""

from __future__ import annotations

import pytest

from repro.common.errors import CertificateError
from repro.crypto.onetime import (
    OneTimeKeyFactory,
    prove_co_ownership,
    resolve_owner,
    verify_co_ownership,
)
from repro.crypto.pki import CertificateAuthority, make_identity


@pytest.fixture
def ca(scheme, clock):
    return CertificateAuthority("OrgCA", scheme, clock)


@pytest.fixture
def factory(ca, scheme):
    __, cert = make_identity("alice", ca, scheme)
    return OneTimeKeyFactory(root_certificate=cert, ca=ca, scheme=scheme)


class TestMinting:
    def test_fresh_keys_distinct(self, factory):
        keys = {factory.mint().public.y for __ in range(10)}
        assert len(keys) == 10

    def test_linking_certificate_names_root(self, factory, ca):
        identity = factory.mint()
        owner, root_y = resolve_owner(ca, identity.linking_certificate)
        assert owner == "alice"
        assert root_y == factory.root_certificate.public_key_y

    def test_one_time_key_differs_from_root(self, factory):
        identity = factory.mint()
        assert identity.public.y != factory.root_certificate.public_key_y

    def test_one_time_key_signs(self, factory, scheme):
        identity = factory.mint()
        sig = scheme.sign(identity.key, b"tx")
        assert scheme.verify(identity.public, b"tx", sig)

    def test_non_linking_cert_rejected(self, ca, scheme):
        __, plain_cert = make_identity("bob", ca, scheme)
        with pytest.raises(CertificateError, match="not a linking"):
            resolve_owner(ca, plain_cert)

    def test_revoked_linking_cert_rejected(self, factory, ca):
        identity = factory.mint()
        ca.revoke(identity.linking_certificate.serial)
        with pytest.raises(CertificateError, match="revoked"):
            resolve_owner(ca, identity.linking_certificate)


class TestCoOwnership:
    def test_same_owner_proof_verifies(self, factory, scheme, rng):
        a, b = factory.mint(), factory.mint()
        proof = prove_co_ownership(scheme, a.key, b.key, b"tx-9", rng)
        assert verify_co_ownership(scheme, a.public, b.public, proof, b"tx-9")

    def test_proof_bound_to_context(self, factory, scheme, rng):
        a, b = factory.mint(), factory.mint()
        proof = prove_co_ownership(scheme, a.key, b.key, b"tx-9", rng)
        assert not verify_co_ownership(scheme, a.public, b.public, proof, b"tx-10")

    def test_proof_bound_to_keys(self, factory, scheme, rng):
        a, b, c = factory.mint(), factory.mint(), factory.mint()
        proof = prove_co_ownership(scheme, a.key, b.key, b"tx", rng)
        assert not verify_co_ownership(scheme, a.public, c.public, proof, b"tx")

    def test_proof_does_not_reveal_root(self, factory, scheme, rng):
        # The proof object carries only the ratio element and transcript —
        # neither equals the root public key or either secret.
        a, b = factory.mint(), factory.mint()
        proof = prove_co_ownership(scheme, a.key, b.key, b"tx", rng)
        assert proof.ratio != factory.root_certificate.public_key_y
        assert proof.ratio not in (a.key.x, b.key.x)
