"""Merkle trees, inclusion proofs, and tear-offs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ProofError
from repro.crypto.merkle import InclusionProof, MerkleTree, TearOff, leaf_digest


@pytest.fixture
def values():
    return ["alpha", {"amount": 100}, ["nested", 1], "delta", 42]


@pytest.fixture
def tree(values):
    return MerkleTree(values)


class TestTree:
    def test_root_deterministic(self, values):
        assert MerkleTree(values).root == MerkleTree(values).root

    def test_root_sensitive_to_content(self, values):
        changed = values[:]
        changed[1] = {"amount": 101}
        assert MerkleTree(values).root != MerkleTree(changed).root

    def test_root_sensitive_to_order(self, values):
        assert MerkleTree(values).root != MerkleTree(list(reversed(values))).root

    def test_empty_tree_has_root(self):
        assert len(MerkleTree([]).root) == 32

    def test_single_leaf(self):
        tree = MerkleTree(["only"])
        assert tree.leaf_count == 1
        assert tree.inclusion_proof(0).verify("only", tree.root)

    def test_leaf_digest_domain_separated(self):
        # A leaf equal to an inner-node digest must not collide.
        assert leaf_digest("x") != leaf_digest("y")


class TestInclusionProofs:
    def test_every_leaf_provable(self, tree, values):
        for index, value in enumerate(values):
            assert tree.inclusion_proof(index).verify(value, tree.root)

    def test_wrong_value_fails(self, tree):
        assert not tree.inclusion_proof(0).verify("not-alpha", tree.root)

    def test_wrong_root_fails(self, tree, values):
        other = MerkleTree(values + ["extra"])
        assert not tree.inclusion_proof(0).verify(values[0], other.root)

    def test_wrong_index_fails(self, tree, values):
        proof = tree.inclusion_proof(0)
        shifted = InclusionProof(
            leaf_index=1, leaf_count=proof.leaf_count, path=proof.path
        )
        assert not shifted.verify(values[0], tree.root)

    def test_out_of_range_index_rejected(self, tree):
        with pytest.raises(ProofError):
            tree.inclusion_proof(99)

    def test_out_of_range_proof_fails_closed(self, tree, values):
        proof = InclusionProof(leaf_index=77, leaf_count=5, path=())
        assert not proof.verify(values[0], tree.root)


class TestTearOffs:
    def test_tear_off_verifies(self, tree):
        assert tree.tear_off({0, 2}).verify(tree.root)

    def test_reveal_all(self, tree):
        tear = tree.tear_off(set(range(tree.leaf_count)))
        assert tear.verify(tree.root)
        assert tear.disclosure_ratio() == 1.0

    def test_reveal_none(self, tree):
        tear = tree.tear_off(set())
        assert tear.verify(tree.root)
        assert tear.disclosure_ratio() == 0.0

    def test_hidden_values_absent(self, tree, values):
        tear = tree.tear_off({0})
        assert tear.visible == {0: values[0]}
        assert set(tear.hidden) == {1, 2, 3, 4}
        for digest in tear.hidden.values():
            assert isinstance(digest, bytes)

    def test_require_visible(self, tree, values):
        tear = tree.tear_off({1})
        assert tear.require_visible(1) == values[1]
        with pytest.raises(ProofError, match="torn off"):
            tear.require_visible(0)

    def test_tampered_visible_leaf_fails(self, tree):
        tear = tree.tear_off({0})
        forged = TearOff(
            leaf_count=tear.leaf_count,
            visible={0: "tampered"},
            hidden=tear.hidden,
        )
        assert not forged.verify(tree.root)

    def test_tampered_hidden_digest_fails(self, tree):
        tear = tree.tear_off({0})
        hidden = dict(tear.hidden)
        hidden[1] = b"\x00" * 32
        forged = TearOff(
            leaf_count=tear.leaf_count, visible=tear.visible, hidden=hidden
        )
        assert not forged.verify(tree.root)

    def test_moving_leaf_between_positions_fails(self, tree, values):
        tear = tree.tear_off({0, 1})
        swapped = TearOff(
            leaf_count=tear.leaf_count,
            visible={0: values[1], 1: values[0]},
            hidden=tear.hidden,
        )
        assert not swapped.verify(tree.root)

    def test_incomplete_coverage_rejected(self, tree):
        with pytest.raises(ProofError, match="every leaf"):
            TearOff(leaf_count=5, visible={0: "a"}, hidden={1: b"x" * 32})

    def test_out_of_range_reveal_rejected(self, tree):
        with pytest.raises(ProofError, match="out of range"):
            tree.tear_off({99})

    def test_disclosure_ratio(self, tree):
        assert tree.tear_off({0, 1}).disclosure_ratio() == pytest.approx(0.4)

    def test_wire_size_grows_with_disclosure(self):
        # Holds for leaves larger than the 32-byte digest they replace.
        tree = MerkleTree(["x" * 100, "y" * 100, "z" * 100, "w" * 100])
        small = tree.tear_off({0}).wire_size()
        large = tree.tear_off({0, 1, 2}).wire_size()
        assert large > small


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.text(max_size=20), min_size=1, max_size=16), st.data())
    def test_any_subset_tears_off_consistently(self, leaves, data):
        tree = MerkleTree(leaves)
        subset = data.draw(
            st.sets(st.integers(min_value=0, max_value=len(leaves) - 1))
        )
        tear = tree.tear_off(subset)
        assert tear.verify(tree.root)
        for index in subset:
            assert tear.visible[index] == leaves[index]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(), min_size=1, max_size=32))
    def test_all_inclusion_proofs_hold(self, leaves):
        tree = MerkleTree(leaves)
        for index, value in enumerate(leaves):
            assert tree.inclusion_proof(index).verify(value, tree.root)
