"""Schnorr signatures: correctness, tamper resistance, determinism."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SignatureError
from repro.crypto.signatures import Signature, SignatureScheme


@pytest.fixture
def keypair(scheme, rng):
    return scheme.keygen(rng)


class TestSignVerify:
    def test_valid_signature_verifies(self, scheme, keypair):
        sig = scheme.sign(keypair, b"message")
        assert scheme.verify(keypair.public, b"message", sig)

    def test_wrong_message_fails(self, scheme, keypair):
        sig = scheme.sign(keypair, b"message")
        assert not scheme.verify(keypair.public, b"other", sig)

    def test_wrong_key_fails(self, scheme, keypair, rng):
        other = scheme.keygen(rng)
        sig = scheme.sign(keypair, b"message")
        assert not scheme.verify(other.public, b"message", sig)

    def test_tampered_challenge_fails(self, scheme, keypair):
        sig = scheme.sign(keypair, b"message")
        bad = Signature(challenge=(sig.challenge + 1) % scheme.group.q,
                        response=sig.response)
        assert not scheme.verify(keypair.public, b"message", bad)

    def test_tampered_response_fails(self, scheme, keypair):
        sig = scheme.sign(keypair, b"message")
        bad = Signature(challenge=sig.challenge,
                        response=(sig.response + 1) % scheme.group.q)
        assert not scheme.verify(keypair.public, b"message", bad)

    def test_out_of_range_signature_rejected(self, scheme, keypair):
        bad = Signature(challenge=scheme.group.q, response=0)
        assert not scheme.verify(keypair.public, b"m", bad)

    def test_key_outside_subgroup_rejected(self, scheme, keypair):
        from repro.crypto.signatures import PublicKey

        sig = scheme.sign(keypair, b"m")
        # p-1 has order 2, not q: never a valid public key.
        assert not scheme.verify(PublicKey(y=scheme.group.p - 1), b"m", sig)

    def test_require_valid_raises(self, scheme, keypair):
        sig = scheme.sign(keypair, b"message")
        scheme.require_valid(keypair.public, b"message", sig)
        with pytest.raises(SignatureError):
            scheme.require_valid(keypair.public, b"other", sig)

    def test_empty_message(self, scheme, keypair):
        sig = scheme.sign(keypair, b"")
        assert scheme.verify(keypair.public, b"", sig)


class TestDeterminism:
    def test_signing_is_deterministic(self, scheme, keypair):
        assert scheme.sign(keypair, b"m") == scheme.sign(keypair, b"m")

    def test_nonce_differs_per_message(self, scheme, keypair):
        a = scheme.sign(keypair, b"m1")
        b = scheme.sign(keypair, b"m2")
        assert a != b

    def test_keygen_from_seed_stable(self, scheme):
        assert scheme.keygen_from_seed("alice").x == scheme.keygen_from_seed("alice").x

    def test_keygen_from_seed_distinct(self, scheme):
        assert scheme.keygen_from_seed("alice").x != scheme.keygen_from_seed("bob").x

    def test_fingerprint_stable_and_short(self, scheme, keypair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        assert len(keypair.public.fingerprint()) == 16


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=128))
    def test_sign_verify_round_trip(self, message):
        scheme = SignatureScheme()
        key = scheme.keygen_from_seed("prop")
        assert scheme.verify(key.public, message, scheme.sign(key, message))

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
    def test_cross_message_rejection(self, m1, m2):
        if m1 == m2:
            return
        scheme = SignatureScheme()
        key = scheme.keygen_from_seed("prop")
        assert not scheme.verify(key.public, m2, scheme.sign(key, m1))


class TestVerifyCache:
    def test_repeat_verification_hits_cache(self, scheme, keypair):
        sig = scheme.sign(keypair, b"message")
        assert scheme.verify(keypair.public, b"message", sig)
        before = scheme.cache_info()
        assert scheme.verify(keypair.public, b"message", sig)
        after = scheme.cache_info()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_negative_results_are_cached_too(self, scheme, keypair):
        sig = scheme.sign(keypair, b"message")
        assert not scheme.verify(keypair.public, b"other", sig)
        hits = scheme.cache_info()["hits"]
        assert not scheme.verify(keypair.public, b"other", sig)
        assert scheme.cache_info()["hits"] == hits + 1

    def test_forged_signature_cannot_alias_cached_true(self, scheme, keypair):
        """The full signature is in the cache key: warming the cache with
        the genuine signature must not make a tampered one pass."""
        sig = scheme.sign(keypair, b"message")
        assert scheme.verify(keypair.public, b"message", sig)
        forged = Signature(challenge=sig.challenge,
                           response=(sig.response + 1) % scheme.group.q)
        assert not scheme.verify(keypair.public, b"message", forged)

    def test_other_key_cannot_alias_cached_true(self, scheme, keypair, rng):
        sig = scheme.sign(keypair, b"message")
        assert scheme.verify(keypair.public, b"message", sig)
        other = scheme.keygen(rng)
        assert not scheme.verify(other.public, b"message", sig)

    def test_reset_cache_zeroes_counters(self, scheme, keypair):
        sig = scheme.sign(keypair, b"message")
        scheme.verify(keypair.public, b"message", sig)
        scheme.verify(keypair.public, b"message", sig)
        scheme.reset_cache()
        assert scheme.cache_info() == {"hits": 0, "misses": 0, "size": 0}
        # Next verification is a miss again, and still correct.
        assert scheme.verify(keypair.public, b"message", sig)
        assert scheme.cache_info()["misses"] == 1

    def test_eviction_keeps_cache_bounded(self, scheme, keypair, monkeypatch):
        import repro.crypto.signatures as signatures_module

        monkeypatch.setattr(signatures_module, "VERIFY_CACHE_MAX", 8)
        for n in range(25):
            message = f"m{n}".encode()
            scheme.verify(keypair.public, message, scheme.sign(keypair, message))
        assert scheme.cache_info()["size"] <= 8
        # Entries that survived (or are re-inserted) still verify correctly.
        sig = scheme.sign(keypair, b"m24")
        assert scheme.verify(keypair.public, b"m24", sig)
