"""PKI: issuance, verification, revocation, expiry, membership."""

from __future__ import annotations

import pytest

from repro.common.clock import SimClock
from repro.common.errors import CertificateError
from repro.crypto.pki import (
    Certificate,
    CertificateAuthority,
    MembershipService,
    make_identity,
)


@pytest.fixture
def ca(scheme, clock):
    return CertificateAuthority("TestCA", scheme, clock)


@pytest.fixture
def identity(ca, scheme):
    return make_identity("alice", ca, scheme, attributes={"org": "BankA"})


class TestIssuance:
    def test_issue_and_verify(self, ca, identity):
        __, cert = identity
        ca.verify(cert)

    def test_subject_and_issuer_recorded(self, ca, identity):
        __, cert = identity
        assert cert.subject == "alice"
        assert cert.issuer == "TestCA"

    def test_attributes_carried(self, ca, identity):
        __, cert = identity
        assert cert.attributes == {"org": "BankA"}

    def test_serials_increment(self, ca, scheme):
        __, c1 = make_identity("a", ca, scheme)
        __, c2 = make_identity("b", ca, scheme)
        assert c2.serial == c1.serial + 1

    def test_public_key_embedded(self, ca, scheme):
        key, cert = make_identity("a", ca, scheme)
        assert cert.public_key.y == key.public.y


class TestVerification:
    def test_unsigned_rejected(self, ca, identity):
        __, cert = identity
        unsigned = Certificate(**{**cert.__dict__, "signature": None})
        with pytest.raises(CertificateError, match="unsigned"):
            ca.verify(unsigned)

    def test_wrong_issuer_rejected(self, ca, identity):
        __, cert = identity
        forged = Certificate(**{**cert.__dict__, "issuer": "EvilCA"})
        with pytest.raises(CertificateError, match="issued by"):
            ca.verify(forged)

    def test_tampered_subject_rejected(self, ca, identity):
        __, cert = identity
        forged = Certificate(**{**cert.__dict__, "subject": "mallory"})
        with pytest.raises(CertificateError, match="signature invalid"):
            ca.verify(forged)

    def test_expired_rejected(self, ca, identity, clock):
        __, cert = identity
        clock.advance(ca.DEFAULT_VALIDITY + 1)
        with pytest.raises(CertificateError, match="validity"):
            ca.verify(cert)

    def test_at_parameter(self, ca, identity):
        __, cert = identity
        ca.verify(cert, at=cert.not_after)
        with pytest.raises(CertificateError):
            ca.verify(cert, at=cert.not_after + 1)

    def test_is_valid_boolean(self, ca, identity):
        __, cert = identity
        assert ca.is_valid(cert)
        forged = Certificate(**{**cert.__dict__, "subject": "x"})
        assert not ca.is_valid(forged)


class TestRevocation:
    def test_revoked_cert_rejected(self, ca, identity):
        __, cert = identity
        ca.revoke(cert.serial)
        assert ca.is_revoked(cert.serial)
        with pytest.raises(CertificateError, match="revoked"):
            ca.verify(cert)

    def test_revoking_unknown_serial_rejected(self, ca):
        with pytest.raises(CertificateError, match="unknown serial"):
            ca.revoke(9999)

    def test_revocation_is_per_serial(self, ca, scheme):
        __, c1 = make_identity("a", ca, scheme)
        __, c2 = make_identity("b", ca, scheme)
        ca.revoke(c1.serial)
        ca.verify(c2)


class TestLinkingCertificates:
    def test_linking_certificate_attributes(self, ca, scheme, identity):
        __, root_cert = identity
        one_time = scheme.keygen_from_seed("one-time")
        linking = ca.issue_linking_certificate(root_cert, one_time.public)
        assert linking.attributes["linking"] is True
        assert linking.attributes["root_serial"] == root_cert.serial
        assert linking.attributes["root_key_y"] == root_cert.public_key_y
        ca.verify(linking)


class TestMembershipService:
    def test_enroll_and_lookup(self, ca, identity):
        __, cert = identity
        service = MembershipService()
        service.register_authority(ca)
        service.enroll(cert)
        assert service.certificate_of("alice") is cert
        assert service.members() == ["alice"]

    def test_enroll_unknown_issuer_rejected(self, identity):
        __, cert = identity
        service = MembershipService()
        with pytest.raises(CertificateError, match="unknown issuer"):
            service.enroll(cert)

    def test_unenrolled_lookup_rejected(self, ca):
        service = MembershipService()
        service.register_authority(ca)
        with pytest.raises(CertificateError, match="not an enrolled member"):
            service.certificate_of("nobody")

    def test_hidden_global_list(self, ca, identity):
        __, cert = identity
        service = MembershipService(expose_global_list=False)
        service.register_authority(ca)
        service.enroll(cert)
        with pytest.raises(CertificateError, match="hides the global list"):
            service.members()
        # Direct lookup still works — only the list is hidden.
        assert service.certificate_of("alice") is cert

    def test_verify_member_signature(self, ca, scheme, identity):
        key, cert = identity
        service = MembershipService()
        service.register_authority(ca)
        service.enroll(cert)
        sig = scheme.sign(key, b"msg")
        assert service.verify_member_signature(scheme, "alice", b"msg", sig)
        assert not service.verify_member_signature(scheme, "alice", b"other", sig)


class TestChainCache:
    def test_repeat_verification_hits_cache(self, ca, identity):
        __, cert = identity
        ca.verify(cert)
        before = ca.cache_info()
        ca.verify(cert)
        after = ca.cache_info()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_expiry_still_enforced_after_cache_warm(self, ca, identity, clock):
        """Only the issuer-signature check is memoized: the validity
        window is evaluated live on every call."""
        __, cert = identity
        ca.verify(cert)  # warm the chain cache
        clock.advance(cert.not_after + 1.0)
        with pytest.raises(CertificateError, match="expired|valid"):
            ca.verify(cert)

    def test_revocation_still_enforced_after_cache_warm(self, ca, identity):
        __, cert = identity
        ca.verify(cert)  # warm the chain cache
        ca.revoke(cert.serial)
        with pytest.raises(CertificateError, match="revoked"):
            ca.verify(cert)

    def test_tampered_cert_misses_cached_true(self, ca, identity):
        from dataclasses import replace

        __, cert = identity
        ca.verify(cert)
        tampered = replace(cert, subject="mallory")
        with pytest.raises(CertificateError):
            ca.verify(tampered)

    def test_reset_cache(self, ca, identity):
        __, cert = identity
        ca.verify(cert)
        ca.verify(cert)
        ca.reset_cache()
        assert ca.cache_info() == {"hits": 0, "misses": 0, "size": 0}
        ca.verify(cert)
        assert ca.cache_info()["misses"] == 1
