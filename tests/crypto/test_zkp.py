"""Zero-knowledge proofs: Schnorr id, dlog equality, range, funds."""

from __future__ import annotations

import pytest

from repro.common.errors import ProofError
from repro.common.rng import DeterministicRNG
from repro.crypto.commitments import Opening, PedersenScheme
from repro.crypto.zkp import (
    ChaumPedersen,
    DlogProof,
    RangeProver,
    SchnorrIdentification,
    prove_sufficient_funds,
    verify_sufficient_funds,
)


@pytest.fixture
def ident(group):
    return SchnorrIdentification(group)


@pytest.fixture
def keypair(scheme, rng):
    return scheme.keygen(rng)


class TestInteractiveSchnorr:
    def test_three_move_protocol(self, ident, keypair, rng):
        nonce, commitment = ident.commit(rng)
        challenge = ident.challenge(rng)
        response = ident.respond(keypair, nonce, challenge)
        assert ident.check(keypair.public, commitment, challenge, response)

    def test_wrong_secret_fails(self, ident, keypair, scheme, rng):
        other = scheme.keygen(rng)
        nonce, commitment = ident.commit(rng)
        challenge = ident.challenge(rng)
        response = ident.respond(other, nonce, challenge)
        assert not ident.check(keypair.public, commitment, challenge, response)


class TestFiatShamir:
    def test_prove_verify(self, ident, keypair, rng):
        proof = ident.prove(keypair, b"context", rng)
        assert ident.verify(keypair.public, proof)

    def test_wrong_key_fails(self, ident, keypair, scheme, rng):
        other = scheme.keygen(rng)
        proof = ident.prove(keypair, b"context", rng)
        assert not ident.verify(other.public, proof)

    def test_context_binding(self, ident, keypair, rng):
        proof = ident.prove(keypair, b"tx-1", rng)
        replayed = DlogProof(
            commitment=proof.commitment,
            response=proof.response,
            context=b"tx-2",
        )
        assert not ident.verify(keypair.public, replayed)

    def test_tampered_response_fails(self, ident, keypair, rng):
        proof = ident.prove(keypair, b"c", rng)
        bad = DlogProof(
            commitment=proof.commitment,
            response=(proof.response + 1) % ident.group.q,
            context=proof.context,
        )
        assert not ident.verify(keypair.public, bad)

    def test_proofs_are_randomized(self, ident, keypair, rng):
        p1 = ident.prove(keypair, b"c", rng)
        p2 = ident.prove(keypair, b"c", rng)
        assert p1.commitment != p2.commitment


class TestChaumPedersen:
    def test_equality_proof(self, group, rng):
        cp = ChaumPedersen(group)
        secret = group.random_scalar(rng)
        base2 = group.hash_to_element("base", b"2")
        y1 = group.exp(group.g, secret)
        y2 = group.exp(base2, secret)
        proof = cp.prove(secret, base2, b"ctx", rng)
        assert cp.verify(y1, y2, base2, proof)

    def test_unequal_exponents_fail(self, group, rng):
        cp = ChaumPedersen(group)
        secret = group.random_scalar(rng)
        base2 = group.hash_to_element("base", b"2")
        y1 = group.exp(group.g, secret)
        y2 = group.exp(base2, secret + 1)
        proof = cp.prove(secret, base2, b"ctx", rng)
        assert not cp.verify(y1, y2, base2, proof)


class TestRangeProofs:
    @pytest.fixture
    def prover(self, group):
        return RangeProver(group)

    @pytest.fixture
    def pedersen(self, prover):
        return PedersenScheme(prover.group)

    def test_valid_range_proof(self, prover, pedersen, rng):
        commitment, opening = pedersen.commit(100, rng)
        proof = prover.prove_range(100, opening, 8, b"ctx", rng)
        assert prover.verify_range(commitment, proof, b"ctx")

    def test_boundary_values(self, prover, pedersen, rng):
        for value in (0, 1, 254, 255):
            commitment, opening = pedersen.commit(value, rng)
            proof = prover.prove_range(value, opening, 8, b"ctx", rng)
            assert prover.verify_range(commitment, proof, b"ctx")

    def test_value_outside_range_rejected_at_prove(self, prover, pedersen, rng):
        commitment, opening = pedersen.commit(256, rng)
        with pytest.raises(ProofError, match="outside"):
            prover.prove_range(256, opening, 8, b"ctx", rng)

    def test_mismatched_opening_rejected(self, prover, pedersen, rng):
        __, opening = pedersen.commit(5, rng)
        with pytest.raises(ProofError, match="does not match"):
            prover.prove_range(6, opening, 8, b"ctx", rng)

    def test_proof_bound_to_commitment(self, prover, pedersen, rng):
        __, opening = pedersen.commit(100, rng)
        other_commitment, __ = pedersen.commit(100, rng)
        proof = prover.prove_range(100, opening, 8, b"ctx", rng)
        assert not prover.verify_range(other_commitment, proof, b"ctx")

    def test_proof_bound_to_context(self, prover, pedersen, rng):
        commitment, opening = pedersen.commit(100, rng)
        proof = prover.prove_range(100, opening, 8, b"tx-1", rng)
        assert not prover.verify_range(commitment, proof, b"tx-2")

    def test_wire_size_linear_in_bits(self, prover, pedersen, rng):
        commitment, opening = pedersen.commit(3, rng)
        p4 = prover.prove_range(3, opening, 4, b"c", rng)
        p8 = prover.prove_range(3, opening, 8, b"c", rng)
        assert p8.wire_size() > p4.wire_size()


class TestSufficientFunds:
    @pytest.fixture
    def prover(self, group):
        return RangeProver(group)

    @pytest.fixture
    def pedersen(self, prover):
        return PedersenScheme(prover.group)

    def test_funds_proof_verifies(self, prover, pedersen, rng):
        commitment, opening = pedersen.commit(1000, rng)
        proof = prove_sufficient_funds(prover, 1000, opening, 750, 10, b"tx", rng)
        assert verify_sufficient_funds(prover, commitment, proof, b"tx")

    def test_exact_threshold(self, prover, pedersen, rng):
        commitment, opening = pedersen.commit(750, rng)
        proof = prove_sufficient_funds(prover, 750, opening, 750, 10, b"tx", rng)
        assert verify_sufficient_funds(prover, commitment, proof, b"tx")

    def test_insufficient_funds_cannot_prove(self, prover, pedersen, rng):
        __, opening = pedersen.commit(100, rng)
        with pytest.raises(ProofError, match="balance below threshold"):
            prove_sufficient_funds(prover, 100, opening, 750, 10, b"tx", rng)

    def test_proof_does_not_reveal_balance(self, prover, pedersen, rng):
        # Two different balances above the same threshold yield proofs the
        # verifier accepts equally — the proof is a boolean affirmation.
        c1, o1 = pedersen.commit(800, rng)
        c2, o2 = pedersen.commit(9999, rng)
        p1 = prove_sufficient_funds(prover, 800, o1, 750, 14, b"tx", rng)
        p2 = prove_sufficient_funds(prover, 9999, o2, 750, 14, b"tx", rng)
        assert verify_sufficient_funds(prover, c1, p1, b"tx")
        assert verify_sufficient_funds(prover, c2, p2, b"tx")

    def test_proof_rejected_against_other_balance(self, prover, pedersen, rng):
        commitment, opening = pedersen.commit(1000, rng)
        other_commitment, __ = pedersen.commit(1000, rng)
        proof = prove_sufficient_funds(prover, 1000, opening, 750, 10, b"tx", rng)
        assert not verify_sufficient_funds(prover, other_commitment, proof, b"tx")
