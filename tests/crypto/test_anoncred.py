"""Anonymous credentials: issuance policy, verification, unlinkability."""

from __future__ import annotations

import pytest

from repro.common.errors import MembershipError, ProofError
from repro.crypto.anoncred import (
    CredentialHolder,
    CredentialIssuer,
    Presentation,
    verify_presentation,
)


@pytest.fixture
def issuer():
    issuer = CredentialIssuer("test-msp")
    issuer.enroll("alice", {"org": "BankA", "role": "trader"})
    issuer.enroll("bob", {"org": "BankB", "role": "auditor"})
    return issuer


@pytest.fixture
def alice(issuer):
    return CredentialHolder("alice", issuer)


class TestIssuancePolicy:
    def test_satisfying_template_issued(self, issuer, alice):
        presentation = alice.obtain_presentation({"org": "BankA"})
        assert verify_presentation(issuer, presentation)

    def test_non_satisfying_template_refused(self, issuer, alice):
        with pytest.raises(MembershipError):
            alice.obtain_presentation({"org": "BankB"})

    def test_unenrolled_holder_refused(self, issuer):
        mallory = CredentialHolder("mallory", issuer)
        with pytest.raises(MembershipError):
            mallory.obtain_presentation({"org": "BankA"})

    def test_multi_attribute_template(self, issuer, alice):
        presentation = alice.obtain_presentation(
            {"org": "BankA", "role": "trader"}
        )
        assert verify_presentation(issuer, presentation)

    def test_session_cannot_be_reused(self, issuer):
        session_id, __ = issuer.begin_issuance("alice", {"org": "BankA"})
        issuer.finish_issuance(session_id, 12345)
        with pytest.raises(ProofError, match="completed"):
            issuer.finish_issuance(session_id, 12345)

    def test_unknown_session_rejected(self, issuer):
        with pytest.raises(ProofError, match="unknown"):
            issuer.finish_issuance(999, 1)


class TestVerification:
    def test_disclosed_attributes_visible_to_verifier(self, issuer, alice):
        presentation = alice.obtain_presentation({"org": "BankA"})
        assert presentation.disclosed == {"org": "BankA"}

    def test_undisclosed_attributes_absent(self, issuer, alice):
        presentation = alice.obtain_presentation({"org": "BankA"})
        assert "role" not in presentation.disclosed

    def test_identity_absent_from_presentation(self, issuer, alice):
        presentation = alice.obtain_presentation({"org": "BankA"})
        # Nothing in the token names the holder.
        assert "alice" not in str(presentation.disclosed)
        assert b"alice" not in presentation.nonce

    def test_forged_attributes_rejected(self, issuer, alice):
        presentation = alice.obtain_presentation({"org": "BankA"})
        forged = Presentation(
            disclosed={"org": "BankB"},
            nonce=presentation.nonce,
            commitment=presentation.commitment,
            response=presentation.response,
        )
        assert not verify_presentation(issuer, forged)

    def test_tampered_nonce_rejected(self, issuer, alice):
        presentation = alice.obtain_presentation({"org": "BankA"})
        forged = Presentation(
            disclosed=presentation.disclosed,
            nonce=b"\x00" * 16,
            commitment=presentation.commitment,
            response=presentation.response,
        )
        assert not verify_presentation(issuer, forged)

    def test_wrong_issuer_rejected(self, alice, issuer):
        other = CredentialIssuer("other-msp")
        presentation = alice.obtain_presentation({"org": "BankA"})
        assert not verify_presentation(other, presentation)

    def test_verification_by_key_only(self, issuer, alice):
        # A verifier holding only the issuer's public material can verify.
        presentation = alice.obtain_presentation({"org": "BankA"})
        template_key = issuer.template_public_key(presentation.disclosed)
        assert verify_presentation(
            issuer.public_key, presentation,
            group=issuer.group, template_key=template_key,
        )

    def test_verification_requires_keys(self, issuer, alice):
        presentation = alice.obtain_presentation({"org": "BankA"})
        with pytest.raises(ProofError):
            verify_presentation(issuer.public_key, presentation)


class TestUnlinkability:
    def test_presentations_share_no_values(self, issuer, alice):
        p1 = alice.obtain_presentation({"org": "BankA"})
        p2 = alice.obtain_presentation({"org": "BankA"})
        assert p1.nonce != p2.nonce
        assert p1.commitment != p2.commitment
        assert p1.response != p2.response

    def test_two_holders_indistinguishable_by_structure(self, issuer):
        issuer.enroll("carol", {"org": "BankA", "role": "trader"})
        alice = CredentialHolder("alice", issuer)
        carol = CredentialHolder("carol", issuer)
        pa = alice.obtain_presentation({"org": "BankA"})
        pc = carol.obtain_presentation({"org": "BankA"})
        # Same disclosed template, both verify, nothing else to compare.
        assert pa.disclosed == pc.disclosed
        assert verify_presentation(issuer, pa)
        assert verify_presentation(issuer, pc)


class TestRevocation:
    def test_revoked_holder_refused_new_tokens(self, issuer, alice):
        alice.obtain_presentation({"org": "BankA"})
        issuer.revoke("alice")
        assert issuer.is_revoked("alice")
        with pytest.raises(MembershipError):
            alice.obtain_presentation({"org": "BankA"})

    def test_existing_tokens_remain_valid(self, issuer, alice):
        """The scheme's honest limitation: unlinkable tokens cannot be
        recalled — only fresh issuance stops."""
        presentation = alice.obtain_presentation({"org": "BankA"})
        issuer.revoke("alice")
        assert verify_presentation(issuer, presentation)

    def test_revoking_unknown_identity_rejected(self, issuer):
        with pytest.raises(MembershipError, match="not enrolled"):
            issuer.revoke("nobody")

    def test_reenrollment_clears_revocation(self, issuer, alice):
        issuer.revoke("alice")
        issuer.enroll("alice", {"org": "BankA", "role": "trader"})
        assert not issuer.is_revoked("alice")
        presentation = alice.obtain_presentation({"org": "BankA"})
        assert verify_presentation(issuer, presentation)

    def test_revocation_is_per_identity(self, issuer):
        issuer.revoke("alice")
        bob = CredentialHolder("bob", issuer)
        presentation = bob.obtain_presentation({"org": "BankB"})
        assert verify_presentation(issuer, presentation)
