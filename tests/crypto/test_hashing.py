"""Hashing, HKDF, domain separation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashing import (
    constant_time_equal,
    hash_hex,
    hash_value,
    hkdf,
    hmac_sha256,
    sha256,
    tagged_hash,
)


class TestTaggedHash:
    def test_deterministic(self):
        assert tagged_hash("t", b"data") == tagged_hash("t", b"data")

    def test_domain_separation(self):
        assert tagged_hash("a", b"data") != tagged_hash("b", b"data")

    def test_differs_from_plain_sha256(self):
        assert tagged_hash("t", b"data") != sha256(b"data")

    def test_digest_size(self):
        assert len(tagged_hash("t", b"")) == 32

    @given(st.binary(max_size=256), st.binary(max_size=256))
    def test_no_cross_tag_collisions_observed(self, a, b):
        # Different tags never produce the same digest for the same data.
        assert tagged_hash("tag1", a) != tagged_hash("tag2", a)
        if a != b:
            assert tagged_hash("tag1", a) != tagged_hash("tag1", b)


class TestHashValue:
    def test_structured_values(self):
        assert hash_value("t", {"a": [1, 2]}) == hash_value("t", {"a": [1, 2]})

    def test_dict_order_irrelevant(self):
        assert hash_value("t", {"a": 1, "b": 2}) == hash_value("t", {"b": 2, "a": 1})

    def test_hash_hex_matches_hash_value(self):
        assert hash_hex("t", 42) == hash_value("t", 42).hex()


class TestHkdf:
    def test_deterministic(self):
        assert hkdf(b"ikm", "info") == hkdf(b"ikm", "info")

    def test_info_separates(self):
        assert hkdf(b"ikm", "enc") != hkdf(b"ikm", "mac")

    def test_length(self):
        for length in (16, 32, 33, 64, 100):
            assert len(hkdf(b"ikm", "info", length)) == length

    def test_long_output_prefix_consistent(self):
        assert hkdf(b"ikm", "info", 64)[:32] == hkdf(b"ikm", "info", 32)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            hkdf(b"ikm", "info", 0)
        with pytest.raises(ValueError):
            hkdf(b"ikm", "info", 255 * 32 + 1)


class TestHmacAndComparison:
    def test_hmac_deterministic(self):
        assert hmac_sha256(b"k", b"m") == hmac_sha256(b"k", b"m")

    def test_hmac_key_matters(self):
        assert hmac_sha256(b"k1", b"m") != hmac_sha256(b"k2", b"m")

    def test_constant_time_equal(self):
        assert constant_time_equal(b"abc", b"abc")
        assert not constant_time_equal(b"abc", b"abd")
        assert not constant_time_equal(b"abc", b"abcd")
