"""Paillier: round trips, homomorphic addition, the deliberate limits."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CryptoError
from repro.common.rng import DeterministicRNG
from repro.crypto.paillier import Paillier


@pytest.fixture(scope="module")
def paillier():
    return Paillier(bits=256)


@pytest.fixture(scope="module")
def keys(paillier):
    return paillier.keygen(DeterministicRNG("paillier-test"))


class TestEncryptDecrypt:
    def test_round_trip(self, paillier, keys):
        rng = DeterministicRNG("enc")
        ct = paillier.encrypt(keys.public, 123456, rng)
        assert paillier.decrypt(keys, ct) == 123456

    def test_zero(self, paillier, keys):
        rng = DeterministicRNG("enc0")
        assert paillier.decrypt(keys, paillier.encrypt(keys.public, 0, rng)) == 0

    def test_probabilistic_encryption(self, paillier, keys):
        rng = DeterministicRNG("enc2")
        a = paillier.encrypt(keys.public, 42, rng)
        b = paillier.encrypt(keys.public, 42, rng)
        assert a.value != b.value
        assert paillier.decrypt(keys, a) == paillier.decrypt(keys, b) == 42

    def test_plaintext_out_of_range(self, paillier, keys):
        rng = DeterministicRNG("enc3")
        with pytest.raises(CryptoError, match="outside"):
            paillier.encrypt(keys.public, keys.public.n, rng)
        with pytest.raises(CryptoError, match="outside"):
            paillier.encrypt(keys.public, -1, rng)

    def test_wrong_key_decrypt_rejected(self, paillier, keys):
        rng = DeterministicRNG("enc4")
        other = paillier.keygen(DeterministicRNG("other-key"))
        ct = paillier.encrypt(keys.public, 5, rng)
        with pytest.raises(CryptoError, match="different key"):
            paillier.decrypt(other, ct)

    def test_modulus_too_small_rejected(self):
        with pytest.raises(CryptoError):
            Paillier(bits=32)


class TestHomomorphism:
    def test_add(self, paillier, keys):
        rng = DeterministicRNG("hom")
        a = paillier.encrypt(keys.public, 20, rng)
        b = paillier.encrypt(keys.public, 22, rng)
        assert paillier.decrypt(keys, paillier.add(keys.public, a, b)) == 42

    def test_add_plain(self, paillier, keys):
        rng = DeterministicRNG("hom2")
        a = paillier.encrypt(keys.public, 40, rng)
        assert paillier.decrypt(keys, paillier.add_plain(keys.public, a, 2)) == 42

    def test_scalar_mul(self, paillier, keys):
        rng = DeterministicRNG("hom3")
        a = paillier.encrypt(keys.public, 21, rng)
        assert paillier.decrypt(keys, paillier.scalar_mul(keys.public, a, 2)) == 42

    def test_addition_wraps_mod_n(self, paillier, keys):
        rng = DeterministicRNG("hom4")
        n = keys.public.n
        a = paillier.encrypt(keys.public, n - 1, rng)
        b = paillier.encrypt(keys.public, 2, rng)
        assert paillier.decrypt(keys, paillier.add(keys.public, a, b)) == 1

    def test_mixed_keys_rejected(self, paillier, keys):
        rng = DeterministicRNG("hom5")
        other = paillier.keygen(DeterministicRNG("other-key-2"))
        a = paillier.encrypt(keys.public, 1, rng)
        b = paillier.encrypt(other.public, 1, rng)
        with pytest.raises(CryptoError, match="different keys"):
            paillier.add(keys.public, a, b)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**12),
           st.integers(min_value=0, max_value=10**12))
    def test_additive_property(self, paillier, keys, x, y):
        rng = DeterministicRNG(f"prop-{x}-{y}")
        cx = paillier.encrypt(keys.public, x, rng)
        cy = paillier.encrypt(keys.public, y, rng)
        assert paillier.decrypt(keys, paillier.add(keys.public, cx, cy)) == (
            (x + y) % keys.public.n
        )


class TestDeliberateLimits:
    def test_ciphertext_multiplication_unsupported(self, paillier, keys):
        """The paper's maturity caveat, encoded as an API refusal."""
        rng = DeterministicRNG("lim")
        a = paillier.encrypt(keys.public, 2, rng)
        b = paillier.encrypt(keys.public, 3, rng)
        with pytest.raises(CryptoError, match="limited set of operations|only addition"):
            paillier.multiply(a, b)
