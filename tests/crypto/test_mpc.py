"""MPC: correctness, privacy structure, cheating detection, ballots."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import MPCError
from repro.common.rng import DeterministicRNG
from repro.crypto.mpc import (
    AdditiveSharingProtocol,
    secret_ballot,
    secure_mean,
    secure_sum,
)


class TestSecureSum:
    def test_two_parties(self):
        total, __ = secure_sum({"a": 5, "b": 7})
        assert total == 12

    def test_many_parties(self):
        inputs = {f"p{i}": i for i in range(10)}
        total, __ = secure_sum(inputs)
        assert total == sum(range(10))

    def test_zero_inputs(self):
        total, __ = secure_sum({"a": 0, "b": 0, "c": 0})
        assert total == 0

    def test_single_party_rejected(self):
        with pytest.raises(MPCError, match="at least two"):
            secure_sum({"a": 5})

    def test_stats_accounting(self):
        __, stats = secure_sum({"a": 1, "b": 2, "c": 3})
        assert stats.rounds == 3
        # share phase: n^2 messages; combine phase: n(n-1) broadcasts.
        assert stats.messages == 9 + 6

    def test_mean(self):
        mean, __ = secure_mean({"a": 10, "b": 20, "c": 30})
        assert mean == pytest.approx(20.0)

    @settings(max_examples=25, deadline=None)
    @given(st.dictionaries(
        st.sampled_from([f"org{i}" for i in range(6)]),
        st.integers(min_value=0, max_value=10**9),
        min_size=2,
    ))
    def test_sum_property(self, inputs):
        total, __ = secure_sum(inputs)
        assert total == sum(inputs.values())


class TestProtocolStructure:
    def _protocol(self, inputs):
        protocol = AdditiveSharingProtocol(sorted(inputs))
        for party, value in inputs.items():
            protocol.set_input(party, value)
        return protocol

    def test_shares_do_not_reveal_secret(self):
        protocol = self._protocol({"a": 1000, "b": 2, "c": 3})
        protocol.run_share_phase()
        # Any single received share from 'a' differs from the secret with
        # overwhelming probability; all must sum to the secret mod q.
        state = protocol._parties["a"]
        total = sum(state.outgoing_shares.values()) % protocol.group.q
        assert total == 1000

    def test_partial_sums_do_not_equal_any_secret(self):
        protocol = self._protocol({"a": 10, "b": 20, "c": 30})
        protocol.run_share_phase()
        partials = protocol.run_combine_phase()
        assert protocol.run_reconstruct_phase(partials) == 60

    def test_missing_input_rejected(self):
        protocol = AdditiveSharingProtocol(["a", "b"])
        protocol.set_input("a", 1)
        with pytest.raises(MPCError, match="missing inputs"):
            protocol.run_share_phase()

    def test_unknown_party_rejected(self):
        protocol = AdditiveSharingProtocol(["a", "b"])
        with pytest.raises(MPCError, match="unknown party"):
            protocol.set_input("z", 1)

    def test_input_outside_field_rejected(self):
        protocol = AdditiveSharingProtocol(["a", "b"])
        with pytest.raises(MPCError, match="outside"):
            protocol.set_input("a", -1)
        with pytest.raises(MPCError, match="outside"):
            protocol.set_input("a", protocol.group.q)

    def test_duplicate_names_rejected(self):
        with pytest.raises(MPCError, match="unique"):
            AdditiveSharingProtocol(["a", "a"])


class TestCheatingDetection:
    def test_corrupted_share_aborts(self):
        protocol = AdditiveSharingProtocol(["a", "b", "c"])
        for party, value in {"a": 5, "b": 6, "c": 7}.items():
            protocol.set_input(party, value)
        protocol.run_share_phase()
        protocol.corrupt_share("a", "b", delta=3)
        partials = protocol.run_combine_phase()
        with pytest.raises(MPCError, match="aborted"):
            protocol.run_reconstruct_phase(partials)

    def test_uncorrupted_run_completes(self):
        protocol = AdditiveSharingProtocol(["a", "b", "c"])
        for party, value in {"a": 5, "b": 6, "c": 7}.items():
            protocol.set_input(party, value)
        assert protocol.run() == 18


class TestSecretBallot:
    def test_unanimous_yes(self):
        result, __ = secret_ballot({"a": True, "b": True, "c": True})
        assert result == {"yes": 3, "no": 0, "passed": True}

    def test_motion_fails(self):
        result, __ = secret_ballot({"a": False, "b": False, "c": True})
        assert result == {"yes": 1, "no": 2, "passed": False}

    def test_tie_does_not_pass(self):
        result, __ = secret_ballot({"a": True, "b": False})
        assert result["passed"] is False

    @settings(max_examples=25, deadline=None)
    @given(st.dictionaries(
        st.sampled_from([f"v{i}" for i in range(7)]),
        st.booleans(),
        min_size=2,
    ))
    def test_tally_matches_votes(self, votes):
        result, __ = secret_ballot(votes)
        assert result["yes"] == sum(votes.values())
        assert result["no"] == len(votes) - sum(votes.values())
