"""Pedersen commitments: hiding, binding (computational), homomorphism."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ProofError
from repro.common.rng import DeterministicRNG
from repro.crypto.commitments import Opening, PedersenScheme


@pytest.fixture
def pedersen(group):
    return PedersenScheme(group)


class TestCommitOpen:
    def test_commit_verifies_with_opening(self, pedersen, rng):
        commitment, opening = pedersen.commit(42, rng)
        assert pedersen.verify(commitment, opening)

    def test_wrong_value_fails(self, pedersen, rng):
        commitment, opening = pedersen.commit(42, rng)
        bad = Opening(value=43, blinding=opening.blinding)
        assert not pedersen.verify(commitment, bad)

    def test_wrong_blinding_fails(self, pedersen, rng):
        commitment, opening = pedersen.commit(42, rng)
        bad = Opening(value=42, blinding=opening.blinding + 1)
        assert not pedersen.verify(commitment, bad)

    def test_require_valid_raises(self, pedersen, rng):
        commitment, opening = pedersen.commit(42, rng)
        pedersen.require_valid(commitment, opening)
        with pytest.raises(ProofError):
            pedersen.require_valid(commitment, Opening(1, 1))

    def test_hiding_same_value_distinct_commitments(self, pedersen, rng):
        c1, __ = pedersen.commit(42, rng)
        c2, __ = pedersen.commit(42, rng)
        assert c1.element != c2.element

    def test_zero_value(self, pedersen, rng):
        commitment, opening = pedersen.commit(0, rng)
        assert pedersen.verify(commitment, opening)

    def test_value_reduced_mod_q(self, pedersen, rng):
        commitment, opening = pedersen.commit_with(pedersen.group.q + 5, 7)
        assert opening.value == 5
        assert pedersen.verify(commitment, opening)


class TestHomomorphism:
    def test_addition(self, pedersen, rng):
        c1, o1 = pedersen.commit(10, rng)
        c2, o2 = pedersen.commit(32, rng)
        combined = pedersen.add(c1, c2)
        opening = pedersen.add_openings(o1, o2)
        assert opening.value == 42
        assert pedersen.verify(combined, opening)

    def test_scaling(self, pedersen, rng):
        commitment, opening = pedersen.commit(7, rng)
        scaled = pedersen.scale(commitment, 3)
        scaled_opening = Opening(
            value=(opening.value * 3) % pedersen.group.q,
            blinding=(opening.blinding * 3) % pedersen.group.q,
        )
        assert pedersen.verify(scaled, scaled_opening)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=0, max_value=10**6))
    def test_addition_property(self, a, b):
        pedersen = PedersenScheme()
        rng = DeterministicRNG(f"hom-{a}-{b}")
        ca, oa = pedersen.commit(a, rng)
        cb, ob = pedersen.commit(b, rng)
        assert pedersen.verify(pedersen.add(ca, cb), pedersen.add_openings(oa, ob))
