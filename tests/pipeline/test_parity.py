"""Pipeline parity: ``submit``/``submit_many`` vs the native entrypoints.

The unified pipeline must be a pure re-plumbing: for the same seeded
network and the same logical transactions, routing through
:meth:`Platform.submit` / :meth:`Platform.submit_many` has to produce
bit-identical committed state (state fingerprints), identical validity
outcomes, and identical observer knowledge (what every node and the
ordering principal learned) as calling each platform's own entrypoints —
on a clean network AND under an injected fault plan.
"""

from __future__ import annotations

import pytest

from repro.driver import build_scenario
from repro.faults import FaultPlan

PLATFORMS = ("fabric", "corda", "quorum")


def _fault_plan() -> FaultPlan:
    """Mild but real: global slowdown, a lossy uninvolved link, a crash."""
    return (
        FaultPlan()
        .slow_all(4.0, start=0.0, end=2.0)
        .set_link_loss("OrgD", "OrgE", 0.3)
        .crash_node("OrgE", start=0.0, end=0.5)
    )


def _native_submit_one(platform, request):
    """Replay *request* through the platform's own entrypoint."""
    name = platform.platform_name
    if name == "fabric":
        channel = platform.contract_channels[request.contract_id]
        return platform.invoke(
            channel, request.submitter, request.contract_id,
            request.function, dict(request.args),
            endorsers=request.options.get("endorsers"),
            collection_writes=request.private_args,
        )
    if name == "corda":
        builder = platform.flows[(request.contract_id, request.function)]
        return platform.run_flow(request.submitter, builder(platform, request))
    if request.private_for:
        return platform.send_private_transaction(
            request.submitter, request.contract_id, request.function,
            dict(request.args), private_for=list(request.private_for),
        )
    return platform.send_public_transaction(
        request.submitter, request.contract_id, request.function,
        dict(request.args),
    )


def _native_submit_batch(platform, requests):
    """Replay a whole batch the way each platform natively would."""
    if platform.platform_name == "fabric":
        # Endorse everything against one snapshot, then order per channel
        # — the raw propose/submit_batch loop the S1 benchmarks used.
        proposals = [
            (
                platform.contract_channels[request.contract_id],
                platform.propose(
                    platform.contract_channels[request.contract_id],
                    request.submitter, request.contract_id,
                    request.function, dict(request.args),
                    endorsers=request.options.get("endorsers"),
                    collection_writes=request.private_args,
                ),
            )
            for request in requests
        ]
        by_channel: dict[str, list] = {}
        for channel, proposal in proposals:
            by_channel.setdefault(channel, []).append(proposal)
        results = []
        for channel, channel_proposals in by_channel.items():
            results.extend(platform.submit_batch(
                channel, channel_proposals, force_cut=True
            ))
        return results
    return [_native_submit_one(platform, request) for request in requests]


def _observer_view(platform) -> dict:
    platform.network.run()  # drain in-flight gossip before reading
    return {
        node: platform.network.node(node).observer.knowledge()
        for node in platform.network.nodes()
    }


def _pair(platform_name: str, workload: str, ops: int, faulted: bool,
          seed: str, skew: float = 0.0):
    native = build_scenario(platform_name, workload, ops, skew=skew, seed=seed)
    piped = build_scenario(platform_name, workload, ops, skew=skew, seed=seed)
    if faulted:
        native.platform.inject_faults(_fault_plan())
        piped.platform.inject_faults(_fault_plan())
    assert native.requests == piped.requests
    return native, piped


@pytest.mark.parametrize("faulted", [False, True], ids=["clean", "faulted"])
@pytest.mark.parametrize("platform_name", PLATFORMS)
def test_single_submission_parity(platform_name, faulted):
    """submit() == the platform's own one-at-a-time entrypoint."""
    native, piped = _pair(
        platform_name, "trades", 8, faulted, seed="parity-single"
    )
    for request in native.requests:
        _native_submit_one(native.platform, request)
    for request in piped.requests:
        receipt = piped.platform.submit(request)
        assert receipt.committed
        assert receipt.platform == platform_name
    assert (
        piped.platform.state_fingerprint()
        == native.platform.state_fingerprint()
    )
    assert _observer_view(piped.platform) == _observer_view(native.platform)


@pytest.mark.parametrize("faulted", [False, True], ids=["clean", "faulted"])
@pytest.mark.parametrize("platform_name", PLATFORMS)
def test_batch_submission_parity(platform_name, faulted):
    """submit_many() == the native batch path, conflicts included."""
    native, piped = _pair(
        platform_name, "kv", 20, faulted, seed="parity-batch", skew=1.2
    )
    native_results = _native_submit_batch(native.platform, native.requests)
    receipts = piped.platform.submit_many(piped.requests, force_cut=True)
    assert len(receipts) == len(native_results) == 20
    if platform_name == "fabric":
        # Same snapshot, same Zipfian keys: the exact same transactions
        # must win and lose the MVCC race on both paths.
        assert [r.committed for r in receipts] == [
            result.valid for result in native_results
        ]
    else:
        assert all(r.committed for r in receipts)
    assert (
        piped.platform.state_fingerprint()
        == native.platform.state_fingerprint()
    )
    assert _observer_view(piped.platform) == _observer_view(native.platform)


@pytest.mark.parametrize("platform_name", PLATFORMS)
def test_loc_mix_parity_with_private_args(platform_name):
    """The LoC stage mix (PDC writes on Fabric) also fingerprint-matches."""
    native, piped = _pair(
        platform_name, "loc", 6, faulted=False, seed="parity-loc"
    )
    for request in native.requests:
        _native_submit_one(native.platform, request)
    for request in piped.requests:
        piped.platform.submit(request)
    assert (
        piped.platform.state_fingerprint()
        == native.platform.state_fingerprint()
    )


def test_fingerprint_sees_state_differences():
    """Sanity: the fingerprint is not a constant — extra tx changes it."""
    a = build_scenario("fabric", "kv", 4, seed="parity-diff")
    b = build_scenario("fabric", "kv", 4, seed="parity-diff")
    for request in a.requests:
        a.platform.submit(request)
    for request in b.requests[:-1]:
        b.platform.submit(request)
    assert a.platform.state_fingerprint() != b.platform.state_fingerprint()
