"""The unified submission API: receipts, rejections, cache counters.

Each platform keeps its own privacy architecture — the pipeline only
normalizes the submission lifecycle.  Requests that a platform cannot
express honestly (Table 1's "no" cells) are rejected loudly instead of
silently downgraded.
"""

from __future__ import annotations

import pytest

from repro.common.errors import (
    ContractError,
    MembershipError,
    PlatformError,
)
from repro.driver import kv_scenario, trade_scenario
from repro.platforms.base import TxRequest, rejection_receipt


def _request(**overrides) -> TxRequest:
    base = dict(
        submitter="OrgA", contract_id="kv-store", function="put",
        args={"key": "k", "value": 1},
    )
    base.update(overrides)
    return TxRequest(**base)


class TestReceipts:
    def test_fabric_receipt_carries_lifecycle(self):
        scenario = kv_scenario("fabric", 1, seed="api")
        receipt = scenario.platform.submit(scenario.requests[0])
        assert receipt.platform == "fabric"
        assert receipt.committed
        assert receipt.status == "committed"
        assert receipt.tx_id
        assert receipt.committed_at > receipt.submitted_at
        assert receipt.latency == pytest.approx(
            receipt.committed_at - receipt.submitted_at
        )
        assert receipt.result == scenario.requests[0].args["value"]
        assert receipt.info["channel"] == "kv-channel"

    def test_corda_receipt_references_output_states(self):
        scenario = kv_scenario("corda", 1, seed="api")
        receipt = scenario.platform.submit(scenario.requests[0])
        assert receipt.committed
        assert receipt.tx_id
        assert receipt.info["output_refs"] == [[receipt.tx_id, 0]]

    def test_quorum_receipt_distinguishes_private_path(self):
        scenario = trade_scenario("quorum", 4, confidential_fraction=1.0,
                                  seed="api")
        receipt = scenario.platform.submit(scenario.requests[0])
        assert receipt.committed
        assert receipt.info["kind"] == "private"
        assert scenario.requests[0].submitter in receipt.info["participants"]

    def test_pipeline_counters_track_submissions(self):
        scenario = kv_scenario("fabric", 3, seed="api-counters")
        for request in scenario.requests:
            scenario.platform.submit(request)
        counters = scenario.platform.telemetry.metrics.snapshot()["counters"]
        assert counters["pipeline.submitted{platform=fabric}"] == 3
        assert counters["pipeline.committed{platform=fabric}"] == 3
        assert "pipeline.failed{platform=fabric}" not in counters


class TestErrorPropagation:
    """submit() raises exactly what the native entrypoint would."""

    def test_unknown_submitter_raises_membership_error(self):
        scenario = kv_scenario("fabric", 1, seed="api-err")
        with pytest.raises(MembershipError):
            scenario.platform.submit(_request(submitter="Mallory"))

    def test_unknown_function_raises_contract_error(self):
        scenario = kv_scenario("quorum", 1, seed="api-err")
        with pytest.raises(ContractError):
            scenario.platform.submit(_request(function="missing"))

    def test_fabric_mvcc_loser_surfaces_in_receipt(self):
        """Conflicting read-modify-writes in one in-flight batch: the
        loser's receipt carries the validation code, not 'committed'."""
        from repro.execution.contracts import SmartContract

        scenario = kv_scenario("fabric", 1, seed="api-err")
        platform = scenario.platform

        def increment(view, args):
            view.put(args["key"], view.get(args["key"], 0) + 1)
            return view.get(args["key"])

        platform.deploy_chaincode(
            "kv-channel",
            SmartContract("counter", 1, "python-chaincode",
                          {"inc": increment}),
            ["OrgA", "OrgB"],
        )
        conflicting = [
            _request(submitter=org, contract_id="counter", function="inc",
                     args={"key": "hot"})
            for org in ("OrgA", "OrgB")
        ]
        receipts = platform.submit_many(conflicting)
        assert [r.committed for r in receipts] == [True, False]
        assert receipts[1].status != "committed"
        assert receipts[1].tx_id  # it was ordered, then invalidated

    def test_fabric_unroutable_contract_needs_scope(self):
        scenario = kv_scenario("fabric", 1, seed="api-err")
        with pytest.raises(PlatformError, match="scope"):
            scenario.platform.submit(_request(contract_id="nowhere"))


class TestCapabilityRejections:
    """Table-1 honesty: unsupported confidentiality shapes are refused."""

    def test_fabric_rejects_private_for(self):
        scenario = kv_scenario("fabric", 1, seed="api-cap")
        with pytest.raises(PlatformError, match="channels"):
            scenario.platform.submit(_request(private_for=("OrgB",)))

    def test_corda_rejects_private_args(self):
        scenario = kv_scenario("corda", 1, seed="api-cap")
        with pytest.raises(PlatformError, match="participants"):
            scenario.platform.submit(_request(private_args={"c": {"k": 1}}))

    def test_corda_requires_registered_flow(self):
        scenario = kv_scenario("corda", 1, seed="api-cap")
        with pytest.raises(PlatformError, match="register_flow"):
            scenario.platform.submit(_request(function="unregistered"))

    def test_quorum_rejects_private_args(self):
        scenario = kv_scenario("quorum", 1, seed="api-cap")
        with pytest.raises(PlatformError, match="replayable"):
            scenario.platform.submit(_request(private_args={"c": {"k": 1}}))


class TestSubmitMany:
    def test_errors_become_rejection_receipts(self):
        scenario = kv_scenario("quorum", 2, seed="api-batch")
        bad = _request(function="missing")
        receipts = scenario.platform.submit_many(
            [scenario.requests[0], bad, scenario.requests[1]]
        )
        assert [r.committed for r in receipts] == [True, False, True]
        assert receipts[1].status == "rejected:ContractError"
        assert receipts[1].tx_id is None
        assert "missing" in receipts[1].info["error"]

    def test_rejection_receipt_shape(self):
        receipt = rejection_receipt(
            _request(), "quorum", submitted_at=1.5,
            error=ContractError("boom"),
        )
        assert not receipt.committed
        assert receipt.status == "rejected:ContractError"
        assert receipt.latency is None


class TestCryptoCacheStats:
    def test_stats_expose_both_caches(self):
        scenario = kv_scenario("fabric", 4, seed="api-cache")
        for request in scenario.requests:
            scenario.platform.submit(request)
        stats = scenario.platform.crypto_cache_stats()
        assert set(stats) == {"signature_verify", "certificate_chain"}
        for cache in stats.values():
            assert set(cache) == {"hits", "misses", "size"}
        # Repeated submissions by the same orgs re-verify the same certs.
        assert stats["certificate_chain"]["hits"] > 0
