"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main, requirements_from_json
from repro.core.mechanisms import Mechanism
from repro.core.requirements import InteractionPrivacy


class TestFigure1Command:
    def test_deletion_path(self, capsys):
        assert main(["figure1", "--deletion-required"]) == 0
        out = capsys.readouterr().out
        assert "Off-chain peer data" in out

    def test_mpc_path(self, capsys):
        assert main([
            "figure1", "--private-from-counterparties", "--shared-function",
        ]) == 0
        assert "Multiparty computation" in capsys.readouterr().out

    def test_tearoff_path(self, capsys):
        assert main([
            "figure1", "--no-encrypted-sharing", "--partial-visibility",
        ]) == 0
        out = capsys.readouterr().out
        assert "Separation of ledgers" in out
        assert "Merkle trees and tear-offs" in out

    def test_untrusted_orderer_adds_encryption(self, capsys):
        assert main(["figure1", "--untrusted-orderer"]) == 0
        assert "Symmetric keys" in capsys.readouterr().out


class TestDesignCommand:
    def test_design_from_file(self, tmp_path, capsys):
        spec = {
            "name": "cli-case",
            "interaction_privacy": "group-private",
            "data_classes": [
                {"name": "pii", "deletion_required": True},
                {"name": "trade"},
            ],
            "logic": {"keep_logic_private": True},
            "deployment": {"ordering_service_trusted": False},
        }
        path = tmp_path / "req.json"
        path.write_text(json.dumps(spec))
        assert main(["design", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# Privacy & confidentiality design: cli-case" in out
        assert "Off-chain peer data" in out

    def test_requirements_from_json_round_trip(self):
        requirements = requirements_from_json({
            "name": "x",
            "interaction_privacy": "individual-anonymous",
            "data_classes": [{"name": "d", "uninvolved_validation_required": True}],
        })
        assert requirements.interaction_privacy is InteractionPrivacy.INDIVIDUAL_ANONYMOUS
        assert requirements.data_class("d").uninvolved_validation_required


class TestAuditCommand:
    def test_audit_prints_all_platforms(self, capsys):
        assert main(["audit"]) == 0
        out = capsys.readouterr().out
        for platform in ("fabric", "corda", "quorum"):
            assert platform in out
        assert "participant_list_broadcast" in out


class TestTable1Command:
    def test_table1_agrees_and_exits_zero(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "agreement: 45/45" in out


class TestParser:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestThreatsCommand:
    def test_threats_matrix(self, tmp_path, capsys):
        spec = {
            "name": "threat-cli",
            "interaction_privacy": "group-private",
            "data_classes": [{"name": "d"}],
        }
        path = tmp_path / "req.json"
        path.write_text(json.dumps(spec))
        assert main(["threats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "EXPOSED" in out and "covered" in out
        assert "ordering-operator" in out


class TestRecoverCommand:
    def test_recover_default_platform_passes(self, capsys):
        assert main(["recover"]) == 0
        out = capsys.readouterr().out
        assert "recovery scenario: fabric" in out
        assert "CONVERGED" in out
        assert "verdict: OK" in out

    def test_recover_corda_json(self, capsys):
        assert main(["recover", "--platform", "corda", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["platform"] == "corda"
        assert payload["converged"] is True
        assert payload["leak_ok"] is True
        assert payload["divergences"] == []

    def test_recover_rejects_unknown_platform(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recover", "--platform", "besu"])


class TestConvergeCommand:
    def test_converge_gate_passes_all_platforms(self, capsys):
        assert main(["converge"]) == 0
        out = capsys.readouterr().out
        for platform in ("fabric", "corda", "quorum"):
            assert f"recovery scenario: {platform}" in out
        assert "convergence gate: PASS" in out

    def test_converge_single_platform_json(self, capsys):
        assert main(["converge", "--platform", "quorum", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [r["platform"] for r in payload] == ["quorum"]
        assert all(r["ok"] for r in payload)


class TestBenchCommand:
    def test_bench_default_kv_on_fabric(self, capsys):
        assert main(["bench", "--ops", "10", "--batch", "5"]) == 0
        out = capsys.readouterr().out
        assert "driver run on fabric" in out
        assert "throughput" in out
        assert "signature_verify" in out

    def test_bench_json_payload(self, capsys):
        assert main([
            "bench", "--platform", "quorum", "--workload", "trades",
            "--ops", "6", "--batch", "3", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["platform"] == "quorum"
        assert payload["workload"] == "trades"
        assert payload["operations"] == 6
        assert payload["failed"] == 0
        assert "cache_stats" in payload

    def test_bench_loc_on_corda(self, capsys):
        assert main([
            "bench", "--platform", "corda", "--workload", "loc",
            "--ops", "4", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["committed"] == payload["operations"] > 0

    def test_bench_skew_changes_workload(self, capsys):
        assert main(["bench", "--ops", "12", "--skew", "2.0", "--json"]) == 0
        skewed = json.loads(capsys.readouterr().out)
        assert skewed["scenario"]["skew"] == 2.0

    def test_bench_no_force_cut_slows_drip_feed(self, capsys):
        assert main([
            "bench", "--ops", "5", "--batch", "1", "--no-force-cut", "--json",
        ]) == 0
        drip = json.loads(capsys.readouterr().out)
        assert main([
            "bench", "--ops", "5", "--batch", "5", "--json",
        ]) == 0
        batched = json.loads(capsys.readouterr().out)
        assert drip["force_cut"] is False
        assert batched["throughput_tps"] > drip["throughput_tps"]

    def test_bench_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["bench", "--workload", "nope"])
