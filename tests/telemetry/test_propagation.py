"""Trace context propagation across the network substrate.

One trace must follow a message from the sender's span through the
simulated wire (transit spans) — and under fault plans the span must
stay honest: retries land as span events and an exhausted resilient
send closes the span in error status with the ``DeliveryTimeout``.
"""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import DeliveryTimeout
from repro.common.rng import DeterministicRNG
from repro.faults.plan import FaultPlan
from repro.network.simnet import LatencyModel, SimNetwork


def fresh_net(seed: str, fault_plan: FaultPlan | None = None) -> SimNetwork:
    net = SimNetwork(
        clock=SimClock(),
        rng=DeterministicRNG(seed),
        latency=LatencyModel(base=0.005, jitter=0.002),
        fault_plan=fault_plan,
    )
    net.add_node("A")
    net.add_node("B")
    return net


def test_transit_span_joins_the_senders_trace():
    net = fresh_net("prop-basic")
    with net.telemetry.span("submit") as root:
        message = net.send("A", "B", "data", {"n": 1})
    net.run()
    assert message.trace == (root.trace_id, root.span_id)
    (transit,) = net.telemetry.tracer.find_spans("net.transit")
    assert transit.trace_id == root.trace_id
    assert transit.parent_id == root.span_id
    assert transit.attributes["kind"] == "data"
    assert transit.start == message.sent_at
    assert transit.duration is not None and transit.duration > 0


def test_untraced_sends_carry_no_context_and_record_no_spans():
    net = fresh_net("prop-none")
    message = net.send("A", "B", "data", {"n": 1})
    net.run()
    assert message.trace is None
    assert net.telemetry.tracer.find_spans("net.transit") == []
    # Metrics still count the traffic.
    assert net.stats.messages_delivered == 1


def test_broadcast_fans_one_trace_across_recipients():
    net = fresh_net("prop-bcast")
    net.add_node("C")
    with net.telemetry.span("announce") as root:
        net.broadcast("A", "block", {"height": 1})
    net.run()
    transits = net.telemetry.tracer.find_spans("net.transit")
    assert len(transits) == 2
    assert {t.trace_id for t in transits} == {root.trace_id}
    assert {t.attributes["recipient"] for t in transits} == {"B", "C"}


def test_dropped_message_records_error_transit_span():
    plan = FaultPlan().set_link_loss("A", "B", 1.0)
    net = fresh_net("prop-drop", fault_plan=plan)
    with net.telemetry.span("submit"):
        net.send("A", "B", "data", {"n": 1})
    net.run()
    (transit,) = net.telemetry.tracer.find_spans("net.transit")
    assert transit.status == "error"
    assert transit.error == "dropped:loss"
    drops = net.telemetry.events.named("net.drop")
    assert [e.attributes["cause"] for e in drops] == ["loss"]


def test_retry_span_under_faults_records_attempts_and_timeout():
    """Satellite: the resilient-send span stays honest under a fault plan."""
    plan = FaultPlan().set_link_loss("A", "B", 1.0)
    net = fresh_net("prop-retry", fault_plan=plan)
    with pytest.raises(DeliveryTimeout):
        net.send_with_retry("A", "B", "data", {"n": 1}, max_attempts=3)

    (span,) = net.telemetry.tracer.find_spans("net.send_with_retry")
    # Every retry is a span event; the outcome is pinned in attributes.
    retry_events = [e for e in span.events if e.name == "retry"]
    assert [e.attributes["attempt"] for e in retry_events] == [2, 3]
    assert span.attributes["attempts"] == 3
    assert span.attributes["outcome"] == "DeliveryTimeout"
    # The exception propagated *and* closed the span in error status.
    assert span.status == "error"
    assert span.error == "DeliveryTimeout"
    assert span.end is not None
    # Metrics and the event log agree with the span.
    assert net.stats.retries == 2
    assert [e.attributes["attempt"]
            for e in net.telemetry.events.named("net.retry")] == [2, 3]
    # Each attempt's doomed wire hop is an error transit in the same trace.
    transits = net.telemetry.tracer.find_spans("net.transit")
    assert len(transits) == 3
    assert all(t.trace_id == span.trace_id for t in transits)
    assert all(t.error == "dropped:loss" for t in transits)


def test_successful_retry_span_reports_delivery():
    plan = FaultPlan().set_link_loss("A", "B", 0.7)
    net = fresh_net("prop-recover", fault_plan=plan)
    receipt = net.send_with_retry(
        "A", "B", "data", {"n": 1}, max_attempts=10
    )
    assert receipt.delivered
    (span,) = net.telemetry.tracer.find_spans("net.send_with_retry")
    assert span.attributes["outcome"] == "delivered"
    assert span.attributes["attempts"] == receipt.attempts
    assert span.status == "ok"


def test_reset_stats_zeroes_counters_but_keeps_spans():
    """Satellite: instance-scoped stats with an explicit reset."""
    one = fresh_net("prop-reset-1")
    two = fresh_net("prop-reset-2")
    with one.telemetry.span("batch"):
        for n in range(3):
            one.send("A", "B", "data", {"n": n})
    one.run()
    # Instance-scoped: traffic on `one` is invisible to `two`.
    assert one.stats.messages_delivered == 3
    assert two.stats.messages_delivered == 0

    spans_before = len(one.telemetry.tracer.spans)
    one.reset_stats()
    assert one.stats.messages_sent == 0
    assert one.stats.bytes_transferred == 0
    snap = one.telemetry.metrics.snapshot()
    assert snap["histograms"]["net.delivery_latency"]["count"] == 0
    # Spans carry their own timestamps and survive the counter reset.
    assert len(one.telemetry.tracer.spans) == spans_before
