"""Acceptance: one trace follows a letter of credit across the platform.

The issue's bar: a traced LoC run on Fabric yields a span tree covering
endorse -> order -> validate -> commit with simulated-time durations,
renderable via ``repro trace``.
"""

from __future__ import annotations

import json

import pytest

from repro.platforms.fabric import FabricNetwork
from repro.telemetry.render import render_trace_tree, trace_json
from repro.usecases.letter_of_credit import LetterOfCreditWorkflow


@pytest.fixture(scope="module")
def traced_workflow() -> LetterOfCreditWorkflow:
    workflow = LetterOfCreditWorkflow(network=FabricNetwork(seed="trace-acc"))
    workflow.setup()
    workflow.run_full_lifecycle("LC-ACC")
    workflow.network.network.run()  # drain in-flight block distribution
    return workflow


def lifecycle_spans(workflow):
    tracer = workflow.telemetry.tracer
    (lifecycle,) = tracer.find_spans("loc.lifecycle")
    return tracer, lifecycle, tracer.spans_of(lifecycle.trace_id)


def test_lifecycle_is_one_trace_covering_all_pipeline_stages(traced_workflow):
    __, lifecycle, spans = lifecycle_spans(traced_workflow)
    names = {s.name for s in spans}
    # The full Fabric pipeline, all under the single lifecycle trace.
    assert {"loc.apply", "loc.issue", "loc.ship", "loc.pay"} <= names
    assert {"fabric.invoke", "fabric.endorse", "fabric.order",
            "fabric.validate", "fabric.commit", "ordering.cut_batch",
            "net.transit"} <= names
    assert lifecycle.parent_id is None
    # Every other span in the trace is a descendant of the lifecycle root.
    by_id = {s.span_id: s for s in spans}
    for span in spans:
        if span is lifecycle:
            continue
        cursor = span
        while cursor.parent_id is not None:
            cursor = by_id[cursor.parent_id]
        assert cursor is lifecycle


def test_stage_ordering_and_simulated_durations(traced_workflow):
    __, __lc, spans = lifecycle_spans(traced_workflow)
    first_invoke = next(s for s in spans if s.name == "fabric.invoke")
    stages = {
        s.name: s for s in spans if s.parent_id == first_invoke.span_id
    }
    endorse = stages["fabric.endorse"]
    order = stages["fabric.order"]
    validates = [s for s in spans if s.name == "fabric.validate"
                 and s.parent_id == first_invoke.span_id]
    commits = [s for s in spans if s.name == "fabric.commit"
               and s.parent_id == first_invoke.span_id]
    # Pipeline order in simulated time: endorse, then order, then
    # validate, then commit.
    assert endorse.start <= order.start <= validates[0].start
    assert validates[0].start <= commits[0].start
    # Durations are modelled time: message transit takes nonzero simulated
    # seconds, and the whole lifecycle spans the modelled latency of every
    # hop it contains.
    transits = [s for s in spans if s.name == "net.transit"]
    assert all(t.duration > 0 for t in transits)
    (lifecycle,) = (s for s in spans if s.name == "loc.lifecycle")
    assert lifecycle.duration > 0
    assert endorse.end is not None and order.end is not None


def test_validation_outcome_is_recorded(traced_workflow):
    __, __lc, spans = lifecycle_spans(traced_workflow)
    codes = {s.attributes.get("validation_code")
             for s in spans if s.name == "fabric.validate"}
    assert codes == {"VALID"}
    registry = traced_workflow.telemetry.metrics
    assert registry.counter("fabric.validation", code="VALID").value >= 4


def test_transit_spans_cross_node_boundaries(traced_workflow):
    __, lifecycle, spans = lifecycle_spans(traced_workflow)
    transits = [s for s in spans if s.name == "net.transit"]
    assert transits
    # The trace crossed real principals: endorsers and the orderer.
    endpoints = {s.attributes["recipient"] for s in transits}
    assert "fabric-orderer" in endpoints
    assert all(s.trace_id == lifecycle.trace_id for s in transits)


def test_tree_renderer_shows_the_pipeline(traced_workflow):
    tracer, lifecycle, __ = lifecycle_spans(traced_workflow)
    text = render_trace_tree(tracer, lifecycle.trace_id)
    for needle in ("loc.lifecycle", "fabric.endorse", "fabric.order",
                   "fabric.validate", "fabric.commit"):
        assert needle in text
    assert "ms" in text or "s" in text  # durations are printed

    payload = json.loads(trace_json(tracer, lifecycle.trace_id))
    assert payload[0]["trace_id"] == lifecycle.trace_id


def test_cli_trace_and_metrics_subcommands(capsys):
    from repro.cli import main

    assert main(["trace", "--platform", "fabric"]) == 0
    out = capsys.readouterr().out
    assert "loc.lifecycle" in out and "fabric.commit" in out

    assert main(["metrics", "--platform", "fabric", "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["counters"]["net.messages_sent"] > 0


def test_same_seed_yields_identical_traces():
    """Replayability: the whole point of simulated-time tracing."""

    def run():
        workflow = LetterOfCreditWorkflow(
            network=FabricNetwork(seed="trace-replay")
        )
        workflow.setup()
        workflow.run_full_lifecycle("LC-R")
        workflow.network.network.run()
        return workflow.telemetry.to_dict()

    assert json.dumps(run(), default=str) == json.dumps(run(), default=str)
