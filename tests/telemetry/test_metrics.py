"""Metrics registry: counters, gauges, histograms, snapshots, diffs."""

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    diff_snapshots,
    render_diff,
)


def test_counter_accumulates_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("net.messages_sent")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_labeled_counters_are_distinct_series():
    registry = MetricsRegistry()
    registry.counter("crypto.ops", mechanism="idemix").inc()
    registry.counter("crypto.ops", mechanism="merkle-tear-off").inc(2)
    snap = registry.snapshot()
    assert snap["counters"]["crypto.ops{mechanism=idemix}"] == 1
    assert snap["counters"]["crypto.ops{mechanism=merkle-tear-off}"] == 2


def test_same_name_and_labels_return_same_instance():
    registry = MetricsRegistry()
    assert registry.counter("a", x="1") is registry.counter("a", x="1")
    assert registry.counter("a", x="1") is not registry.counter("a", x="2")


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("ordering.pending", channel="ch1")
    gauge.inc(3)
    gauge.dec()
    assert gauge.value == 2
    gauge.set(0)
    assert gauge.value == 0


def test_histogram_buckets_are_cumulative_style():
    registry = MetricsRegistry()
    hist = registry.histogram("latency", bounds=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.5, 5.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.total == pytest.approx(5.555)
    assert hist.bucket_dict() == {
        "le=0.01": 1, "le=0.1": 1, "le=1": 1, "le=+Inf": 1,
    }
    assert hist.mean() == pytest.approx(5.555 / 4)


def test_default_buckets_span_substrate_latencies():
    assert DEFAULT_BUCKETS[0] <= 0.001
    assert DEFAULT_BUCKETS[-1] >= 5.0


def test_registries_are_instance_scoped():
    one, two = MetricsRegistry(), MetricsRegistry()
    one.counter("n").inc()
    assert two.counter("n").value == 0


def test_reset_with_prefix_zeroes_only_that_family():
    registry = MetricsRegistry()
    registry.counter("net.messages_sent").inc(7)
    registry.counter("ordering.submitted").inc(3)
    registry.gauge("net.depth").set(2)
    registry.histogram("net.delivery_latency").observe(0.5)
    registry.reset(prefix="net.")
    snap = registry.snapshot()
    assert snap["counters"]["net.messages_sent"] == 0
    assert snap["counters"]["ordering.submitted"] == 3
    assert snap["gauges"]["net.depth"] == 0
    assert snap["histograms"]["net.delivery_latency"]["count"] == 0


def test_snapshot_diff_and_render():
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    before = registry.snapshot()
    registry.counter("c").inc(3)
    registry.gauge("g").set(9)
    registry.histogram("h").observe(0.2)
    delta = diff_snapshots(before, registry.snapshot())
    assert delta["counters"]["c"] == 3
    assert delta["gauges"]["g"] == {"before": 0.0, "after": 9.0}
    assert delta["histograms"]["h"]["count"] == 1
    text = render_diff(delta)
    assert "+3" in text and "0 -> 9" in text


def test_snapshot_is_deterministic_and_json_safe():
    import json

    registry = MetricsRegistry()
    registry.counter("b").inc()
    registry.counter("a").inc()
    snap = registry.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    json.dumps(snap)  # must not raise
