"""Tracer semantics: nesting, propagation contexts, determinism, errors."""

import pytest

from repro.common.clock import SimClock
from repro.telemetry.tracing import TraceContext, Tracer


def make_tracer() -> tuple[Tracer, SimClock]:
    clock = SimClock()
    return Tracer(clock=clock), clock


def test_nested_spans_share_a_trace_and_link_parent():
    tracer, clock = make_tracer()
    with tracer.span("outer") as outer:
        clock.advance(1.0)
        with tracer.span("inner") as inner:
            clock.advance(0.5)
    assert inner.trace_id == outer.trace_id
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert outer.start == 0.0 and outer.end == 1.5
    assert inner.duration == pytest.approx(0.5)


def test_sibling_roots_get_fresh_traces():
    tracer, __ = make_tracer()
    with tracer.span("first"):
        pass
    with tracer.span("second"):
        pass
    assert len(tracer.trace_ids()) == 2


def test_ids_are_deterministic_sequence_numbers():
    for _ in range(2):  # two fresh tracers produce identical ids
        tracer, __ = make_tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [s.span_id for s in tracer.spans] == ["s000001", "s000002"]
        assert tracer.spans[0].trace_id == "t0001"


def test_explicit_parent_context_wins_over_stack():
    tracer, __ = make_tracer()
    remote = TraceContext(trace_id="t0042", span_id="s000099")
    with tracer.span("local"):
        with tracer.span("continuation", parent=remote) as span:
            pass
    assert span.trace_id == "t0042"
    assert span.parent_id == "s000099"


def test_exception_marks_span_error_and_propagates():
    tracer, __ = make_tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    span = tracer.spans[0]
    assert span.status == "error"
    assert span.error == "RuntimeError"
    assert span.end is not None  # closed despite the exception


def test_record_span_for_precomputed_intervals():
    tracer, clock = make_tracer()
    clock.advance(2.0)
    span = tracer.record_span("transit", start=1.0, end=1.8, kind="block")
    assert span.start == 1.0 and span.end == pytest.approx(1.8)
    assert span.attributes["kind"] == "block"
    assert tracer.current_span() is None  # not left on the stack


def test_end_clamps_to_start():
    tracer, clock = make_tracer()
    clock.advance(5.0)
    span = tracer.start_span("s", start=9.0)
    tracer.end_span(span)  # clock.now (5.0) < start
    assert span.end == span.start


def test_attributes_and_events_pass_redaction():
    tracer, __ = make_tracer()
    with tracer.span("apply", buyer_passport="P-1") as span:
        tracer.add_event(span, "kyc", ssn_number="000-11-2222")
    assert "P-1" not in str(span.attributes)
    assert span.attributes["buyer_passport"].startswith("[REDACTED:")
    event = span.events[0]
    assert "000-11-2222" not in str(event.attributes)


def test_current_context_reflects_stack_top():
    tracer, __ = make_tracer()
    assert tracer.current_context() is None
    with tracer.span("a") as a:
        assert tracer.current_context() == a.context()
        assert TraceContext.from_tuple(a.context().as_tuple()) == a.context()
    assert tracer.current_context() is None


def test_queries_find_and_group_spans():
    tracer, __ = make_tracer()
    with tracer.span("x"):
        with tracer.span("y"):
            pass
    with tracer.span("x"):
        pass
    assert len(tracer.find_spans("x")) == 2
    first_trace = tracer.trace_ids()[0]
    assert {s.name for s in tracer.spans_of(first_trace)} == {"x", "y"}
    assert all(isinstance(d, dict) for d in tracer.to_dicts())
