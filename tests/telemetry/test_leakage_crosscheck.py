"""Cross-check: telemetry leaks nothing the L1 audit doesn't.

The L1 auditor (:mod:`repro.core.audit`) accounts for what every
principal learned through the *protocol* — exposures on messages, state
an orderer or notary can read.  Telemetry is a new egress channel on
top of that: spans, events, and metrics flow to whoever operates the
monitoring.  These tests pin the containment guarantee: serialized
telemetry from the audit scenario and the letter-of-credit run contains
none of the confidential material the audit shows *any* principal
holding, and no identity that is not already network-visible routing
metadata.
"""

from __future__ import annotations

import json

import pytest

from repro.core.audit import CONFIDENTIAL_KEY, TRADING_PARTIES, UNINVOLVED
from repro.execution.contracts import SmartContract
from repro.platforms.fabric import FabricNetwork
from repro.telemetry.redaction import redacted_digest
from repro.usecases.letter_of_credit import LetterOfCreditWorkflow

SECRET_PRICE = 987654321


def run_trade_scenario() -> FabricNetwork:
    """The audit_fabric scenario, with the network kept for inspection."""
    net = FabricNetwork(seed="telemetry-crosscheck")
    for org in TRADING_PARTIES + UNINVOLVED:
        net.onboard(org)
    net.create_channel("trade-ab", list(TRADING_PARTIES))

    def record_trade(view, args):
        # Same deliberate plaintext write the L1 audit measures.
        # repro: allow(flow-to-state)
        view.put(CONFIDENTIAL_KEY, args["price"])
        return args["price"]

    contract = SmartContract(
        contract_id="trade-cc", version=1, language="python-chaincode",
        functions={"record": record_trade},
    )
    net.deploy_chaincode("trade-ab", contract, list(TRADING_PARTIES))
    net.invoke("trade-ab", "OrgA", "trade-cc", "record",
               {"price": SECRET_PRICE})
    net.network.run()
    return net


@pytest.fixture(scope="module")
def trade_net() -> FabricNetwork:
    return run_trade_scenario()


def telemetry_blob(net) -> str:
    return json.dumps(net.telemetry.to_dict(), default=str)


def test_orderer_exposure_is_the_baseline(trade_net):
    """Precondition: the audit *does* attribute the confidential data key
    to the ordering principal (the paper's §3.4 visibility problem).  The
    containment claim below is only meaningful against that baseline."""
    assert CONFIDENTIAL_KEY in trade_net.orderer.observer.seen_data_keys


def test_telemetry_holds_back_what_the_protocol_exposes(trade_net):
    """The orderer sees the key and value; the telemetry stream must not."""
    blob = telemetry_blob(trade_net)
    assert len(trade_net.telemetry.tracer.spans) > 0  # non-vacuous
    assert CONFIDENTIAL_KEY not in blob
    assert str(SECRET_PRICE) not in blob


def test_telemetry_identities_are_network_visible_routing_metadata(trade_net):
    """Every identity telemetry mentions is a registered node name — the
    membership list every network participant already holds.  Telemetry
    therefore tells an observer nothing about *who trades* beyond what
    the audit already attributes to the whole membership."""
    visible = set(trade_net.network.nodes())
    mentioned = set()
    for span in trade_net.telemetry.tracer.spans:
        for key in ("sender", "recipient"):
            if key in span.attributes:
                mentioned.add(span.attributes[key])
    for event in trade_net.telemetry.events.entries:
        for key in ("sender", "recipient"):
            if key in event.attributes:
                mentioned.add(event.attributes[key])
    assert mentioned  # non-vacuous: transit spans did record endpoints
    assert mentioned <= visible


def test_uninvolved_orgs_learn_nothing_telemetry_could_corroborate(trade_net):
    """The audit says OrgC/D/E learned no trading identities; telemetry
    must not hand them any either (no span names an uninvolved org)."""
    blob = telemetry_blob(trade_net)
    for org in UNINVOLVED:
        assert trade_net.network.node(org).observer.seen_data_keys == set()
        assert org not in blob


def test_letter_of_credit_pii_never_reaches_telemetry():
    """The acceptance gate: the LoC run records the passport attribute on
    purpose, and the redaction filter must have hashed it at record time."""
    workflow = LetterOfCreditWorkflow(network=FabricNetwork(seed="loc-leak"))
    workflow.setup()
    workflow.run_full_lifecycle("LC-XC")
    workflow.network.network.run()
    blob = telemetry_blob(workflow.network)

    assert "P-99887766" not in blob
    # Correlatable, never invertible: the digest *is* present.
    assert redacted_digest("P-99887766") in blob
    # The span that carried it still exists and is tagged as redacted.
    (apply_span,) = workflow.telemetry.tracer.find_spans("loc.apply")
    assert str(apply_span.attributes["buyer_passport"]).startswith("[REDACTED:")


def test_metrics_names_carry_no_state_keys(trade_net):
    """Metric series names are static families plus enum-ish labels —
    never ledger keys or payload fragments."""
    snapshot = trade_net.telemetry.metrics.snapshot()
    for family in ("counters", "gauges", "histograms"):
        for name in snapshot[family]:
            assert CONFIDENTIAL_KEY not in name
            assert str(SECRET_PRICE) not in name
