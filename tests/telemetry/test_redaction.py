"""Redaction filter and privacy-aware event log."""

import json

from repro.common.clock import SimClock
from repro.telemetry.events import EventLog
from repro.telemetry.redaction import (
    RedactionFilter,
    redacted_digest,
)


def test_confidential_keys_are_hashed_not_stored():
    redactor = RedactionFilter()
    out = redactor.redact_attributes(
        {"buyer_passport": "P-99887766", "amount": 250_000}
    )
    assert out["buyer_passport"] == redacted_digest("P-99887766")
    assert "P-99887766" not in json.dumps(out)
    assert out["amount"] == 250_000  # non-confidential survives untouched


def test_digest_is_deterministic_and_unrecognizably_short():
    a, b = redacted_digest({"n": 1}), redacted_digest({"n": 1})
    assert a == b
    assert a.startswith("[REDACTED:") and len(a) < 40
    assert redacted_digest({"n": 2}) != a


def test_payload_keys_become_type_and_size_summaries():
    redactor = RedactionFilter()
    out = redactor.redact_attributes({"payload": {"secret-plan": "x" * 100}})
    summary = out["payload"]
    assert "secret-plan" not in json.dumps(out)
    assert summary["type"] == "dict"
    assert summary["size_bytes"] > 0


def test_redaction_recurses_into_nested_structures():
    redactor = RedactionFilter()
    out = redactor.redact_attributes(
        {"meta": {"ssn": "123-45-6789", "rows": [{"password": "hunter2"}]}}
    )
    blob = json.dumps(out)
    assert "123-45-6789" not in blob
    assert "hunter2" not in blob


def test_custom_marks_extend_the_confidential_set():
    redactor = RedactionFilter()
    assert redactor.redact_attributes({"margin": 7})["margin"] == 7
    redactor.mark("margin")
    assert str(redactor.redact_attributes({"margin": 7})["margin"]).startswith(
        "[REDACTED:"
    )


def test_event_log_redacts_and_serializes():
    clock = SimClock()
    log = EventLog(clock=clock, redactor=RedactionFilter())
    clock.advance(1.5)
    log.emit("loc.apply", loc_id="LC-1", buyer_passport="P-1")
    log.emit("net.drop", cause="loss")
    events = log.to_dicts()
    assert events[0]["time"] == 1.5
    assert "P-1" not in log.to_json()
    assert [e.name for e in log.named("net.drop")] == ["net.drop"]
