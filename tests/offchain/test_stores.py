"""Off-chain stores: anchoring, access control, GDPR deletion."""

from __future__ import annotations

import pytest

from repro.common.errors import (
    AnchorMismatchError,
    DataDeletedError,
    OffChainError,
)
from repro.offchain.stores import Hosting, OffChainStore


@pytest.fixture
def store():
    return OffChainStore("s", authorized={"alice", "bob"})


class TestStorage:
    def test_put_get(self, store):
        store.put("k", {"v": 1})
        assert store.get("k", caller="alice") == {"v": 1}

    def test_missing_key(self, store):
        with pytest.raises(OffChainError, match="no record"):
            store.get("missing", caller="alice")

    def test_keys_listing(self, store):
        store.put("b", 1)
        store.put("a", 2)
        assert store.keys() == ["a", "b"]

    def test_hosting_flavors(self):
        assert OffChainStore("p", hosting=Hosting.PEER).hosting is Hosting.PEER
        assert OffChainStore("e", hosting=Hosting.EXTERNAL).hosting is Hosting.EXTERNAL


class TestAnchoring:
    def test_anchor_stable_for_same_content(self, store):
        a1 = store.put("k", {"v": 1})
        a2 = store.put("k", {"v": 1})
        assert a1 == a2

    def test_anchor_changes_with_content(self, store):
        a1 = store.put("k", {"v": 1})
        a2 = store.put("k", {"v": 2})
        assert a1 != a2

    def test_verify_anchor(self, store):
        anchor = store.put("k", {"v": 1})
        assert store.verify_anchor("k", anchor, caller="alice")

    def test_mismatched_anchor_detected(self, store):
        anchor = store.put("k", {"v": 1})
        store.put("k", {"v": 2})  # data changed after anchoring
        with pytest.raises(AnchorMismatchError):
            store.verify_anchor("k", anchor, caller="alice")


class TestAccessControl:
    def test_unauthorized_read_rejected(self, store):
        store.put("k", 1)
        with pytest.raises(OffChainError, match="not authorized"):
            store.get("k", caller="mallory")

    def test_denied_reads_are_logged(self, store):
        store.put("k", 1)
        with pytest.raises(OffChainError):
            store.get("k", caller="mallory")
        assert store.denied_reads == [("mallory", "s")]

    def test_open_store_allows_anyone(self):
        store = OffChainStore("open")
        store.put("k", 1)
        assert store.get("k", caller="anyone") == 1


class TestDeletion:
    def test_delete_leaves_tombstone(self, store):
        anchor = store.put("k", {"pii": "x"})
        tombstone = store.delete("k", reason="gdpr", now=5.0)
        assert tombstone.anchor == anchor
        assert tombstone.deleted_at == 5.0
        assert store.is_deleted("k")

    def test_deleted_read_raises(self, store):
        store.put("k", 1)
        store.delete("k", reason="gdpr")
        with pytest.raises(DataDeletedError, match="gdpr"):
            store.get("k", caller="alice")

    def test_delete_missing_rejected(self, store):
        with pytest.raises(OffChainError, match="to delete"):
            store.delete("missing", reason="gdpr")

    def test_tombstones_listed(self, store):
        store.put("a", 1)
        store.put("b", 2)
        store.delete("a", reason="gdpr")
        assert [t.key for t in store.tombstones()] == ["a"]

    def test_rewrite_clears_tombstone(self, store):
        store.put("k", 1)
        store.delete("k", reason="gdpr")
        store.put("k", 2)
        assert not store.is_deleted("k")
        assert store.get("k", caller="alice") == 2

    def test_anchor_survives_deletion(self, store):
        """The paper's tension: the on-chain hash outlives the data."""
        anchor = store.put("k", {"pii": "x"})
        tombstone = store.delete("k", reason="gdpr")
        assert tombstone.anchor == anchor  # record that data existed
        with pytest.raises(DataDeletedError):
            store.verify_anchor("k", anchor, caller="alice")
