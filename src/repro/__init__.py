"""repro: reproduction of "Designing for Privacy and Confidentiality on
Distributed Ledgers for Enterprise" (Irvin & Kiral, Middleware 2019).

Public API layers, bottom-up:

- ``repro.crypto``    — from-scratch primitives behind every mechanism
  (signatures, PKI, Merkle tear-offs, ZKPs, Idemix-style credentials,
  one-time keys, MPC, Paillier, simulated TEEs).
- ``repro.network``   — discrete-event network with leakage observer taps.
- ``repro.ledger``    — transactions, blocks, chains, world state,
  ordering services with explicit visibility.
- ``repro.offchain``  — hash-anchored off-chain stores with true deletion.
- ``repro.execution`` — smart contracts and the three execution engines.
- ``repro.platforms`` — behavioural simulations of Hyperledger Fabric,
  Corda, and Quorum, each answering Table 1 capability probes.
- ``repro.core``      — the paper's contribution: mechanism catalog,
  Figure 1 decision tree, the full design guide, Table 1 regeneration,
  and the leakage auditor.
- ``repro.usecases``  — letters of credit (Section 4), secret ballots,
  oracle attestation with tear-offs.

Quickstart::

    from repro.core import design_solution, score_platforms
    from repro.usecases import letter_of_credit_requirements

    design = design_solution(letter_of_credit_requirements())
    print(design.describe())
    for score in score_platforms(design):
        print(score.platform, score.score)
"""

__version__ = "1.0.0"
