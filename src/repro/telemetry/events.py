"""Privacy-aware structured event log.

A flat, append-only record of notable happenings (message drops, retry
attempts, batch cuts, crash/recover transitions) with simulated-time
stamps.  Where spans answer "how long did this take and under what", the
event log answers "what happened, in order" — the substrate's equivalent
of an operational log, except every attribute passes the
:class:`~repro.telemetry.redaction.RedactionFilter` before it is stored,
so the log can be shipped outside the trust boundary without widening
any observer's knowledge (the property the telemetry cross-check test
pins against the L1 leakage audit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.clock import SimClock
from repro.common.serialization import canonical_json
from repro.telemetry.redaction import RedactionFilter


@dataclass
class LogEvent:
    """One structured entry: when (simulated), what, and redacted detail."""

    time: float
    name: str
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"time": self.time, "name": self.name, "attributes": self.attributes}


class EventLog:
    """Append-only, redaction-filtered, simulated-time event stream."""

    def __init__(
        self,
        clock: SimClock | None = None,
        redactor: RedactionFilter | None = None,
    ) -> None:
        self.clock = clock or SimClock()
        self.redactor = redactor or RedactionFilter()
        self.entries: list[LogEvent] = []

    def emit(self, name: str, time: float | None = None, **attributes: Any) -> LogEvent:
        """Record one event; attributes are redacted before storage."""
        event = LogEvent(
            time=self.clock.now if time is None else time,
            name=name,
            attributes=self.redactor.redact_attributes(attributes),
        )
        self.entries.append(event)
        return event

    def named(self, name: str) -> list[LogEvent]:
        return [e for e in self.entries if e.name == name]

    def to_dicts(self) -> list[dict]:
        return [e.to_dict() for e in self.entries]

    def to_json(self) -> str:
        return canonical_json(self.to_dicts())
