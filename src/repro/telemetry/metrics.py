"""Instance-scoped metrics registry.

Counters, gauges, and fixed-bucket histograms, deliberately minimal and
deterministic: no wall-clock timestamps, no background aggregation, no
global state.  Every :class:`~repro.network.simnet.SimNetwork`, ordering
service, and platform simulation owns (or shares) one registry, so
back-to-back scenarios in a single process never bleed counts into each
other — the failure mode the old module-free-floating ``NetworkStats``
dataclass invited.

Metric names are dotted strings (``net.messages_sent``); optional label
pairs qualify a family (``crypto.ops`` with ``mechanism=...``), rendered
Prometheus-style as ``crypto.ops{mechanism=symmetric-encryption}``.
Snapshots are plain JSON-serializable dicts and two snapshots can be
diffed, which is what the ``repro metrics`` CLI and the cross-PR
benchmark trajectory consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default histogram upper bounds, in simulated seconds — chosen to span
#: the latency scales the substrate produces (per-hop milliseconds up to
#: multi-second batch timeouts).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


def _metric_key(name: str, labels: dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


@dataclass
class Gauge:
    """A value that can move both ways (queue depths, current term)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclass
class Histogram:
    """A fixed-bucket histogram (cumulative buckets, like Prometheus).

    ``bounds`` are inclusive upper edges; an implicit +Inf bucket catches
    the rest.  Only ``observe`` mutates it, so snapshots stay cheap.
    """

    name: str
    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_dict(self) -> dict[str, int]:
        labels = [f"le={b:g}" for b in self.bounds] + ["le=+Inf"]
        return dict(zip(labels, self.counts))


class MetricsRegistry:
    """One scope's worth of metrics; create one per simulation."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- accessors (create on first use)

    def counter(self, name: str, **labels: str) -> Counter:
        key = _metric_key(name, labels)
        if key not in self._counters:
            self._counters[key] = Counter(name=key)
        return self._counters[key]

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = _metric_key(name, labels)
        if key not in self._gauges:
            self._gauges[key] = Gauge(name=key)
        return self._gauges[key]

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS, **labels: str
    ) -> Histogram:
        key = _metric_key(name, labels)
        if key not in self._histograms:
            self._histograms[key] = Histogram(name=key, bounds=bounds)
        return self._histograms[key]

    # -- lifecycle

    def reset(self, prefix: str | None = None) -> None:
        """Zero metrics (optionally only those whose name starts with
        *prefix*).  Used by ``SimNetwork.reset_stats`` between scenarios."""

        def keep(key: str) -> bool:
            return prefix is not None and not key.startswith(prefix)

        for store in (self._counters, self._gauges):
            for key in list(store):
                if not keep(key):
                    store[key].value = 0.0
        for key, hist in list(self._histograms.items()):
            if not keep(key):
                hist.counts = [0] * (len(hist.bounds) + 1)
                hist.total = 0.0
                hist.count = 0

    # -- snapshots

    def snapshot(self) -> dict:
        """JSON-serializable view of every metric, sorted for determinism."""
        return {
            "counters": {
                k: self._counters[k].value for k in sorted(self._counters)
            },
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: {
                    "count": h.count,
                    "sum": h.total,
                    "mean": h.mean(),
                    "buckets": h.bucket_dict(),
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    def render_text(self) -> str:
        """Human-readable snapshot for the ``repro metrics`` CLI."""
        snap = self.snapshot()
        lines: list[str] = []
        if snap["counters"]:
            lines.append("counters:")
            lines += [
                f"  {name:<48s} {value:g}"
                for name, value in snap["counters"].items()
            ]
        if snap["gauges"]:
            lines.append("gauges:")
            lines += [
                f"  {name:<48s} {value:g}"
                for name, value in snap["gauges"].items()
            ]
        if snap["histograms"]:
            lines.append("histograms:")
            for name, h in snap["histograms"].items():
                lines.append(
                    f"  {name:<48s} count={h['count']} sum={h['sum']:.6f} "
                    f"mean={h['mean']:.6f}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"


def diff_snapshots(before: dict, after: dict) -> dict:
    """Per-metric deltas between two :meth:`MetricsRegistry.snapshot`s.

    Counters and histogram counts/sums subtract; gauges report both
    endpoints (a gauge delta hides the level, which is the point of a
    gauge).  Metrics absent on one side diff against zero.
    """
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    names = set(before.get("counters", {})) | set(after.get("counters", {}))
    for name in sorted(names):
        delta = after.get("counters", {}).get(name, 0.0) - before.get(
            "counters", {}
        ).get(name, 0.0)
        if delta:
            out["counters"][name] = delta
    names = set(before.get("gauges", {})) | set(after.get("gauges", {}))
    for name in sorted(names):
        out["gauges"][name] = {
            "before": before.get("gauges", {}).get(name, 0.0),
            "after": after.get("gauges", {}).get(name, 0.0),
        }
    names = set(before.get("histograms", {})) | set(after.get("histograms", {}))
    for name in sorted(names):
        b = before.get("histograms", {}).get(name, {"count": 0, "sum": 0.0})
        a = after.get("histograms", {}).get(name, {"count": 0, "sum": 0.0})
        delta_count = a["count"] - b["count"]
        if delta_count:
            out["histograms"][name] = {
                "count": delta_count,
                "sum": a["sum"] - b["sum"],
            }
    return out


def render_diff(delta: dict) -> str:
    """Text form of :func:`diff_snapshots` for the CLI."""
    lines: list[str] = []
    for name, value in delta.get("counters", {}).items():
        lines.append(f"counter   {name:<48s} {value:+g}")
    for name, ends in delta.get("gauges", {}).items():
        lines.append(
            f"gauge     {name:<48s} {ends['before']:g} -> {ends['after']:g}"
        )
    for name, h in delta.get("histograms", {}).items():
        lines.append(
            f"histogram {name:<48s} count {h['count']:+d} sum {h['sum']:+.6f}"
        )
    return "\n".join(lines) if lines else "(no differences)"
