"""Text and JSON rendering of traces and metrics for the CLI.

The span-tree renderer is what ``repro trace`` prints: one tree per
trace, children indented under parents, simulated-time offsets and
durations on every line, attributes and error status inline::

    trace t0001
    └─ fabric.invoke                     @0.000000s  +105.2ms  channel=trade-ab
       ├─ fabric.endorse                 @0.000000s    +0.0ms  endorsers=2
       ├─ fabric.order                   @0.000000s  +101.0ms  batch_size=1
       └─ fabric.validate_commit         @0.101000s    +4.2ms  valid=1
"""

from __future__ import annotations

from repro.common.serialization import canonical_json
from repro.telemetry.tracing import Span, Tracer


def _format_attributes(span: Span) -> str:
    parts = [f"{k}={v}" for k, v in span.attributes.items()]
    if span.error:
        parts.append(f"error={span.error}")
    return "  ".join(parts)


def _render_span(
    span: Span, children: dict[str | None, list[Span]], depth: int, lines: list[str],
    is_last: bool,
) -> None:
    connector = "└─ " if is_last else "├─ "
    prefix = "   " * depth + connector if depth >= 0 else ""
    label = f"{prefix}{span.name}"
    timing = f"@{span.start:.6f}s  +{span.duration * 1000:.1f}ms"
    attrs = _format_attributes(span)
    lines.append(f"{label:<44s} {timing}" + (f"  {attrs}" if attrs else ""))
    kids = children.get(span.span_id, [])
    for i, child in enumerate(kids):
        _render_span(child, children, depth + 1, lines, i == len(kids) - 1)


def render_trace_tree(tracer: Tracer, trace_id: str | None = None) -> str:
    """Render one trace (or every trace) as an indented tree."""
    trace_ids = [trace_id] if trace_id is not None else tracer.trace_ids()
    lines: list[str] = []
    for tid in trace_ids:
        spans = tracer.spans_of(tid)
        if not spans:
            continue
        children: dict[str | None, list[Span]] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)
        roots = children.get(None, [])
        # A span whose remote parent never reached this tracer still
        # renders, as its own root (cross-process tail of a trace).
        known = {s.span_id for s in spans}
        for span in spans:
            if span.parent_id is not None and span.parent_id not in known:
                roots.append(span)
        lines.append(f"trace {tid}")
        for i, root in enumerate(roots):
            _render_span(root, children, 0, lines, i == len(roots) - 1)
        lines.append("")
    return "\n".join(lines).rstrip() or "(no spans recorded)"


def trace_json(tracer: Tracer, trace_id: str | None = None) -> str:
    """Machine-readable dump of the tracer's spans."""
    spans = (
        tracer.spans_of(trace_id) if trace_id is not None else tracer.spans
    )
    return canonical_json([span.to_dict() for span in spans])
