"""Simulated-time tracing.

Spans are keyed to :class:`~repro.common.clock.SimClock` time, never the
wall clock, so a trace of a letter-of-credit transaction is exactly as
deterministic and replayable as the simulation that produced it: the same
seed yields byte-identical span trees, and durations mean *modelled*
latency (endorsement hops, batch service time, notary round-trips), not
host scheduling noise.

The API is context-manager based::

    with tracer.span("fabric.invoke", channel="trade-ab") as span:
        ...
        span.add_event("endorsed", endorsers=3)

Parent/child linkage follows the active-span stack within one logical
flow, and crosses node boundaries by riding on
:class:`~repro.network.messages.Message` envelopes: ``SimNetwork.send``
stamps the sender's current :class:`TraceContext` onto the message, and
delivery records a transit span under that parent — a single trace
follows a transaction through endorsement, ordering, validation, and
notarisation regardless of how many principals it touches.

Span and trace ids are sequence numbers, not random: randomness would
make traces differ run to run, defeating replayability (the same reason
the substrate bans wall clocks).  Every attribute and event recorded on
a span first passes the tracer's
:class:`~repro.telemetry.redaction.RedactionFilter`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.common.clock import SimClock
from repro.telemetry.redaction import RedactionFilter


@dataclass(frozen=True)
class TraceContext:
    """The propagatable coordinates of a span: what rides on messages."""

    trace_id: str
    span_id: str

    def as_tuple(self) -> tuple[str, str]:
        return (self.trace_id, self.span_id)

    @classmethod
    def from_tuple(cls, pair: tuple[str, str] | None) -> "TraceContext | None":
        if pair is None:
            return None
        return cls(trace_id=pair[0], span_id=pair[1])


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span."""

    time: float
    name: str
    attributes: dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """One timed operation in a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start: float
    end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)
    status: str = "ok"
    error: str | None = None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": self.attributes,
            "events": [
                {"time": e.time, "name": e.name, "attributes": e.attributes}
                for e in self.events
            ],
            "status": self.status,
            "error": self.error,
        }


class _ActiveSpan:
    """Context manager wrapper handing the span back to the caller."""

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.status = "error"
            self.span.error = exc_type.__name__
        self._tracer.end_span(self.span)
        return False  # never swallow


class Tracer:
    """Produces spans against one simulated clock.

    Finished and in-flight spans all live in :attr:`spans` (in start
    order), so renderers and tests never have to collect from two places.
    """

    def __init__(
        self,
        clock: SimClock | None = None,
        redactor: RedactionFilter | None = None,
    ) -> None:
        self.clock = clock or SimClock()
        self.redactor = redactor or RedactionFilter()
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    # -- span lifecycle

    def span(
        self,
        name: str,
        parent: TraceContext | None = None,
        **attributes: Any,
    ) -> _ActiveSpan:
        """Open a span as a context manager.

        Parentage: an explicit *parent* context wins (cross-node
        continuation); otherwise the innermost active span; otherwise the
        span roots a fresh trace.
        """
        return _ActiveSpan(self, self.start_span(name, parent=parent, **attributes))

    def start_span(
        self,
        name: str,
        parent: TraceContext | None = None,
        start: float | None = None,
        **attributes: Any,
    ) -> Span:
        """Open a span explicitly; pair with :meth:`end_span`."""
        if parent is None and self._stack:
            parent = self._stack[-1].context()
        if parent is None:
            trace_id = f"t{next(self._trace_ids):04d}"
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=f"s{next(self._span_ids):06d}",
            parent_id=parent_id,
            start=self.clock.now if start is None else start,
            attributes=self.redactor.redact_attributes(attributes),
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Span, end: float | None = None) -> None:
        span.end = self.clock.now if end is None else end
        if span.end < span.start:
            span.end = span.start
        if span in self._stack:
            self._stack.remove(span)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        parent: TraceContext | None = None,
        status: str = "ok",
        error: str | None = None,
        **attributes: Any,
    ) -> Span:
        """Record an already-completed span (e.g. a message transit whose
        start and end times are both known at delivery)."""
        span = self.start_span(name, parent=parent, start=start, **attributes)
        span.status = status
        span.error = error
        self.end_span(span, end=end)
        return span

    # -- annotations (all redacted at record time)

    def set_attribute(self, span: Span, key: str, value: Any) -> None:
        span.attributes.update(self.redactor.redact_attributes({key: value}))

    def add_event(self, span: Span, name: str, **attributes: Any) -> None:
        span.events.append(
            SpanEvent(
                time=self.clock.now,
                name=name,
                attributes=self.redactor.redact_attributes(attributes),
            )
        )

    # -- context propagation

    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def current_context(self) -> TraceContext | None:
        span = self.current_span()
        return span.context() if span is not None else None

    # -- queries

    def trace_ids(self) -> list[str]:
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def spans_of(self, trace_id: str) -> list[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def find_spans(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def to_dicts(self) -> list[dict]:
        return [span.to_dict() for span in self.spans]
