"""Privacy-aware redaction for telemetry.

The paper's whole subject is that confidential values must not cross a
boundary they were designed to stay behind — and an observability layer
is exactly such a boundary: operators read traces, event logs travel to
dashboards, metrics land in files.  Rule F102 of the static linter
("confidential value printed or logged") applies to telemetry with full
force, so every attribute recorded on a span, event, or log entry passes
through a :class:`RedactionFilter` *at record time*.

Policy:

- attribute keys carrying a confidential token by the repo's naming
  convention (the same convention the static taint pass enforces:
  ``secret``, ``pii``, ``passport``, ...) have their values replaced by
  a tagged digest — correlatable, never invertible;
- keys explicitly registered with :meth:`RedactionFilter.mark` are
  treated the same regardless of name;
- a value under the reserved key ``payload`` is never recorded verbatim:
  it is summarized to its type and canonical size;
- everything is applied recursively through dicts / lists / tuples.

The cross-check test in ``tests/telemetry`` pins the guarantee the issue
asks for: telemetry emitted during the L1 audit scenario and the
letter-of-credit run leaks nothing the audit's observers do not already
account for.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.hashing import hash_hex

#: Key fragments that mark an attribute value confidential by convention.
#: Kept in sync with ``repro.analysis.taint.CONFIDENTIAL_TOKENS``.
CONFIDENTIAL_KEY_TOKENS = (
    "secret",
    "confidential",
    "pii",
    "passport",
    "ssn",
    "password",
    "credential",
    "plaintext",
    "opening",
)

#: Reserved attribute keys whose values are summarized, never recorded.
PAYLOAD_KEYS = ("payload", "args", "value")

REDACTION_TAG = "telemetry-redaction"


def redacted_digest(value: Any) -> str:
    """The stable, non-invertible form a confidential value is recorded as."""
    return "[REDACTED:" + hash_hex(REDACTION_TAG, value)[:16] + "]"


class RedactionFilter:
    """Decides, per attribute key, whether a value may be recorded."""

    def __init__(self, extra_keys: set[str] | None = None) -> None:
        self._marked: set[str] = set(extra_keys or ())

    def mark(self, key: str) -> None:
        """Tag *key* confidential regardless of its name."""
        self._marked.add(key.lower())

    def is_confidential_key(self, key: str) -> bool:
        normalized = key.lower().replace("-", "_").replace("/", "_")
        if normalized in self._marked or key.lower() in self._marked:
            return True
        return any(token in normalized for token in CONFIDENTIAL_KEY_TOKENS)

    def is_payload_key(self, key: str) -> bool:
        return key.lower() in PAYLOAD_KEYS

    # -- application

    def redact_attributes(self, attributes: dict[str, Any]) -> dict[str, Any]:
        """The record-time gate: every telemetry attribute dict goes here."""
        return {key: self._redact(key, value) for key, value in attributes.items()}

    def _redact(self, key: str, value: Any) -> Any:
        if self.is_confidential_key(key):
            return redacted_digest(value)
        if self.is_payload_key(key):
            return self._summarize(value)
        if isinstance(value, dict):
            return {k: self._redact(str(k), v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            # Container items inherit the container key's classification
            # (already checked above), but dict items re-check their keys.
            return [self._redact(key, item) for item in value]
        return value

    def _summarize(self, value: Any) -> dict[str, Any]:
        """Shape-only record of a payload: type and approximate size."""
        from repro.common.serialization import canonical_bytes

        try:
            size = len(canonical_bytes(value))
        except (TypeError, ValueError):
            size = -1
        return {"type": type(value).__name__, "size_bytes": size}
