"""End-to-end telemetry for the simulation substrate.

Three coordinated pieces, all deterministic and all keyed to simulated
time (never the wall clock):

- **tracing** (:mod:`repro.telemetry.tracing`): spans with parent/child
  propagation that rides on network messages, so one trace follows a
  transaction across endorsers, orderers, and notaries;
- **metrics** (:mod:`repro.telemetry.metrics`): instance-scoped
  counters/gauges/histograms that the substrate's traffic stats,
  ordering batch stats, fault drop counters, and per-mechanism crypto
  cost counters all live on;
- **privacy-aware event log** (:mod:`repro.telemetry.events` +
  :mod:`repro.telemetry.redaction`): structured events whose attributes
  are redacted at record time, pinned by test to leak nothing the L1
  leakage audit does not already account for.

A :class:`Telemetry` bundle ties one clock to one tracer, one registry,
and one event log; every :class:`~repro.platforms.base.Platform` owns a
bundle and shares it with its network, ordering principal, and
execution engine.  CLI: ``repro trace`` / ``repro metrics``.
"""

from repro.common.clock import SimClock
from repro.telemetry.events import EventLog, LogEvent
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    render_diff,
)
from repro.telemetry.redaction import RedactionFilter, redacted_digest
from repro.telemetry.render import render_trace_tree, trace_json
from repro.telemetry.tracing import Span, SpanEvent, TraceContext, Tracer


class Telemetry:
    """One scope's tracer + metrics + event log on a shared clock."""

    def __init__(
        self,
        clock: SimClock | None = None,
        redactor: RedactionFilter | None = None,
    ) -> None:
        self.clock = clock or SimClock()
        self.redactor = redactor or RedactionFilter()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=self.clock, redactor=self.redactor)
        self.events = EventLog(clock=self.clock, redactor=self.redactor)

    # Convenience pass-throughs used by instrumented call sites.

    def span(self, name: str, **kwargs):
        return self.tracer.span(name, **kwargs)

    def emit(self, name: str, **attributes):
        return self.events.emit(name, **attributes)

    def counter(self, name: str, **labels):
        return self.metrics.counter(name, **labels)

    def to_dict(self) -> dict:
        """Everything this bundle recorded, JSON-serializable — the
        surface the leakage cross-check test sweeps for secrets."""
        return {
            "spans": self.tracer.to_dicts(),
            "events": self.events.to_dicts(),
            "metrics": self.metrics.snapshot(),
        }


__all__ = [
    "Telemetry",
    "Tracer",
    "Span",
    "SpanEvent",
    "TraceContext",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "diff_snapshots",
    "render_diff",
    "EventLog",
    "LogEvent",
    "RedactionFilter",
    "redacted_digest",
    "render_trace_tree",
    "trace_json",
]
