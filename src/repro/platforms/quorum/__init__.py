"""Quorum simulation: public chain, private state, private tx manager."""

from repro.platforms.quorum.network import (
    SEQUENCER_NODE,
    QuorumNetwork,
    QuorumTxResult,
)
from repro.platforms.quorum.txmanager import (
    PrivateTransactionManager,
    StoredPayload,
)

__all__ = [
    "QuorumNetwork",
    "QuorumTxResult",
    "SEQUENCER_NODE",
    "PrivateTransactionManager",
    "StoredPayload",
]
