"""The Quorum simulation.

Section 5: "Its key differentiator is the ability to store private state
separate from the public ledger...  One key limitation of the private
transaction model in Quorum is that it does not prevent the double
spending of assets...  Another major drawback of Quorum is that the public
ledger includes private transactions, including the list of participants
of the transaction, revealing to the entire network which parties are
interacting."

Both documented weaknesses are reproduced faithfully and demonstrated by
dedicated methods: :meth:`demonstrate_private_double_spend` succeeds (the
flaw), while the same spend on public state is rejected; and every private
transaction broadcast exposes its participant list to all nodes (checked
by the leakage audit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import (
    ContractError,
    DeliveryError,
    DoubleSpendError,
    MembershipError,
    OrderingError,
    PlatformError,
    PrivacyError,
    ValidationError,
)
from repro.core.mechanisms import Mechanism
from repro.crypto.hashing import hash_hex
from repro.crypto.symmetric import SymmetricKey
from repro.execution.contracts import SmartContract, StateView
from repro.ledger.block import Chain
from repro.ledger.ordering import OrdererVisibility, OrderingService
from repro.ledger.state import WorldState
from repro.ledger.transaction import Transaction, WriteEntry
from repro.network.messages import Exposure
from repro.platforms.base import (
    Platform,
    ProbeResult,
    SupportLevel,
    TxReceipt,
    TxRequest,
)
from repro.platforms.quorum.txmanager import PrivateTransactionManager
from repro.recovery.catchup import catchup_dedup_key, pick_provider, ship

SEQUENCER_NODE = "quorum-consensus"


@dataclass
class PendingRedelivery:
    """A private payload owed to a currently unreachable participant."""

    sender: str
    participant: str
    payload_hash: str
    position: int
    participants: tuple[str, ...]


@dataclass
class QuorumTxResult:
    """Outcome of one (public or private) transaction."""

    tx: Transaction
    payload_hash: str | None
    participants: list[str]
    return_values: dict[str, object]


class QuorumNetwork(Platform):
    """A Quorum network: shared public chain, per-node private state."""

    platform_name = "quorum"

    def __init__(
        self,
        seed: str = "quorum",
        consensus_operator: str = "member",
        resilient_delivery: bool = False,
    ) -> None:
        super().__init__(seed=seed)
        self.resilient_delivery = resilient_delivery
        self.network.add_node(SEQUENCER_NODE)
        self.chain = Chain("quorum-public")
        self.public_states: dict[str, WorldState] = {}
        self.private_states: dict[str, WorldState] = {}
        self.managers: dict[str, PrivateTransactionManager] = {}
        self.contracts: dict[str, SmartContract] = {}
        self.contract_hosts: dict[str, set[str]] = {}
        # Recovery bookkeeping: which chain positions each node has
        # applied privately (idempotence guard for redelivery/replay),
        # the per-node public watermark, and payloads owed to peers that
        # were unreachable when their transaction committed.
        self._applied_private: dict[str, set[int]] = {}
        self._applied_upto: dict[str, int] = {}
        self._redelivery_queue: list[PendingRedelivery] = []
        self.consensus_operator = consensus_operator
        self.sequencer = OrderingService(
            SEQUENCER_NODE,
            self.clock,
            visibility=OrdererVisibility.FULL,
            operator=consensus_operator,
            telemetry=self.telemetry,
        )

    # -- membership

    def onboard(self, name: str, attributes: dict | None = None):
        party = super().onboard(name, attributes=attributes)
        self.public_states[name] = WorldState()
        self.private_states[name] = WorldState()
        self.managers[name] = PrivateTransactionManager(
            name, rng=self.rng.fork("tm:" + name)
        )
        self._applied_private[name] = set()
        self._applied_upto[name] = 0
        if self.consensus_operator == "member" and len(self.parties) == 1:
            # First onboarded member operates consensus in this deployment.
            self.sequencer.operator = name
        return party

    # -- fault injection

    def inject_faults(self, plan) -> None:
        super().inject_faults(plan)
        self.sequencer.fault_plan = plan

    def crash_ordering(self) -> None:
        """Take the consensus/sequencing layer down."""
        self.sequencer.crash()

    def recover_ordering(self) -> None:
        self.sequencer.recover()

    def _require_sequencer(self) -> None:
        # Checked before any state mutation so a failed transaction can be
        # retried after recovery without double-applying its writes.
        if not self.sequencer.available():
            raise OrderingError(f"consensus layer {SEQUENCER_NODE!r} is down")

    # -- contract deployment

    def deploy_contract(
        self,
        deployer: str,
        contract: SmartContract,
        private_for: list[str] | None = None,
    ) -> None:
        """Deploy a contract publicly or privately.

        Private deployment distributes the code only to ``private_for``
        (plus the deployer); other nodes never see the bytecode — Quorum's
        native 'install on involved nodes' equivalent.
        """
        if deployer not in self.parties:
            raise MembershipError(f"{deployer!r} is not onboarded")
        if contract.language != "evm-solidity":
            raise ContractError("Quorum contracts must target the EVM")
        self.contracts[contract.contract_id] = contract
        if private_for is None:
            self.contract_hosts[contract.contract_id] = set(self.parties)
        else:
            hosts = set(private_for) | {deployer}
            unknown = hosts - set(self.parties)
            if unknown:
                raise MembershipError(f"unknown parties {sorted(unknown)}")
            self.contract_hosts[contract.contract_id] = hosts

    def code_visible_to(self, contract_id: str) -> set[str]:
        if contract_id not in self.contract_hosts:
            raise ContractError(f"unknown contract {contract_id!r}")
        return set(self.contract_hosts[contract_id])

    # -- transaction paths

    def _reachable(self, sender: str, target: str) -> bool:
        return not (
            self.network.is_crashed(target)
            or self.network.is_partitioned(sender, target)
        )

    def _broadcast_targets(self, sender: str) -> list[str]:
        """Nodes a broadcast from *sender* can reach right now.

        A crashed or partitioned peer simply misses the gossip (it would
        be dropped at delivery anyway) — it does not veto everyone
        else's transaction.
        """
        return [
            node
            for node in self.network.nodes()
            if node != sender and self._reachable(sender, node)
        ]

    def _live_parties(self) -> list[str]:
        return [
            node for node in sorted(self.parties)
            if not self.network.is_crashed(node)
        ]

    def _mark_applied(self, nodes: list[str], position: int) -> None:
        for node in nodes:
            if position > self._applied_upto.get(node, 0):
                self._applied_upto[node] = position

    def _apply_private(
        self, node: str, position: int, payload_hash: str
    ) -> tuple[object, bool]:
        """Resolve + execute one private payload on *node*, at most once.

        The chain position (not the payload hash, which repeats for
        byte-identical payloads) is the idempotence key, so replayed
        catch-up blocks and queued redeliveries never double-apply.
        """
        applied = self._applied_private.setdefault(node, set())
        if position in applied:
            return None, False
        resolved = self.managers[node].resolve(payload_hash)
        value, __ = self._execute(
            node,
            resolved["contract"],
            resolved["function"],
            resolved["args"],
            self.private_states[node],
        )
        applied.add(position)
        return value, True

    def _execute(
        self,
        node: str,
        contract_id: str,
        function: str,
        args: dict,
        state: WorldState,
    ):
        contract = self.contracts[contract_id]
        if node not in self.contract_hosts[contract_id]:
            raise PrivacyError(f"{node!r} has no code for {contract_id!r}")
        view = StateView(
            state.snapshot(), {k: state.version(k) for k in state.keys()}
        )
        value = contract.invoke(function, view, args)
        for key, val in view.writes.items():
            state.put(key, val)
        for key in view.deletes:
            if state.exists(key):
                state.delete(key)
        return value, view

    def send_public_transaction(
        self, sender: str, contract_id: str, function: str, args: dict
    ) -> QuorumTxResult:
        """A normal Ethereum-style transaction: everyone sees everything."""
        if sender not in self.parties:
            raise MembershipError(f"{sender!r} is not onboarded")
        self.authenticate(sender)
        if self.network.is_crashed(sender):
            raise DeliveryError(f"node {sender!r} is down")
        self._require_sequencer()
        with self.telemetry.span(
            "quorum.public_tx", sender=sender, contract=contract_id
        ):
            # A crashed node misses the block; catch-up replays it later.
            live = self._live_parties()
            return_values = {}
            view = None
            with self.telemetry.span(
                "quorum.execute", nodes=len(live)
            ):
                for node in live:
                    value, view = self._execute(
                        node, contract_id, function, args, self.public_states[node]
                    )
                    return_values[node] = value
            writes = tuple(
                WriteEntry(key=k, value=v) for k, v in sorted(view.writes.items())
            )
            tx = Transaction(
                channel="quorum-public",
                submitter=sender,
                writes=writes,
                metadata={"kind": "public", "participants": sorted(self.parties)},
                timestamp=self.clock.now,
            )
            exposure = Exposure.of(
                identities={sender},
                data_keys=set(view.writes) | set(view.reads),
                code_ids={contract_id},
            )
            with self.telemetry.span("quorum.order"):
                self.network.broadcast(
                    sender, "public-tx", {"tx_id": tx.tx_id}, exposure=exposure,
                    recipients=self._broadcast_targets(sender),
                )
                self.sequencer.submit(tx)
                self.sequencer.cut_batch("quorum-public", force=True)
                self.chain.append([tx], self.clock.now)
            self._mark_applied(live, self.chain.height)
        return QuorumTxResult(
            tx=tx, payload_hash=None,
            participants=sorted(self.parties), return_values=return_values,
        )

    def send_private_transaction(
        self,
        sender: str,
        contract_id: str,
        function: str,
        args: dict,
        private_for: list[str],
    ) -> QuorumTxResult:
        """A private transaction: payload to participants, hash to everyone.

        Faithful to the paper's two leaks: (1) the broadcast carries the
        participant list in the clear; (2) there is no cross-group double
        spend check because non-participants cannot validate.

        Unreachable recipients: with ``resilient_delivery`` the
        transaction proceeds for the reachable participants and the
        payload is queued for redelivery-until-available
        (:meth:`redeliver_pending`); without it, the transaction fails
        fast with a typed refusal *before* any state mutation, so a
        retry after heal cannot double-apply.
        """
        if sender not in self.parties:
            raise MembershipError(f"{sender!r} is not onboarded")
        self.authenticate(sender)
        if self.network.is_crashed(sender):
            raise DeliveryError(f"node {sender!r} is down")
        self._require_sequencer()
        participants = sorted(set(private_for) | {sender})
        recipients = [p for p in participants if p != sender]
        unavailable = [
            p for p in recipients if not self._reachable(sender, p)
        ]
        if unavailable and not self.resilient_delivery:
            # Surface the same refusal a direct send would raise.
            self.network._check_link(sender, unavailable[0])
            raise DeliveryError(f"node {unavailable[0]!r} is unreachable")
        with self.telemetry.span(
            "quorum.private_tx",
            sender=sender,
            contract=contract_id,
            participants=len(participants),
        ):
            payload = {"contract": contract_id, "function": function, "args": args}
            # The encrypted payload crosses the wire once per reachable
            # recipient; the ciphertext itself exposes nothing (empty
            # exposure).  These sends precede every private-state
            # mutation (distribution itself is idempotent).
            with self.telemetry.span("quorum.distribute"):
                payload_hash = self.managers[sender].distribute(
                    payload, participants, self.managers,
                    skip=tuple(unavailable),
                )
                self.telemetry.metrics.counter(
                    "crypto.ops", mechanism="private-payload-encryption"
                ).inc(len(participants) - 1 - len(unavailable))
                payload_hop = (
                    self.network.send_with_retry
                    if self.resilient_delivery
                    else self.network.send
                )
                for participant in recipients:
                    if participant not in unavailable:
                        payload_hop(
                            sender, participant, "private-payload",
                            {"hash": payload_hash}, exposure=Exposure(),
                        )
            # Participants resolve the payload and update their private
            # state.  The transaction will land at the next chain height;
            # applying under that position makes replay idempotent.
            position = self.chain.height + 1
            return_values = {}
            with self.telemetry.span(
                "quorum.execute", nodes=len(participants) - len(unavailable)
            ):
                for participant in participants:
                    if participant in unavailable:
                        continue
                    value, __ = self._apply_private(
                        participant, position, payload_hash
                    )
                    return_values[participant] = value
            # The public transaction: hash only — but participants in the clear.
            tx = Transaction(
                channel="quorum-public",
                submitter=sender,
                private_hashes={"payload": payload_hash},
                metadata={"kind": "private", "participants": participants},
                timestamp=self.clock.now,
            )
            leak_exposure = Exposure.of(identities=set(participants))
            with self.telemetry.span("quorum.order"):
                self.network.broadcast(
                    sender, "private-tx", {"tx_id": tx.tx_id},
                    exposure=leak_exposure,
                    recipients=self._broadcast_targets(sender),
                )
                self.sequencer.submit(tx)
                self.sequencer.cut_batch("quorum-public", force=True)
                self.chain.append([tx], self.clock.now)
            self._mark_applied(self._live_parties(), self.chain.height)
            for participant in unavailable:
                self._redelivery_queue.append(
                    PendingRedelivery(
                        sender=sender,
                        participant=participant,
                        payload_hash=payload_hash,
                        position=position,
                        participants=tuple(participants),
                    )
                )
                self.telemetry.metrics.counter("recovery.redelivery.queued").inc()
                self.telemetry.events.emit(
                    "recovery.redelivery_queued",
                    participant=participant,
                    position=position,
                )
        return QuorumTxResult(
            tx=tx, payload_hash=payload_hash,
            participants=participants, return_values=return_values,
        )

    # ------------------------------------------------------------------
    # Unified transaction pipeline (Platform hooks)
    #
    # Quorum mapping: ``private_for`` selects the private-transaction
    # path (payload to participants, hash to everyone — with the
    # documented participant-list leak); otherwise the public path runs.
    # ``private_args`` is refused: private payloads must stay replayable
    # to rebuild private state, so deletable off-ledger data contradicts
    # the architecture (Table 1's off-chain peer data '-').  The
    # sequencer cuts per transaction natively, so ``force_cut`` has no
    # batch to act on and the default sequential batch hook applies.
    # ------------------------------------------------------------------

    def _submit_one_native(self, request: TxRequest) -> TxReceipt:
        if request.private_args is not None:
            raise PlatformError(
                "quorum private payloads must remain replayable to rebuild "
                "private state; deletable TxRequest.private_args data is "
                "architecturally unsupported"
            )
        submitted_at = self.clock.now
        if request.private_for:
            result = self.send_private_transaction(
                request.submitter,
                request.contract_id,
                request.function,
                dict(request.args),
                private_for=list(request.private_for),
            )
        else:
            result = self.send_public_transaction(
                request.submitter,
                request.contract_id,
                request.function,
                dict(request.args),
            )
        return TxReceipt(
            request=request,
            platform=self.platform_name,
            tx_id=result.tx.tx_id,
            committed=True,
            status="committed",
            submitted_at=submitted_at,
            committed_at=self.clock.now,
            result=result,
            info={
                "kind": result.tx.metadata.get("kind"),
                "participants": list(result.participants),
                "payload_hash": result.payload_hash,
                "height": self.chain.height,
            },
        )

    def _state_snapshot(self) -> dict:
        return {
            "platform": self.platform_name,
            "height": self.chain.height,
            "chain": [tx.tx_id for tx in self.chain.transactions()],
            "public": {
                name: self.public_states[name].snapshot()
                for name in sorted(self.parties)
            },
            "private": {
                name: self.private_states[name].snapshot()
                for name in sorted(self.parties)
            },
        }

    def redeliver_pending(self) -> int:
        """Serve queued private payloads to now-reachable participants.

        The retry-until-available half of resilient private delivery: a
        participant that was crashed or partitioned when its transaction
        committed receives the payload (entitlement re-checked by the
        holding manager) and applies it under the original chain
        position, so a participant that already caught up via
        :meth:`recover` is not double-applied.  Returns how many queued
        payloads were applied; still-unreachable ones stay queued.
        """
        applied = 0
        remaining: list[PendingRedelivery] = []
        for item in self._redelivery_queue:
            node = item.participant
            if item.position in self._applied_private.get(node, set()):
                continue  # already applied through crash catch-up
            if self.network.is_crashed(node):
                remaining.append(item)
                continue
            if not self._ensure_payload(node, item.payload_hash, item.participants):
                remaining.append(item)
                continue
            __, did_apply = self._apply_private(
                node, item.position, item.payload_hash
            )
            if did_apply:
                applied += 1
                self._mark_applied([node], item.position)
                self.telemetry.metrics.counter("recovery.redelivery.applied").inc()
        self._redelivery_queue = remaining
        return applied

    # ------------------------------------------------------------------
    # Crash recovery (Platform hooks)
    #
    # Durable per node: the public chain (shared, append-only) and
    # checkpoints.  Volatile: public/private state, the transaction
    # manager's payload store, and the applied-position bookkeeping.
    # Catch-up visibility rule: the public chain replays to everyone,
    # but private payloads are re-delivered only by managers that hold
    # them and only to nodes named in the payload's own participant
    # list (enforced in ``PrivateTransactionManager.redeliver``).
    # ------------------------------------------------------------------

    def _ensure_payload(
        self, name: str, payload_hash: str, participants: tuple[str, ...] | list[str]
    ) -> bool:
        """Get *payload_hash* into *name*'s manager from a live holder."""
        manager = self.managers[name]
        if manager.has_payload(payload_hash):
            return True
        for holder in sorted(participants):
            if holder == name or holder not in self.managers:
                continue
            if not self._reachable(holder, name):
                continue
            if not self.managers[holder].has_payload(payload_hash):
                continue
            self.managers[holder].redeliver(payload_hash, manager)
            ship(
                self.network,
                holder,
                name,
                "catchup-payload",
                {"hash": payload_hash},
                exposure=Exposure(),  # ciphertext: reveals nothing
                dedup_key=catchup_dedup_key("quorum", "payload", name, payload_hash),
            )
            self.telemetry.metrics.counter("recovery.redelivered").inc()
            return True
        return False

    def _checkpoint_data(self, name: str) -> dict:
        return {
            "heights": {"public": self._applied_upto.get(name, 0)},
            "state_hashes": {
                "public": hash_hex(
                    "repro/recovery/quorum-public",
                    self.public_states[name].snapshot(),
                ),
                "private": hash_hex(
                    "repro/recovery/quorum-private",
                    self.private_states[name].snapshot(),
                ),
            },
            "pending": {
                "payload_hashes": self.managers[name].payload_hashes(),
                "applied_private": sorted(self._applied_private.get(name, ())),
            },
            "snapshots": {
                "public": self.public_states[name].dump(),
                "private": self.private_states[name].dump(),
            },
        }

    def _drop_volatile(self, name: str) -> None:
        self.public_states[name] = WorldState()
        self.private_states[name] = WorldState()
        self.managers[name] = PrivateTransactionManager(
            name, rng=self.rng.fork("tm:" + name)
        )
        self._applied_private[name] = set()
        self._applied_upto[name] = 0

    def _restore_checkpoint(self, name: str, checkpoint) -> None:
        if checkpoint is None:
            return
        self.public_states[name] = WorldState.from_dump(
            checkpoint.snapshots.get("public", {})
        )
        self.private_states[name] = WorldState.from_dump(
            checkpoint.snapshots.get("private", {})
        )
        self._applied_upto[name] = checkpoint.height_of("public")
        self._applied_private[name] = {
            int(position)
            for position in checkpoint.pending.get("applied_private", [])
        }

    def _catch_up(self, name: str, checkpoint) -> dict:
        provider = pick_provider(self.network, self.parties, name)
        if provider is None:
            return {"items": 0, "blocks_behind": 0}
        items = 0
        blocks_behind = 0
        # 1. Re-fetch the payloads the manager held at checkpoint time
        #    (the durable record of the pending queue): the ciphertexts
        #    themselves are volatile, the entitlement is not.
        held_hashes = (
            list(checkpoint.pending.get("payload_hashes", []))
            if checkpoint is not None
            else []
        )
        payload_participants: dict[str, tuple[str, ...]] = {}
        for tx in self.chain.transactions():
            if tx.metadata.get("kind") == "private":
                payload_participants[tx.private_hashes["payload"]] = tuple(
                    tx.metadata.get("participants", ())
                )
        for payload_hash in held_hashes:
            entitled = payload_participants.get(payload_hash, ())
            if name in entitled and self._ensure_payload(
                name, payload_hash, entitled
            ):
                items += 1
        # 2. Replay the public chain above the node's watermark: public
        #    writes apply directly; private transactions re-execute iff
        #    this node is in the participant list and the payload can be
        #    re-fetched from an entitled live holder.
        since = self._applied_upto.get(name, 0)
        state = self.public_states[name]
        for block in self.chain.blocks():
            if block.height <= since:
                continue
            blocks_behind += 1
            for tx in block.transactions:
                kind = tx.metadata.get("kind")
                if kind == "public":
                    ship(
                        self.network,
                        provider,
                        name,
                        "catchup-block",
                        {"tx_id": tx.tx_id, "height": block.height},
                        exposure=Exposure.of(
                            identities={tx.submitter},
                            data_keys={w.key for w in tx.writes},
                        ),
                        dedup_key=catchup_dedup_key(
                            "quorum", "public", name, block.height
                        ),
                    )
                    for write in tx.writes:
                        if write.is_delete:
                            if state.exists(write.key):
                                state.delete(write.key)
                        else:
                            state.put(write.key, write.value)
                    items += 1
                elif kind == "private":
                    ship(
                        self.network,
                        provider,
                        name,
                        "catchup-block",
                        {"tx_id": tx.tx_id, "height": block.height},
                        # The public chain's documented leak: the
                        # participant list travels in the clear.
                        exposure=Exposure.of(
                            identities=set(tx.metadata.get("participants", ()))
                        ),
                        dedup_key=catchup_dedup_key(
                            "quorum", "public", name, block.height
                        ),
                    )
                    if name not in tx.metadata.get("participants", ()):
                        continue
                    payload_hash = tx.private_hashes["payload"]
                    if self._ensure_payload(
                        name, payload_hash,
                        tuple(tx.metadata.get("participants", ())),
                    ):
                        __, did_apply = self._apply_private(
                            name, block.height, payload_hash
                        )
                        if did_apply:
                            items += 1
            self._applied_upto[name] = max(
                self._applied_upto.get(name, 0), block.height
            )
        self.telemetry.metrics.counter("recovery.catchup.items").inc(items)
        return {"items": items, "blocks_behind": blocks_behind}

    # -- the documented double-spend flaw

    def demonstrate_private_double_spend(
        self, owner: str, asset_key: str, group_a: list[str], group_b: list[str]
    ) -> dict:
        """Spend the same private asset into two disjoint groups.

        Succeeds — the paper's point.  Returns the resulting divergent
        private views so tests can assert both groups believe they own it.
        """
        def spend(view: StateView, args: dict):
            view.put(args["asset"], {"owner": args["to"]})
            return args["to"]

        contract = SmartContract(
            contract_id="asset-private", version=1, language="evm-solidity",
            functions={"spend": spend},
        )
        everyone = sorted(self.parties)
        self.deploy_contract(owner, contract, private_for=everyone)
        self.send_private_transaction(
            owner, "asset-private", "spend",
            {"asset": asset_key, "to": group_a[0]}, private_for=group_a,
        )
        self.send_private_transaction(
            owner, "asset-private", "spend",
            {"asset": asset_key, "to": group_b[0]}, private_for=group_b,
        )
        return {
            "group_a_view": self.private_states[group_a[0]].get(asset_key),
            "group_b_view": self.private_states[group_b[0]].get(asset_key),
        }

    def attempt_public_double_spend(
        self, owner: str, asset_key: str, first_to: str, second_to: str
    ) -> None:
        """The same spend on public state: the second transfer is rejected
        because every node validates ownership against shared state."""
        def spend(view: StateView, args: dict):
            current = view.get(args["asset"])
            if current is not None and current.get("owner") != args["from"]:
                raise DoubleSpendError(
                    f"{args['from']!r} does not own {args['asset']!r}"
                )
            view.put(args["asset"], {"owner": args["to"]})
            return args["to"]

        contract = SmartContract(
            contract_id="asset-public", version=1, language="evm-solidity",
            functions={"spend": spend},
        )
        self.deploy_contract(owner, contract)
        self.send_public_transaction(
            owner, "asset-public", "spend",
            {"asset": asset_key, "from": owner, "to": first_to},
        )
        # Second spend by the original owner must now fail on every node.
        self.send_public_transaction(
            owner, "asset-public", "spend",
            {"asset": asset_key, "from": owner, "to": second_to},
        )

    # -- private-state replay (node recovery)

    def rebuild_private_state(self, node: str) -> WorldState:
        """Reconstruct *node*'s private state by replaying the chain.

        This is how a recovering Quorum node restores its private state:
        walk the public chain, and for every private transaction whose
        payload this node's manager holds, re-execute it.  The procedure
        is also the executable reason Table 1 marks Quorum's off-chain
        peer data as requires-rewrite: if any payload was deleted (say,
        for a GDPR request), the replay raises and the node cannot
        recover — deletable data is incompatible with this architecture.
        """
        if node not in self.parties:
            raise MembershipError(f"{node!r} is not onboarded")
        manager = self.managers[node]
        rebuilt = WorldState()
        for tx in self.chain.transactions():
            if tx.metadata.get("kind") != "private":
                continue
            if node not in tx.metadata.get("participants", []):
                continue
            payload_hash = tx.private_hashes["payload"]
            resolved = manager.resolve(payload_hash)  # raises if deleted
            contract = self.contracts[resolved["contract"]]
            view = StateView(
                rebuilt.snapshot(),
                {k: rebuilt.version(k) for k in rebuilt.keys()},
            )
            contract.invoke(resolved["function"], view, resolved["args"])
            for key, value in view.writes.items():
                rebuilt.put(key, value)
            for key in view.deletes:
                if rebuilt.exists(key):
                    rebuilt.delete(key)
        return rebuilt

    def verify_private_state(self, node: str) -> bool:
        """True iff the node's live private state matches a fresh replay."""
        return (
            self.rebuild_private_state(node).snapshot()
            == self.private_states[node].snapshot()
        )

    # -- private-state consistency checking

    def private_state_views(self, key: str) -> dict[str, object]:
        """Every node's view of a private-state key (absent nodes omitted)."""
        return {
            node: self.private_states[node].get(key)
            for node in sorted(self.parties)
            if self.private_states[node].exists(key)
        }

    def private_state_consistent(self, key: str) -> bool:
        """True iff all holders of *key* agree on its value.

        Divergence is exactly what the paper's double-spend flaw produces:
        two participant groups with contradictory private views and no
        protocol-level way to reconcile them.
        """
        views = list(self.private_state_views(key).values())
        return all(v == views[0] for v in views[1:])

    def divergent_keys(self) -> list[str]:
        """All private-state keys on which some nodes disagree."""
        keys = set()
        for node in self.parties:
            keys.update(self.private_states[node].keys())
        return sorted(
            key for key in keys if not self.private_state_consistent(key)
        )

    # ------------------------------------------------------------------
    # Table 1 capability probes (Quorum column)
    # ------------------------------------------------------------------

    def _probe_fixture(self) -> str:
        for org in ("probe-n1", "probe-n2", "probe-n3"):
            if org not in self.parties:
                self.onboard(org)
        contract_id = "probe-store"
        if contract_id not in self.contracts:
            def put(view: StateView, args: dict):
                view.put(args["key"], args["value"])
                return args["value"]

            contract = SmartContract(
                contract_id=contract_id, version=1, language="evm-solidity",
                functions={"put": put},
            )
            self.deploy_contract("probe-n1", contract)
        return contract_id

    def _probe_separation_of_ledgers_parties(self) -> ProbeResult:
        contract_id = self._probe_fixture()
        result = self.send_private_transaction(
            "probe-n1", contract_id, "put", {"key": "s", "value": 1},
            private_for=["probe-n2"],
        )
        self.network.run()
        outsider = self.network.node("probe-n3").observer
        data_leaked = "s" in outsider.seen_data_keys
        # Private state separates *data*; but participant identities leak
        # network-wide (still counts as ledger separation for parties at
        # the data level — Table 1 rates the row '+').
        return self._result(
            Mechanism.SEPARATION_OF_LEDGERS_PARTIES,
            SupportLevel.NATIVE if not data_leaked else SupportLevel.REWRITE,
            "private state partitions the ledger per participant group "
            "(though the participant list itself is broadcast — see the "
            "leakage audit)",
        )

    def _probe_one_time_public_keys(self) -> ProbeResult:
        # Ethereum-style accounts are just key pairs: a party can mint a
        # fresh externally-owned account at will, but linking certificates
        # and key management are application work: '*'.
        self._probe_fixture()
        fresh = self.scheme.keygen(self.rng.fork("quorum-fresh-account"))
        account_address = fresh.public.fingerprint()
        acceptable = len(account_address) == 16  # any key maps to an address
        return self._result(
            Mechanism.ONE_TIME_PUBLIC_KEYS,
            SupportLevel.IMPLEMENTABLE if acceptable else SupportLevel.REWRITE,
            "account-model addresses are derivable from any fresh key; the "
            "identity-linking layer must be built by the application",
        )

    def _probe_zkp_of_identity(self) -> ProbeResult:
        # Node-level permissioning with known identities; no anonymous
        # credential layer exists in the protocol: '-'.
        has_credential_hook = hasattr(self, "idemix_issuer")
        return self._result(
            Mechanism.ZKP_OF_IDENTITY,
            SupportLevel.NATIVE if has_credential_hook else SupportLevel.REWRITE,
            "the permissioned node list is identity-based; anonymous "
            "credentials would require rewriting the membership layer",
            exercised=False,
        )

    def _probe_separation_of_ledgers_data(self) -> ProbeResult:
        contract_id = self._probe_fixture()
        self.send_private_transaction(
            "probe-n1", contract_id, "put", {"key": "priv-k", "value": 9},
            private_for=["probe-n2"],
        )
        self.network.run()
        non_participant_state = self.private_states["probe-n3"]
        isolated = not non_participant_state.exists("priv-k")
        return self._result(
            Mechanism.SEPARATION_OF_LEDGERS_DATA,
            SupportLevel.NATIVE if isolated else SupportLevel.REWRITE,
            "private state updates apply only at payload recipients; the "
            "public chain carries the payload hash",
        )

    def _probe_off_chain_peer_data(self) -> ProbeResult:
        # Private payloads must remain replayable to rebuild private state;
        # deleting one breaks resolution, so deletable off-chain peer data
        # conflicts with the architecture: '-'.
        contract_id = self._probe_fixture()
        result = self.send_private_transaction(
            "probe-n1", contract_id, "put", {"key": "gdpr-k", "value": "pii"},
            private_for=["probe-n2"],
        )
        manager = self.managers["probe-n2"]
        manager.delete(result.payload_hash)
        try:
            manager.resolve(result.payload_hash)
            still_works = True
        except Exception:
            still_works = False
        return self._result(
            Mechanism.OFF_CHAIN_PEER_DATA,
            SupportLevel.NATIVE if still_works else SupportLevel.REWRITE,
            "deleting a private payload breaks state replay at that node; "
            "deletable peer data requires re-architecting private state",
        )

    def _probe_symmetric_encryption(self) -> ProbeResult:
        contract_id = self._probe_fixture()
        key = SymmetricKey.from_seed("quorum-probe-key")
        ciphertext = key.encrypt(b"confidential", self.rng.fork("sym"))
        self.send_public_transaction(
            "probe-n1", contract_id, "put",
            {"key": "enc", "value": ciphertext.body.hex()},
        )
        ok = (
            self.public_states["probe-n2"].get("enc") == ciphertext.body.hex()
            and key.decrypt(ciphertext) == b"confidential"
        )
        return self._result(
            Mechanism.SYMMETRIC_ENCRYPTION,
            SupportLevel.NATIVE if ok else SupportLevel.REWRITE,
            "contract storage is opaque bytes; encrypted values round-trip",
        )

    def _probe_merkle_tear_offs(self) -> ProbeResult:
        # Transactions are monolithic RLP payloads with no component-group
        # Merkle structure; a participant receives all or nothing: '-'.
        contract_id = self._probe_fixture()
        result = self.send_private_transaction(
            "probe-n1", contract_id, "put", {"key": "t", "value": 5},
            private_for=["probe-n2"],
        )
        resolved = self.managers["probe-n2"].resolve(result.payload_hash)
        all_or_nothing = set(resolved) == {"contract", "function", "args"}
        has_filtered_api = hasattr(result.tx, "filtered")
        level = (
            SupportLevel.NATIVE if has_filtered_api
            else SupportLevel.REWRITE if all_or_nothing
            else SupportLevel.IMPLEMENTABLE
        )
        return self._result(
            Mechanism.MERKLE_TEAR_OFFS, level,
            "payload recipients receive the full transaction payload; no "
            "partial-visibility structure exists to tear off",
        )

    def _probe_install_on_involved_nodes(self) -> ProbeResult:
        def noop(view: StateView, args: dict):
            return None

        contract = SmartContract(
            contract_id="probe-private-code", version=1, language="evm-solidity",
            functions={"noop": noop},
        )
        self._probe_fixture()
        self.deploy_contract("probe-n1", contract, private_for=["probe-n2"])
        visible = self.code_visible_to("probe-private-code")
        return self._result(
            Mechanism.INSTALL_ON_INVOLVED_NODES,
            SupportLevel.NATIVE if visible == {"probe-n1", "probe-n2"}
            else SupportLevel.REWRITE,
            f"private contract code distributed to {sorted(visible)} only",
        )

    def _probe_off_chain_execution_engine(self) -> ProbeResult:
        # EVM execution is the state-transition function of the chain
        # itself; moving it off-chain breaks consensus: '-'.
        execution_separable = False
        return self._result(
            Mechanism.OFF_CHAIN_EXECUTION_ENGINE,
            SupportLevel.NATIVE if execution_separable else SupportLevel.REWRITE,
            "EVM execution *is* the consensus state-transition function; "
            "an external engine would fork every node's state",
            exercised=False,
        )

    def _probe_trusted_execution_environment(self) -> ProbeResult:
        return self._result(
            Mechanism.TRUSTED_EXECUTION_ENVIRONMENT,
            SupportLevel.REWRITE,
            "no enclave path in the transaction pipeline; EVM execution "
            "inside TEEs requires rewriting the client",
            exercised=False,
        )

    def _probe_private_sequencing_service(self) -> ProbeResult:
        self._probe_fixture()
        member_operated = self.sequencer.is_member_operated(set(self.parties))
        return self._result(
            Mechanism.PRIVATE_SEQUENCING_SERVICE,
            SupportLevel.NATIVE if member_operated else SupportLevel.REWRITE,
            "consortium members run the consensus (Raft/IBFT) nodes "
            "themselves; no third-party sequencer exists",
        )
