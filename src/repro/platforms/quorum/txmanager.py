"""Quorum's private transaction manager (Tessera/Constellation stand-in).

Section 5: "Private state and smart contracts are updated through private
transactions that are distributed to all nodes in the network.  However
only a hash of the submitted data is included in the transaction itself.
The parties involved in the transaction receive encrypted data, which
means decryption is required before a party can update their private
state."

Each node runs a manager holding encrypted payloads keyed by hash.  The
sender's manager encrypts the payload once per recipient (pairwise keys
derived from PKI) and pushes the ciphertexts; everyone else only ever sees
the hash.  Because private *state* is reconstructed by replaying these
payloads, deleting one breaks the node — the executable reason Quorum's
Table 1 off-chain-data cell is '—'.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import OffChainError, PrivacyError
from repro.common.rng import DeterministicRNG
from repro.common.serialization import canonical_bytes, from_canonical_json
from repro.crypto.hashing import hash_hex, hkdf
from repro.crypto.symmetric import Ciphertext, SymmetricKey


def _pair_key(a: str, b: str) -> SymmetricKey:
    """Deterministic pairwise key (stand-in for the ECDH-derived key)."""
    first, second = sorted((a, b))
    return SymmetricKey(hkdf(f"{first}|{second}".encode(), "repro/quorum/pair"))


@dataclass
class StoredPayload:
    """One encrypted private payload held by a node's manager."""

    payload_hash: str
    ciphertext: Ciphertext
    sender: str
    participants: tuple[str, ...]


class PrivateTransactionManager:
    """Per-node encrypted payload store and distribution endpoint."""

    def __init__(self, owner: str, rng: DeterministicRNG | None = None) -> None:
        self.owner = owner
        self._rng = rng or DeterministicRNG("txmanager:" + owner)
        self._payloads: dict[str, StoredPayload] = {}

    def distribute(
        self,
        payload: dict,
        participants: list[str],
        managers: dict[str, "PrivateTransactionManager"],
        skip: tuple[str, ...] = (),
    ) -> str:
        """Encrypt *payload* for each participant and push it to them.

        Returns the payload hash that goes into the public transaction.
        Participants in *skip* (currently unreachable) are recorded in
        the payload's participant list but receive nothing now; the
        redelivery path (:meth:`redeliver`) serves them later.
        """
        payload_hash = hash_hex("repro/quorum/payload", payload)
        raw = canonical_bytes(payload)
        for participant in participants:
            if participant in skip:
                continue
            manager = managers.get(participant)
            if manager is None:
                raise PrivacyError(f"no transaction manager for {participant!r}")
            key = _pair_key(self.owner, participant)
            ciphertext = key.encrypt(raw, self._rng)
            manager.receive(
                StoredPayload(
                    payload_hash=payload_hash,
                    ciphertext=ciphertext,
                    sender=self.owner,
                    participants=tuple(participants),
                )
            )
        return payload_hash

    def redeliver(
        self, payload_hash: str, recipient: "PrivateTransactionManager"
    ) -> bool:
        """Re-encrypt a held payload for an entitled, newly reachable peer.

        The entitlement gate is the payload's own participant list — a
        manager will never re-serve a payload to a node that was not a
        party to the original transaction, which is what keeps catch-up
        privacy-preserving.  Idempotent: returns False if the recipient
        already holds the payload.
        """
        stored = self._payloads.get(payload_hash)
        if stored is None:
            raise OffChainError(
                f"{self.owner!r} holds no payload {payload_hash!r}"
            )
        if recipient.owner not in stored.participants:
            raise PrivacyError(
                f"{recipient.owner!r} was not a party to payload "
                f"{payload_hash!r}; refusing redelivery"
            )
        if recipient.has_payload(payload_hash):
            return False
        # Decrypt with the original pairwise key, re-encrypt under the
        # redeliverer<->recipient pair so the recipient can resolve it
        # (resolve derives the key from the stored sender, which for a
        # redelivered copy is this manager's owner).
        original = _pair_key(stored.sender, self.owner)
        raw = original.decrypt(stored.ciphertext)
        key = _pair_key(self.owner, recipient.owner)
        recipient.receive(
            StoredPayload(
                payload_hash=payload_hash,
                ciphertext=key.encrypt(raw, self._rng),
                sender=self.owner,
                participants=stored.participants,
            )
        )
        return True

    def receive(self, stored: StoredPayload) -> None:
        self._payloads[stored.payload_hash] = stored

    def has_payload(self, payload_hash: str) -> bool:
        return payload_hash in self._payloads

    def resolve(self, payload_hash: str) -> dict:
        """Decrypt a payload this node was party to."""
        stored = self._payloads.get(payload_hash)
        if stored is None:
            raise PrivacyError(
                f"{self.owner!r} was not a party to payload {payload_hash!r}"
            )
        key = _pair_key(stored.sender, self.owner)
        return from_canonical_json(key.decrypt(stored.ciphertext).decode("utf-8"))

    def delete(self, payload_hash: str) -> None:
        """Remove a payload — and break replayability (see module doc)."""
        if payload_hash not in self._payloads:
            raise OffChainError(f"no payload {payload_hash!r} to delete")
        del self._payloads[payload_hash]

    def payload_hashes(self) -> list[str]:
        return sorted(self._payloads)
