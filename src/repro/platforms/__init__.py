"""Platform simulations: Hyperledger Fabric, Corda, and Quorum."""

from repro.platforms.base import (
    Party,
    Platform,
    ProbeResult,
    SupportLevel,
)
from repro.platforms.corda import CordaNetwork
from repro.platforms.fabric import FabricNetwork
from repro.platforms.quorum import QuorumNetwork

__all__ = [
    "Party",
    "Platform",
    "ProbeResult",
    "SupportLevel",
    "CordaNetwork",
    "FabricNetwork",
    "QuorumNetwork",
]
