"""Common platform API.

Every platform simulation (Fabric, Corda, Quorum) implements this
interface: organizations onboard through PKI, transactions run through the
platform's native flow, and each platform answers capability probes.

A probe is **executable evidence**: the platform either demonstrates the
mechanism through its native API (``NATIVE``), demonstrates it by
composing library crypto on top of its primitives (``IMPLEMENTABLE``), or
demonstrates the architectural constraint that blocks it (``REWRITE``).
The Table 1 reproduction consumes these results.

The **unified transaction pipeline** lives here too: a
:class:`TxRequest` describes one submission in platform-neutral terms, and
:meth:`Platform.submit` / :meth:`Platform.submit_many` route it through the
platform's *native* lifecycle (endorse→order→validate→commit on Fabric,
flow+notarise on Corda, distribute→execute→order on Quorum), returning a
:class:`TxReceipt`.  Privacy semantics stay platform-specific — an adapter
refuses request shapes its architecture cannot honor (e.g. Quorum rejects
deletable private payloads) rather than silently approximating them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.clock import SimClock
from repro.common.errors import PlatformError, ReproError
from repro.common.rng import DeterministicRNG
from repro.common.serialization import canonical_bytes
from repro.crypto.hashing import tagged_hash
from repro.crypto.pki import Certificate, CertificateAuthority, MembershipService
from repro.crypto.signatures import PrivateKey, SignatureScheme
from repro.core.mechanisms import Mechanism
from repro.network.simnet import SimNetwork
from repro.telemetry import Telemetry


class SupportLevel(enum.Enum):
    """Table 1 legend: native / implementable / requires rewrite / N/A."""

    NATIVE = "+"
    IMPLEMENTABLE = "*"
    REWRITE = "-"
    NOT_APPLICABLE = "N/A"


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of exercising one mechanism on one platform."""

    platform: str
    mechanism: Mechanism
    level: SupportLevel
    evidence: str
    exercised: bool = True


@dataclass
class Party:
    """An onboarded organization: name, signing key, and certificate."""

    name: str
    key: PrivateKey
    certificate: Certificate

    @property
    def public_key(self):
        return self.key.public


@dataclass(frozen=True)
class TxRequest:
    """One platform-neutral transaction submission.

    - ``scope`` names the ledger partition where one exists (a Fabric
      channel); platforms without partitions ignore it.
    - ``private_for`` restricts data visibility to the named parties plus
      the submitter (Quorum privacy groups, Corda participants).  Fabric
      rejects it: its confidentiality tools are channels and PDCs.
    - ``private_args`` carries data that must stay off the shared ledger
      (Fabric PDC writes, keyed by collection name).  Quorum rejects it:
      private payloads must remain replayable, so deletable off-ledger
      data is architecturally unsupported (Table 1).
    - ``options`` holds platform-specific tuning (Fabric ``endorsers`` /
      ``anonymous``) that does not change what the transaction *does*.
    - ``metadata`` is caller bookkeeping, echoed untouched on the receipt.
    """

    submitter: str
    contract_id: str
    function: str
    args: dict = field(default_factory=dict)
    scope: str | None = None
    private_for: tuple[str, ...] | None = None
    private_args: dict | None = None
    options: dict = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)


@dataclass
class TxReceipt:
    """The unified outcome of one submitted :class:`TxRequest`.

    ``committed`` is True iff the transaction mutated committed state;
    ``status`` is ``"committed"``, a platform validation code (e.g.
    ``"MVCC_READ_CONFLICT"``), or ``"rejected:<ErrorType>"`` for requests
    the platform refused.  ``result`` carries the native flow's return
    value so pipeline callers lose nothing over the native entrypoints.
    """

    request: TxRequest
    platform: str
    tx_id: str | None
    committed: bool
    status: str
    submitted_at: float
    committed_at: float | None = None
    result: object = None
    info: dict = field(default_factory=dict)

    @property
    def latency(self) -> float | None:
        """Simulated submit-to-commit latency; None if never committed."""
        if self.committed_at is None:
            return None
        return self.committed_at - self.submitted_at


def rejection_receipt(
    request: TxRequest, platform: str, submitted_at: float, error: ReproError
) -> TxReceipt:
    """A failed receipt for a request the platform's native flow refused."""
    return TxReceipt(
        request=request,
        platform=platform,
        tx_id=None,
        committed=False,
        status=f"rejected:{type(error).__name__}",
        submitted_at=submitted_at,
        info={"error": str(error)},
    )


class Platform:
    """Base class for the three platform simulations."""

    platform_name = "abstract"
    open_source = True

    def __init__(self, seed: str = "platform") -> None:
        self.clock = SimClock()
        self.rng = DeterministicRNG(seed)
        self.scheme = SignatureScheme()
        # One Telemetry bundle per platform: the network, ordering service,
        # execution engine, and use-case workflows all record into it, so a
        # single trace follows a transaction across every principal.
        self.telemetry = Telemetry(clock=self.clock)
        self.network = SimNetwork(
            clock=self.clock, rng=self.rng.fork("net"), telemetry=self.telemetry
        )
        self.ca = CertificateAuthority(
            f"{self.platform_name}-root-ca", self.scheme, self.clock,
            rng=self.rng.fork("ca"),
        )
        self.membership = MembershipService()
        self.membership.register_authority(self.ca)
        self.parties: dict[str, Party] = {}
        # Durable checkpoint storage: lives outside the nodes (disk
        # survives the process), so it is *not* wiped by crash().
        from repro.recovery.checkpoint import CheckpointStore

        self.checkpoints = CheckpointStore(telemetry=self.telemetry)

    # -- onboarding

    def onboard(self, name: str, attributes: dict | None = None) -> Party:
        """Verify and enroll an organization; creates its network node."""
        if name in self.parties:
            raise PlatformError(f"party {name!r} already onboarded")
        key = self.scheme.keygen_from_seed(f"{self.platform_name}/{name}")
        certificate = self.ca.issue(name, key.public, attributes=attributes)
        self.membership.enroll(certificate)
        self.network.add_node(name)
        party = Party(name=name, key=key, certificate=certificate)
        self.parties[name] = party
        return party

    def party(self, name: str) -> Party:
        if name not in self.parties:
            raise PlatformError(f"unknown party {name!r}")
        return self.parties[name]

    def authenticate(self, name: str) -> Party:
        """Resolve *name* and re-validate its certificate chain.

        Every native submission path calls this first, modeling the
        per-request identity check real deployments perform.  The CA's
        chain-validation cache makes repeats cheap; expiry and revocation
        stay live, so a revoked party is refused on its next submission.
        """
        party = self.party(name)
        self.ca.verify(party.certificate)
        return party

    # -- the unified transaction pipeline

    def submit(self, request: TxRequest) -> TxReceipt:
        """Route one request through the platform's native lifecycle.

        Error semantics match the native entrypoint: a refused or
        invalidated transaction raises the same typed error the native
        call would (use :meth:`submit_many` for capture-don't-raise
        batch semantics).
        """
        receipt = self._submit_one_native(request)
        self._record_receipt(receipt)
        return receipt

    def submit_many(
        self, requests: list[TxRequest], force_cut: bool = True
    ) -> list[TxReceipt]:
        """Submit a batch through the native lifecycle, one receipt each.

        Per-request failures become failed receipts instead of raising, so
        a workload driver keeps pumping.  ``force_cut=False`` leaves batch
        release to the ordering service's own cutting policy (size or
        ``batch_timeout``) on platforms with a batch-accumulating orderer
        (Fabric); platforms that sequence per transaction ignore it.
        """
        receipts = self._submit_batch_native(list(requests), force_cut=force_cut)
        for receipt in receipts:
            self._record_receipt(receipt)
        return receipts

    def _submit_one_native(self, request: TxRequest) -> TxReceipt:
        """Subclass hook: run *request* through the native single-tx flow."""
        raise PlatformError(
            f"{self.platform_name} does not implement the transaction pipeline"
        )

    def _submit_batch_native(
        self, requests: list[TxRequest], force_cut: bool
    ) -> list[TxReceipt]:
        """Subclass hook: run a batch through the native flow.

        Default: sequential single submissions with failures captured as
        rejection receipts.  Platforms with real batch semantics override.
        """
        receipts = []
        for request in requests:
            submitted_at = self.clock.now
            try:
                receipts.append(self._submit_one_native(request))
            except ReproError as error:
                receipts.append(
                    rejection_receipt(
                        request, self.platform_name, submitted_at, error
                    )
                )
        return receipts

    def _record_receipt(self, receipt: TxReceipt) -> None:
        metrics = self.telemetry.metrics
        metrics.counter("pipeline.submitted", platform=self.platform_name).inc()
        if receipt.committed:
            metrics.counter("pipeline.committed", platform=self.platform_name).inc()
        else:
            metrics.counter("pipeline.failed", platform=self.platform_name).inc()

    def state_fingerprint(self) -> str:
        """Canonical hash of all committed state, for parity checks.

        Two runs that executed the same transactions — whether through
        native entrypoints or the pipeline — must produce identical
        fingerprints.  The snapshot is the subclass's full committed
        picture: every replica/vault, chain heights, and committed ids.
        """
        snapshot = self._state_snapshot()
        return tagged_hash(
            "repro/pipeline/state-fingerprint", canonical_bytes(snapshot)
        ).hex()

    def _state_snapshot(self) -> dict:
        """Subclass hook: JSON-serializable committed-state picture."""
        raise PlatformError(
            f"{self.platform_name} does not implement state fingerprints"
        )

    def crypto_cache_stats(self) -> dict:
        """Hot-path crypto cache hit/miss counters for this platform."""
        return {
            "signature_verify": self.scheme.cache_info(),
            "certificate_chain": self.ca.cache_info(),
        }

    # -- fault injection

    def inject_faults(self, plan) -> None:
        """Attach a :class:`repro.faults.FaultPlan` to the substrate.

        Platform subclasses override this to also wire the plan into their
        ordering principal (orderer, notary, sequencer).
        """
        self.network.fault_plan = plan

    # -- crash recovery
    #
    # The template methods below are platform-independent; subclasses
    # implement the four hooks to define what is durable, what a crash
    # loses, and — critically — what a rejoining node is *entitled* to
    # be re-sent during catch-up (its channels, its party chains, its
    # private payloads; never anyone else's).

    def checkpoint_node(self, name: str):
        """Flush *name*'s durable snapshot to the checkpoint store."""
        from repro.recovery.checkpoint import NodeCheckpoint

        self.party(name)
        with self.telemetry.span(
            "recovery.checkpoint", node=name, platform=self.platform_name
        ) as span:
            data = self._checkpoint_data(name)
            checkpoint = NodeCheckpoint(
                node=name,
                platform=self.platform_name,
                sequence=self.checkpoints.next_sequence(name),
                taken_at=self.clock.now,
                **data,
            )
            saved = self.checkpoints.save(checkpoint)
            self.telemetry.tracer.set_attribute(span, "sequence", saved.sequence)
        return saved

    def crash(self, name: str) -> None:
        """Crash party *name*: network down + volatile state lost.

        Durable artifacts — checkpoints, the shared chains, off-chain
        stores — survive; everything the subclass declares volatile in
        :meth:`_drop_volatile` (state replicas, vaults, payload caches)
        is wiped, like process memory.
        """
        self.party(name)
        if self.network.is_crashed(name):
            return
        self.network.crash_node(name)
        self._drop_volatile(name)
        self.telemetry.metrics.counter("recovery.crashes").inc()
        self.telemetry.events.emit(
            "recovery.crash", node=name, platform=self.platform_name
        )

    def recover(self, name: str):
        """Bring *name* back: restore its checkpoint, then catch up.

        Idempotent — recovering a node that is already up is a no-op.
        Catch-up is visibility-filtered by the platform hook: live peers
        re-send only what *name* is entitled to see.  Returns the
        checkpoint used (``None`` if the node never checkpointed and
        rebuilt from genesis).
        """
        self.party(name)
        if not self.network.recover_node(name):
            return self.checkpoints.latest(name)
        checkpoint = self.checkpoints.latest(name)
        with self.telemetry.span(
            "recovery.catchup", node=name, platform=self.platform_name
        ) as span:
            self._restore_checkpoint(name, checkpoint)
            summary = self._catch_up(name, checkpoint) or {}
            for key in sorted(summary):
                self.telemetry.tracer.set_attribute(span, key, summary[key])
        self.telemetry.metrics.counter("recovery.recoveries").inc()
        self.telemetry.events.emit(
            "recovery.recover",
            node=name,
            platform=self.platform_name,
            from_sequence=None if checkpoint is None else checkpoint.sequence,
        )
        return checkpoint

    def _checkpoint_data(self, name: str) -> dict:
        """Subclass hook: heights/state_hashes/pending/snapshots for *name*."""
        raise PlatformError(
            f"{self.platform_name} does not support node checkpoints"
        )

    def _drop_volatile(self, name: str) -> None:
        """Subclass hook: wipe *name*'s in-memory state on crash."""

    def _restore_checkpoint(self, name: str, checkpoint) -> None:
        """Subclass hook: reload *name*'s state images from *checkpoint*."""
        raise PlatformError(
            f"{self.platform_name} does not support node recovery"
        )

    def _catch_up(self, name: str, checkpoint) -> dict:
        """Subclass hook: visibility-filtered re-sync since *checkpoint*.

        Returns a summary dict recorded as span attributes
        (e.g. ``{"items": 3, "blocks_behind": 2}``).
        """
        raise PlatformError(
            f"{self.platform_name} does not support node recovery"
        )

    # -- capability probing (Table 1)

    def probe(self, mechanism: Mechanism) -> ProbeResult:
        """Exercise *mechanism* and classify this platform's support."""
        handler_name = "_probe_" + mechanism.name.lower()
        handler = getattr(self, handler_name, None)
        if handler is None:
            raise PlatformError(
                f"{self.platform_name} has no probe for {mechanism.value}"
            )
        return handler()

    def probe_all(self) -> dict[Mechanism, ProbeResult]:
        """Run every probe; the regenerated Table 1 column."""
        from repro.core.mechanisms import all_mechanisms

        return {m: self.probe(m) for m in all_mechanisms()}

    # -- probes shared by all three platforms
    #
    # ZKPs on data, MPC, and homomorphic encryption are '*' for every
    # platform in Table 1: none supports them natively, all can host them
    # as application-layer constructions.  The probes exercise the library
    # implementations and report per-platform evidence.

    def _probe_zkp_on_data(self) -> ProbeResult:
        from repro.crypto.commitments import PedersenScheme
        from repro.crypto.zkp import (
            RangeProver,
            prove_sufficient_funds,
            verify_sufficient_funds,
        )

        rng = self.rng.fork("probe-zkp")
        prover = RangeProver()
        pedersen = PedersenScheme(prover.group)
        commitment, opening = pedersen.commit(500, rng)
        context = f"{self.platform_name}-probe".encode()
        proof = prove_sufficient_funds(prover, 500, opening, 100, 16, context, rng)
        ok = verify_sufficient_funds(prover, commitment, proof, context)
        return self._result(
            Mechanism.ZKP_ON_DATA,
            SupportLevel.IMPLEMENTABLE if ok else SupportLevel.REWRITE,
            f"scenario-specific range proof verified on {self.platform_name}; "
            "no general-purpose native ZKP service (Section 2.2 maturity)",
        )

    def _probe_multiparty_computation(self) -> ProbeResult:
        from repro.crypto.mpc import secure_sum

        total, stats = secure_sum({"org1": 3, "org2": 4})
        return self._result(
            Mechanism.MULTIPARTY_COMPUTATION,
            SupportLevel.IMPLEMENTABLE if total == 7 else SupportLevel.REWRITE,
            f"additive-sharing MPC runs off-platform ({stats.rounds} rounds); "
            f"only the agreed result reaches the {self.platform_name} ledger",
        )

    def _probe_homomorphic_encryption(self) -> ProbeResult:
        from repro.common.errors import CryptoError
        from repro.crypto.paillier import Paillier

        paillier = Paillier(bits=256)
        rng = self.rng.fork("probe-paillier")
        keys = paillier.keygen(rng)
        a = paillier.encrypt(keys.public, 20, rng)
        b = paillier.encrypt(keys.public, 22, rng)
        additive = paillier.decrypt(keys, paillier.add(keys.public, a, b)) == 42
        try:
            paillier.multiply(a, b)
            general = True
        except CryptoError:
            general = False
        return self._result(
            Mechanism.HOMOMORPHIC_ENCRYPTION,
            SupportLevel.IMPLEMENTABLE if additive and not general
            else SupportLevel.REWRITE,
            "additive (Paillier) operations work on ledger values; general "
            "homomorphic computation remains proof-of-concept (Section 2.2)",
        )

    def _probe_open_source(self) -> ProbeResult:
        return ProbeResult(
            platform=self.platform_name,
            mechanism=Mechanism.OPEN_SOURCE,
            level=SupportLevel.NATIVE if self.open_source else SupportLevel.REWRITE,
            evidence="platform selection criterion (a) in Section 5: all three "
            "platforms are open source",
            exercised=False,
        )

    def _result(
        self,
        mechanism: Mechanism,
        level: SupportLevel,
        evidence: str,
        exercised: bool = True,
    ) -> ProbeResult:
        return ProbeResult(
            platform=self.platform_name,
            mechanism=mechanism,
            level=level,
            evidence=evidence,
            exercised=exercised,
        )
