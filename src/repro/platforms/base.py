"""Common platform API.

Every platform simulation (Fabric, Corda, Quorum) implements this
interface: organizations onboard through PKI, transactions run through the
platform's native flow, and each platform answers capability probes.

A probe is **executable evidence**: the platform either demonstrates the
mechanism through its native API (``NATIVE``), demonstrates it by
composing library crypto on top of its primitives (``IMPLEMENTABLE``), or
demonstrates the architectural constraint that blocks it (``REWRITE``).
The Table 1 reproduction consumes these results.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.clock import SimClock
from repro.common.errors import PlatformError
from repro.common.rng import DeterministicRNG
from repro.crypto.pki import Certificate, CertificateAuthority, MembershipService
from repro.crypto.signatures import PrivateKey, SignatureScheme
from repro.core.mechanisms import Mechanism
from repro.network.simnet import SimNetwork
from repro.telemetry import Telemetry


class SupportLevel(enum.Enum):
    """Table 1 legend: native / implementable / requires rewrite / N/A."""

    NATIVE = "+"
    IMPLEMENTABLE = "*"
    REWRITE = "-"
    NOT_APPLICABLE = "N/A"


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of exercising one mechanism on one platform."""

    platform: str
    mechanism: Mechanism
    level: SupportLevel
    evidence: str
    exercised: bool = True


@dataclass
class Party:
    """An onboarded organization: name, signing key, and certificate."""

    name: str
    key: PrivateKey
    certificate: Certificate

    @property
    def public_key(self):
        return self.key.public


class Platform:
    """Base class for the three platform simulations."""

    platform_name = "abstract"
    open_source = True

    def __init__(self, seed: str = "platform") -> None:
        self.clock = SimClock()
        self.rng = DeterministicRNG(seed)
        self.scheme = SignatureScheme()
        # One Telemetry bundle per platform: the network, ordering service,
        # execution engine, and use-case workflows all record into it, so a
        # single trace follows a transaction across every principal.
        self.telemetry = Telemetry(clock=self.clock)
        self.network = SimNetwork(
            clock=self.clock, rng=self.rng.fork("net"), telemetry=self.telemetry
        )
        self.ca = CertificateAuthority(
            f"{self.platform_name}-root-ca", self.scheme, self.clock,
            rng=self.rng.fork("ca"),
        )
        self.membership = MembershipService()
        self.membership.register_authority(self.ca)
        self.parties: dict[str, Party] = {}
        # Durable checkpoint storage: lives outside the nodes (disk
        # survives the process), so it is *not* wiped by crash().
        from repro.recovery.checkpoint import CheckpointStore

        self.checkpoints = CheckpointStore(telemetry=self.telemetry)

    # -- onboarding

    def onboard(self, name: str, attributes: dict | None = None) -> Party:
        """Verify and enroll an organization; creates its network node."""
        if name in self.parties:
            raise PlatformError(f"party {name!r} already onboarded")
        key = self.scheme.keygen_from_seed(f"{self.platform_name}/{name}")
        certificate = self.ca.issue(name, key.public, attributes=attributes)
        self.membership.enroll(certificate)
        self.network.add_node(name)
        party = Party(name=name, key=key, certificate=certificate)
        self.parties[name] = party
        return party

    def party(self, name: str) -> Party:
        if name not in self.parties:
            raise PlatformError(f"unknown party {name!r}")
        return self.parties[name]

    # -- fault injection

    def inject_faults(self, plan) -> None:
        """Attach a :class:`repro.faults.FaultPlan` to the substrate.

        Platform subclasses override this to also wire the plan into their
        ordering principal (orderer, notary, sequencer).
        """
        self.network.fault_plan = plan

    # -- crash recovery
    #
    # The template methods below are platform-independent; subclasses
    # implement the four hooks to define what is durable, what a crash
    # loses, and — critically — what a rejoining node is *entitled* to
    # be re-sent during catch-up (its channels, its party chains, its
    # private payloads; never anyone else's).

    def checkpoint_node(self, name: str):
        """Flush *name*'s durable snapshot to the checkpoint store."""
        from repro.recovery.checkpoint import NodeCheckpoint

        self.party(name)
        with self.telemetry.span(
            "recovery.checkpoint", node=name, platform=self.platform_name
        ) as span:
            data = self._checkpoint_data(name)
            checkpoint = NodeCheckpoint(
                node=name,
                platform=self.platform_name,
                sequence=self.checkpoints.next_sequence(name),
                taken_at=self.clock.now,
                **data,
            )
            saved = self.checkpoints.save(checkpoint)
            self.telemetry.tracer.set_attribute(span, "sequence", saved.sequence)
        return saved

    def crash(self, name: str) -> None:
        """Crash party *name*: network down + volatile state lost.

        Durable artifacts — checkpoints, the shared chains, off-chain
        stores — survive; everything the subclass declares volatile in
        :meth:`_drop_volatile` (state replicas, vaults, payload caches)
        is wiped, like process memory.
        """
        self.party(name)
        if self.network.is_crashed(name):
            return
        self.network.crash_node(name)
        self._drop_volatile(name)
        self.telemetry.metrics.counter("recovery.crashes").inc()
        self.telemetry.events.emit(
            "recovery.crash", node=name, platform=self.platform_name
        )

    def recover(self, name: str):
        """Bring *name* back: restore its checkpoint, then catch up.

        Idempotent — recovering a node that is already up is a no-op.
        Catch-up is visibility-filtered by the platform hook: live peers
        re-send only what *name* is entitled to see.  Returns the
        checkpoint used (``None`` if the node never checkpointed and
        rebuilt from genesis).
        """
        self.party(name)
        if not self.network.recover_node(name):
            return self.checkpoints.latest(name)
        checkpoint = self.checkpoints.latest(name)
        with self.telemetry.span(
            "recovery.catchup", node=name, platform=self.platform_name
        ) as span:
            self._restore_checkpoint(name, checkpoint)
            summary = self._catch_up(name, checkpoint) or {}
            for key in sorted(summary):
                self.telemetry.tracer.set_attribute(span, key, summary[key])
        self.telemetry.metrics.counter("recovery.recoveries").inc()
        self.telemetry.events.emit(
            "recovery.recover",
            node=name,
            platform=self.platform_name,
            from_sequence=None if checkpoint is None else checkpoint.sequence,
        )
        return checkpoint

    def _checkpoint_data(self, name: str) -> dict:
        """Subclass hook: heights/state_hashes/pending/snapshots for *name*."""
        raise PlatformError(
            f"{self.platform_name} does not support node checkpoints"
        )

    def _drop_volatile(self, name: str) -> None:
        """Subclass hook: wipe *name*'s in-memory state on crash."""

    def _restore_checkpoint(self, name: str, checkpoint) -> None:
        """Subclass hook: reload *name*'s state images from *checkpoint*."""
        raise PlatformError(
            f"{self.platform_name} does not support node recovery"
        )

    def _catch_up(self, name: str, checkpoint) -> dict:
        """Subclass hook: visibility-filtered re-sync since *checkpoint*.

        Returns a summary dict recorded as span attributes
        (e.g. ``{"items": 3, "blocks_behind": 2}``).
        """
        raise PlatformError(
            f"{self.platform_name} does not support node recovery"
        )

    # -- capability probing (Table 1)

    def probe(self, mechanism: Mechanism) -> ProbeResult:
        """Exercise *mechanism* and classify this platform's support."""
        handler_name = "_probe_" + mechanism.name.lower()
        handler = getattr(self, handler_name, None)
        if handler is None:
            raise PlatformError(
                f"{self.platform_name} has no probe for {mechanism.value}"
            )
        return handler()

    def probe_all(self) -> dict[Mechanism, ProbeResult]:
        """Run every probe; the regenerated Table 1 column."""
        from repro.core.mechanisms import all_mechanisms

        return {m: self.probe(m) for m in all_mechanisms()}

    # -- probes shared by all three platforms
    #
    # ZKPs on data, MPC, and homomorphic encryption are '*' for every
    # platform in Table 1: none supports them natively, all can host them
    # as application-layer constructions.  The probes exercise the library
    # implementations and report per-platform evidence.

    def _probe_zkp_on_data(self) -> ProbeResult:
        from repro.crypto.commitments import PedersenScheme
        from repro.crypto.zkp import (
            RangeProver,
            prove_sufficient_funds,
            verify_sufficient_funds,
        )

        rng = self.rng.fork("probe-zkp")
        prover = RangeProver()
        pedersen = PedersenScheme(prover.group)
        commitment, opening = pedersen.commit(500, rng)
        context = f"{self.platform_name}-probe".encode()
        proof = prove_sufficient_funds(prover, 500, opening, 100, 16, context, rng)
        ok = verify_sufficient_funds(prover, commitment, proof, context)
        return self._result(
            Mechanism.ZKP_ON_DATA,
            SupportLevel.IMPLEMENTABLE if ok else SupportLevel.REWRITE,
            f"scenario-specific range proof verified on {self.platform_name}; "
            "no general-purpose native ZKP service (Section 2.2 maturity)",
        )

    def _probe_multiparty_computation(self) -> ProbeResult:
        from repro.crypto.mpc import secure_sum

        total, stats = secure_sum({"org1": 3, "org2": 4})
        return self._result(
            Mechanism.MULTIPARTY_COMPUTATION,
            SupportLevel.IMPLEMENTABLE if total == 7 else SupportLevel.REWRITE,
            f"additive-sharing MPC runs off-platform ({stats.rounds} rounds); "
            f"only the agreed result reaches the {self.platform_name} ledger",
        )

    def _probe_homomorphic_encryption(self) -> ProbeResult:
        from repro.common.errors import CryptoError
        from repro.crypto.paillier import Paillier

        paillier = Paillier(bits=256)
        rng = self.rng.fork("probe-paillier")
        keys = paillier.keygen(rng)
        a = paillier.encrypt(keys.public, 20, rng)
        b = paillier.encrypt(keys.public, 22, rng)
        additive = paillier.decrypt(keys, paillier.add(keys.public, a, b)) == 42
        try:
            paillier.multiply(a, b)
            general = True
        except CryptoError:
            general = False
        return self._result(
            Mechanism.HOMOMORPHIC_ENCRYPTION,
            SupportLevel.IMPLEMENTABLE if additive and not general
            else SupportLevel.REWRITE,
            "additive (Paillier) operations work on ledger values; general "
            "homomorphic computation remains proof-of-concept (Section 2.2)",
        )

    def _probe_open_source(self) -> ProbeResult:
        return ProbeResult(
            platform=self.platform_name,
            mechanism=Mechanism.OPEN_SOURCE,
            level=SupportLevel.NATIVE if self.open_source else SupportLevel.REWRITE,
            evidence="platform selection criterion (a) in Section 5: all three "
            "platforms are open source",
            exercised=False,
        )

    def _result(
        self,
        mechanism: Mechanism,
        level: SupportLevel,
        evidence: str,
        exercised: bool = True,
    ) -> ProbeResult:
        return ProbeResult(
            platform=self.platform_name,
            mechanism=mechanism,
            level=level,
            evidence=evidence,
            exercised=exercised,
        )
