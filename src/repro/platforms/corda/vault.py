"""Per-node vaults.

Corda nodes store only the transactions they were party to — there is no
global ledger replica.  The vault is exactly that store; what a node does
NOT hold is as important to the privacy analysis as what it does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import StateError
from repro.platforms.corda.states import ContractState, StateRef
from repro.platforms.corda.transactions import SignedTransaction


@dataclass
class Vault:
    """One node's private store of relevant transactions and states."""

    owner: str
    transactions: dict[str, SignedTransaction] = field(default_factory=dict)
    unconsumed: dict[StateRef, ContractState] = field(default_factory=dict)

    def record(self, stx: SignedTransaction) -> None:
        """Store a finalized transaction and update unconsumed states."""
        wire = stx.wire
        self.transactions[wire.tx_id] = stx
        for ref in wire.inputs:
            self.unconsumed.pop(ref, None)
        for index, state in enumerate(wire.outputs):
            if self.owner in state.participants:
                self.unconsumed[StateRef(tx_id=wire.tx_id, index=index)] = state

    def rebuild_unconsumed(self) -> None:
        """Recompute the unconsumed-state index from stored transactions.

        A recovering node's vault is repopulated transaction-by-transaction
        (catch-up ships only entitled chains); once the store is complete,
        the unconsumed view is a pure function of it: every output this
        owner participates in, minus every ref consumed by any known
        transaction.
        """
        consumed: set[StateRef] = set()
        for stx in self.transactions.values():
            consumed.update(stx.wire.inputs)
        self.unconsumed = {}
        for tx_id in sorted(self.transactions):
            wire = self.transactions[tx_id].wire
            for index, state in enumerate(wire.outputs):
                ref = StateRef(tx_id=wire.tx_id, index=index)
                if self.owner in state.participants and ref not in consumed:
                    self.unconsumed[ref] = state

    def states_of_contract(self, contract_id: str) -> list[tuple[StateRef, ContractState]]:
        """Unconsumed states for one contract, sorted for determinism."""
        return sorted(
            (
                (ref, state)
                for ref, state in self.unconsumed.items()
                if state.contract_id == contract_id
            ),
            key=lambda pair: (pair[0].tx_id, pair[0].index),
        )

    def state_at(self, ref: StateRef) -> ContractState:
        if ref not in self.unconsumed:
            raise StateError(f"{self.owner!r} holds no unconsumed state {ref}")
        return self.unconsumed[ref]

    def knows_transaction(self, tx_id: str) -> bool:
        return tx_id in self.transactions

    def __len__(self) -> int:
        return len(self.unconsumed)
