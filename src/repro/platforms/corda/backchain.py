"""Transaction backchain resolution.

When a Corda state moves to a new party, the recipient must verify the
entire chain of transactions that produced it ("transaction resolution").
That is a *privacy cost*: the new owner learns every historical
transaction in the state's lineage — prior holders, amounts, timestamps —
which is precisely the leak one-time public keys (Section 2.1) mitigate:
with pseudonymous owners the recipient verifies the same chain while
learning keys instead of identities.

This module implements the walk and quantifies the disclosure, feeding
the S2 backchain ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import StateError
from repro.platforms.corda.states import StateRef
from repro.platforms.corda.transactions import SignedTransaction
from repro.platforms.corda.vault import Vault


@dataclass
class BackchainDisclosure:
    """What a recipient learned by resolving one state's history."""

    transactions: list[SignedTransaction] = field(default_factory=list)
    identities: set[str] = field(default_factory=set)
    pseudonymous_keys: set[int] = field(default_factory=set)
    data_keys: set[str] = field(default_factory=set)

    @property
    def depth(self) -> int:
        return len(self.transactions)


def collect_backchain(vault: Vault, tx_id: str) -> list[SignedTransaction]:
    """All ancestors of *tx_id* (inclusive), oldest first.

    Walks input refs recursively through the provider's vault; raises
    :class:`StateError` if the lineage is incomplete (the provider cannot
    prove provenance).
    """
    seen: set[str] = set()
    ordered: list[SignedTransaction] = []

    def walk(current: str) -> None:
        if current in seen:
            return
        if current not in vault.transactions:
            raise StateError(
                f"{vault.owner!r} cannot resolve ancestor {current!r}"
            )
        seen.add(current)
        stx = vault.transactions[current]
        for ref in stx.wire.inputs:
            walk(ref.tx_id)
        ordered.append(stx)

    walk(tx_id)
    return ordered


def disclosure_of(backchain: list[SignedTransaction]) -> BackchainDisclosure:
    """Account for everything the backchain reveals to its recipient."""
    disclosure = BackchainDisclosure(transactions=list(backchain))
    for stx in backchain:
        for state in stx.wire.outputs:
            if state.owner_key_y is not None:
                disclosure.pseudonymous_keys.add(state.owner_key_y)
            for participant in state.participants:
                disclosure.identities.add(participant)
            disclosure.data_keys.update(state.data)
        for command in stx.wire.commands:
            disclosure.identities.update(
                s for s in command.signers if not s.startswith("key:")
            )
    return disclosure


def verify_backchain(backchain: list[SignedTransaction], tip_ref: StateRef) -> bool:
    """Structural verification a recipient runs before accepting a state.

    Checks that every input of every transaction in the chain is produced
    by an earlier transaction in the chain, and that the tip ref points at
    an output of the final transaction.
    """
    produced: set[str] = set()
    for stx in backchain:
        for ref in stx.wire.inputs:
            if ref.tx_id not in produced:
                return False
        produced.add(stx.wire.tx_id)
    if not backchain:
        return False
    tip = backchain[-1]
    return (
        tip.wire.tx_id == tip_ref.tx_id
        and 0 <= tip_ref.index < len(tip.wire.outputs)
    )
