"""The Corda simulation.

Section 5: "Rather than globally broadcasting transactions to all peers in
the network or a sub-network, Corda uses a concept of peer-to-peer
transactions...  interactions between parties are kept private, both in
terms of the relationships that exist and data shared between them."

The flow model: the initiator builds a :class:`WireTransaction`, sends it
point-to-point to the counterparties, every participant verifies the
attached contract *by executing business logic outside the platform* (the
paper's off-chain execution characterization of Corda), all sign the
Merkle root, the notary certifies uniqueness (validating: sees all;
non-validating: sees a tear-off), and each participant's vault records the
result.  No uninvolved node ever receives a byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import (
    ContractError,
    MembershipError,
    OrderingError,
    PlatformError,
    ValidationError,
)
from repro.core.mechanisms import Mechanism
from repro.crypto.hashing import hash_hex
from repro.crypto.merkle import MerkleTree
from repro.crypto.onetime import OneTimeIdentity, OneTimeKeyFactory, resolve_owner
from repro.crypto.symmetric import SymmetricKey
from repro.network.messages import Exposure
from repro.offchain.stores import Hosting, OffChainStore
from repro.platforms.base import (
    Party,
    Platform,
    ProbeResult,
    SupportLevel,
    TxReceipt,
    TxRequest,
)
from repro.platforms.corda.notary import NotarisationReceipt, Notary
from repro.platforms.corda.oracle import Oracle
from repro.platforms.corda.states import Command, ContractState, StateRef
from repro.platforms.corda.transactions import (
    ComponentGroup,
    FilteredTransaction,
    SignedTransaction,
    WireTransaction,
)
from repro.platforms.corda.vault import Vault
from repro.recovery.catchup import catchup_dedup_key, ship

NOTARY_NODE = "corda-notary"

ContractVerifier = Callable[[WireTransaction], None]

# A flow builder turns a platform-neutral TxRequest into the wire
# transaction the initiating node would assemble: (network, request) ->
# WireTransaction.  Builders close over application state (e.g. which
# StateRef is the current tip of an asset) exactly like a CorDapp flow.
FlowBuilder = Callable[["CordaNetwork", TxRequest], WireTransaction]


@dataclass
class FlowResult:
    """Outcome of one completed flow."""

    stx: SignedTransaction
    receipt: NotarisationReceipt
    output_refs: list[StateRef]


class CordaNetwork(Platform):
    """A Corda network: nodes with vaults, one notary, p2p flows."""

    platform_name = "corda"

    def __init__(
        self,
        seed: str = "corda",
        validating_notary: bool = False,
        notary_operator: str = "third-party",
        resilient_delivery: bool = False,
    ) -> None:
        super().__init__(seed=seed)
        self.resilient_delivery = resilient_delivery
        self.network.add_node(NOTARY_NODE)
        self.notary = Notary(
            NOTARY_NODE,
            self.scheme,
            self.clock,
            validating=validating_notary,
            operator=notary_operator,
            contract_verifier=self._verify_contracts,
            telemetry=self.telemetry,
        )
        self.vaults: dict[str, Vault] = {}
        self.verifiers: dict[str, ContractVerifier] = {}
        self.verifier_language: dict[str, str] = {}
        self.flows: dict[tuple[str, str], FlowBuilder] = {}
        self._onetime_factories: dict[str, OneTimeKeyFactory] = {}
        self._onetime_index: dict[int, OneTimeIdentity] = {}

    # -- membership

    def onboard(self, name: str, attributes: dict | None = None) -> Party:
        party = super().onboard(name, attributes=attributes)
        self.vaults[name] = Vault(owner=name)
        self._onetime_factories[name] = OneTimeKeyFactory(
            root_certificate=party.certificate,
            ca=self.ca,
            scheme=self.scheme,
            rng=self.rng.fork("onetime:" + name),
        )
        return party

    def vault(self, name: str) -> Vault:
        if name not in self.vaults:
            raise PlatformError(f"unknown party {name!r}")
        return self.vaults[name]

    # -- fault injection

    def inject_faults(self, plan) -> None:
        super().inject_faults(plan)
        self.notary.fault_plan = plan

    def crash_ordering(self) -> None:
        """Take the notary down (its spent-ref map is durable)."""
        self.notary.crash()

    def recover_ordering(self) -> None:
        self.notary.recover()

    # -- CorDapps: contracts travel with the states that reference them

    def register_contract(
        self, contract_id: str, verifier: ContractVerifier, language: str = "kotlin"
    ) -> None:
        """Register the verify function participants run for a contract."""
        self.verifiers[contract_id] = verifier
        self.verifier_language[contract_id] = language

    def _verify_contracts(self, wire: WireTransaction) -> None:
        """Run every referenced contract's verify over the transaction."""
        contract_ids = {state.contract_id for state in wire.outputs}
        for contract_id in sorted(contract_ids):
            verifier = self.verifiers.get(contract_id)
            if verifier is None:
                raise ContractError(f"no verifier registered for {contract_id!r}")
            verifier(wire)

    def register_flow(
        self, contract_id: str, function: str, builder: FlowBuilder
    ) -> None:
        """Register the flow the pipeline runs for ``contract_id.function``.

        Corda has no server-side contract-function dispatch: the initiator
        assembles the transaction locally and runs a flow.  The builder is
        that assembly step; :meth:`_submit_one_native` then drives the
        native :meth:`run_flow` with its output.
        """
        if contract_id not in self.verifiers:
            raise ContractError(f"no verifier registered for {contract_id!r}")
        self.flows[(contract_id, function)] = builder

    # -- confidential identities (one-time public keys, Section 2.1)

    def create_confidential_identity(self, owner: str) -> OneTimeIdentity:
        """Mint a fresh one-time key for *owner*; certificate stays off-ledger."""
        identity = self._onetime_factories[owner].mint()
        self.telemetry.metrics.counter(
            "crypto.ops", mechanism="one-time-public-keys"
        ).inc()
        self._onetime_index[identity.public.y] = identity
        return identity

    def reveal_owner(self, counterparty: str, key_y: int) -> str:
        """Resolve a one-time key via its linking certificate.

        Models handing the linking certificate to an authorized
        counterparty; anyone without the certificate only sees the key.
        """
        identity = self._onetime_index.get(key_y)
        if identity is None:
            raise MembershipError("no linking certificate available for this key")
        owner, __ = resolve_owner(self.ca, identity.linking_certificate)
        return owner

    # -- the flow

    def _signers_of(self, wire: WireTransaction) -> set[str]:
        signers: set[str] = set()
        for command in wire.commands:
            signers |= set(command.signers)
        return signers

    def _participants_of(self, wire: WireTransaction) -> set[str]:
        participants: set[str] = set()
        for state in wire.outputs:
            participants |= set(state.participants)
        return participants

    def build_transaction(
        self,
        inputs: list[StateRef],
        outputs: list[ContractState],
        commands: list[Command],
        attachments: list[str] | None = None,
    ) -> WireTransaction:
        """Assemble a wire transaction bound to this network's notary."""
        return WireTransaction(
            inputs=tuple(inputs),
            outputs=tuple(outputs),
            commands=tuple(commands),
            attachments=tuple(attachments or ()),
            notary=NOTARY_NODE,
            time_window=self.clock.now,
        )

    def run_flow(
        self,
        initiator: str,
        wire: WireTransaction,
        extra_signatures: dict[str, object] | None = None,
    ) -> FlowResult:
        """Execute the collect-signatures / notarise / finalise flow.

        ``extra_signatures`` maps pseudonymous signer labels to
        pre-computed signatures (used with one-time keys, where the signer
        is not an onboarded legal identity).
        """
        participants = self._participants_of(wire)
        signers = self._signers_of(wire)
        legal_signers = {s for s in signers if s in self.parties}
        if initiator not in self.parties:
            raise MembershipError(f"initiator {initiator!r} is not onboarded")
        self.authenticate(initiator)
        if not self.notary.available():
            # Fail before proposals go out or vaults change so the flow
            # can be re-run cleanly after the notary recovers.
            raise OrderingError(f"notary {NOTARY_NODE!r} is down")

        exposure = Exposure.of(
            identities=participants | legal_signers,
            data_keys={k for state in wire.outputs for k in state.data},
            code_ids={state.contract_id for state in wire.outputs},
        )

        with self.telemetry.span(
            "corda.flow", initiator=initiator, outputs=len(wire.outputs)
        ):
            # 1. Point-to-point proposal to every involved legal identity.
            counterparties = (participants | legal_signers) & set(self.parties)
            with self.telemetry.span(
                "corda.propose", counterparties=len(counterparties) - 1
            ):
                for counterparty in sorted(counterparties - {initiator}):
                    self.network.send(
                        initiator, counterparty, "flow-proposal",
                        {"tx_id": wire.tx_id}, exposure=exposure,
                    )

            # 2. Every participant verifies contract logic locally (business
            # logic executes outside the platform — the paper's Corda model).
            with self.telemetry.span("corda.verify"):
                self._verify_contracts(wire)

            # 3. Collect signatures over the Merkle root.
            with self.telemetry.span("corda.sign", signers=len(signers)):
                stx = SignedTransaction(wire=wire)
                payload = wire.signing_payload()
                for signer in sorted(legal_signers):
                    stx.add_signature(
                        signer, self.scheme.sign(self.parties[signer].key, payload)
                    )
                    self.telemetry.metrics.counter(
                        "crypto.ops", mechanism="flow-signature"
                    ).inc()
                for label, signature in (extra_signatures or {}).items():
                    stx.add_signature(label, signature)
                missing = signers - set(stx.signatures)
                if missing:
                    raise ValidationError(
                        f"missing signatures from {sorted(missing)}"
                    )

            # 4. Notarise.  Non-validating notaries get a tear-off only.  The
            # notarise hop is the flow's critical round-trip, so it is the one
            # that opts into resilient delivery.
            notarise_hop = (
                self.network.send_with_retry
                if self.resilient_delivery
                else self.network.send
            )
            with self.telemetry.span(
                "corda.notarise", validating=self.notary.validating
            ):
                if self.notary.validating:
                    notarise_hop(
                        initiator, NOTARY_NODE, "notarise-full",
                        {"tx_id": wire.tx_id}, exposure=exposure,
                    )
                    receipt = self.notary.notarise_full(stx)
                else:
                    filtered = wire.filtered(
                        [ComponentGroup.INPUTS, ComponentGroup.NOTARY]
                    )
                    self.telemetry.metrics.counter(
                        "crypto.ops", mechanism="merkle-tear-off"
                    ).inc()
                    notarise_hop(
                        initiator, NOTARY_NODE, "notarise-filtered",
                        {"tx_id": wire.tx_id}, exposure=Exposure(),
                    )
                    receipt = self.notary.notarise_filtered(filtered)

            # 5. Finalise: record in every involved party's vault, shipping the
            # backchain of every consumed input first (transaction resolution)
            # — new counterparties must be able to verify provenance, which is
            # the mechanism's inherent history disclosure.
            with self.telemetry.span("corda.finalise"):
                for counterparty in sorted(counterparties):
                    if counterparty != initiator:
                        for ref in wire.inputs:
                            self.resolve_backchain(initiator, counterparty, ref)
                        self.network.send(
                            initiator, counterparty, "finalise",
                            {"tx_id": wire.tx_id}, exposure=exposure,
                        )
                    self.vaults[counterparty].record(stx)
        output_refs = [
            StateRef(tx_id=wire.tx_id, index=i) for i in range(len(wire.outputs))
        ]
        return FlowResult(stx=stx, receipt=receipt, output_refs=output_refs)

    # ------------------------------------------------------------------
    # Unified transaction pipeline (Platform hooks)
    #
    # Corda mapping: the registered :class:`FlowBuilder` for
    # (contract_id, function) assembles the wire transaction — typically
    # reading ``request.args`` and ``request.private_for`` (the state's
    # participants) — and the native flow runs it end to end.  There is
    # no batch-accumulating orderer: the notary answers per transaction,
    # so ``force_cut`` has nothing to act on and batches run sequentially
    # through the same flow.  ``private_args`` is refused: every
    # participant of a Corda state sees the whole state.
    # ------------------------------------------------------------------

    def _submit_one_native(self, request: TxRequest) -> TxReceipt:
        if request.private_args is not None:
            raise PlatformError(
                "corda shares each state with all of its participants; "
                "TxRequest.private_args is not supported — model "
                "confidential fields with off-ledger anchors or tear-offs"
            )
        builder = self.flows.get((request.contract_id, request.function))
        if builder is None:
            raise PlatformError(
                f"no flow registered for {request.contract_id!r}."
                f"{request.function!r}; call register_flow first"
            )
        submitted_at = self.clock.now
        wire = builder(self, request)
        result = self.run_flow(request.submitter, wire)
        return TxReceipt(
            request=request,
            platform=self.platform_name,
            tx_id=result.stx.wire.tx_id,
            committed=True,
            status="committed",
            submitted_at=submitted_at,
            committed_at=self.clock.now,
            result=result,
            info={
                "output_refs": [
                    [ref.tx_id, ref.index] for ref in result.output_refs
                ],
                "notary_validating": self.notary.validating,
            },
        )

    def _state_snapshot(self) -> dict:
        vaults = {}
        for name in sorted(self.vaults):
            vault = self.vaults[name]
            # tx ids are content-derived, so listing them pins the full
            # transaction content; unconsumed refs pin the spend frontier.
            vaults[name] = {
                "transactions": sorted(vault.transactions),
                "unconsumed": sorted(
                    [ref.tx_id, ref.index] for ref in vault.unconsumed
                ),
            }
        return {"platform": self.platform_name, "vaults": vaults}

    # -- transaction resolution (backchain)

    def resolve_backchain(
        self, provider: str, requester: str, ref: StateRef
    ):
        """Ship a state's full lineage from *provider* to *requester*.

        The requester verifies the chain structurally and records every
        ancestor in its vault — and, unavoidably, learns everything those
        ancestors disclose.  Returns the
        :class:`~repro.platforms.corda.backchain.BackchainDisclosure`
        accounting for that leak (see the S2 backchain ablation).
        """
        from repro.platforms.corda.backchain import (
            collect_backchain,
            disclosure_of,
            verify_backchain,
        )

        for party in (provider, requester):
            if party not in self.parties:
                raise MembershipError(f"{party!r} is not onboarded")
        backchain = collect_backchain(self.vaults[provider], ref.tx_id)
        if not verify_backchain(backchain, ref):
            raise ValidationError("backchain failed structural verification")
        disclosure = disclosure_of(backchain)
        for stx in backchain:
            self.network.send(
                provider, requester, "backchain-tx",
                {"tx_id": stx.wire.tx_id},
                exposure=Exposure.of(
                    identities=disclosure.identities,
                    data_keys=disclosure.data_keys,
                ),
            )
            self.vaults[requester].transactions.setdefault(stx.wire.tx_id, stx)
        return disclosure

    # ------------------------------------------------------------------
    # Crash recovery (Platform hooks)
    #
    # Durable per node: checkpoints only — the vault IS the node's store,
    # and it is volatile here (the crash wipes it).  Catch-up therefore
    # re-ships transaction chains, and the visibility rule is Corda's own:
    # a peer serves a rejoining node exactly the transactions that node
    # was a party to (output participant or command signer), never the
    # rest of its vault.  The unconsumed-state view is then rebuilt as a
    # pure function of the recovered transaction store.
    # ------------------------------------------------------------------

    def _entitled_parties(self, stx: SignedTransaction) -> set[str]:
        """Who is entitled to hold *stx*: participants and signers."""
        return (
            self._participants_of(stx.wire) | self._signers_of(stx.wire)
        )

    def _checkpoint_data(self, name: str) -> dict:
        vault = self.vaults[name]
        refs = sorted(
            ([ref.tx_id, ref.index] for ref in vault.unconsumed),
        )
        return {
            "heights": {"vault": len(vault.transactions)},
            "state_hashes": {
                "vault": hash_hex("repro/recovery/corda-vault", refs)
            },
            "pending": {},
            "snapshots": {"tx_ids": sorted(vault.transactions)},
        }

    def _drop_volatile(self, name: str) -> None:
        self.vaults[name] = Vault(owner=name)

    def _restore_checkpoint(self, name: str, checkpoint) -> None:
        # The checkpoint records *which* transactions the vault held, not
        # their content (that would defeat the point of measuring
        # catch-up); the store is repopulated by entitled re-shipping.
        return None

    def _catch_up(self, name: str, checkpoint) -> dict:
        vault = self.vaults[name]
        known_before = (
            set(checkpoint.snapshots.get("tx_ids", []))
            if checkpoint is not None
            else set()
        )
        items = 0
        for provider in sorted(self.parties):
            if provider == name:
                continue
            if self.network.is_crashed(provider) or self.network.is_partitioned(
                provider, name
            ):
                continue
            provider_vault = self.vaults[provider]
            for tx_id in sorted(provider_vault.transactions):
                if vault.knows_transaction(tx_id):
                    continue
                stx = provider_vault.transactions[tx_id]
                entitled = self._entitled_parties(stx)
                if name not in entitled:
                    # The privacy filter: a peer never re-serves a
                    # transaction the rejoining node was not party to.
                    continue
                dedup = catchup_dedup_key("corda", "vault", name, tx_id)
                fresh = not self.network.node(name).has_applied(dedup)
                delivered = ship(
                    self.network,
                    provider,
                    name,
                    "catchup-tx",
                    {"tx_id": tx_id, "known_before": tx_id in known_before},
                    exposure=Exposure.of(
                        identities=entitled & set(self.parties),
                        data_keys={
                            k
                            for state in stx.wire.outputs
                            for k in state.data
                        },
                        code_ids={
                            state.contract_id for state in stx.wire.outputs
                        },
                    ),
                    dedup_key=dedup,
                )
                if delivered and fresh:
                    vault.transactions[tx_id] = stx
                    items += 1
        vault.rebuild_unconsumed()
        self.telemetry.metrics.counter("recovery.catchup.items").inc(items)
        # "Behind" for Corda is transaction-granular: how many entitled
        # transactions were re-shipped beyond the checkpointed store.
        behind = len([t for t in vault.transactions if t not in known_before])
        return {"items": items, "blocks_behind": behind}

    # ------------------------------------------------------------------
    # Table 1 capability probes (Corda column)
    # ------------------------------------------------------------------

    def _probe_fixture(self) -> tuple[str, str]:
        for org in ("probe-alice", "probe-bob"):
            if org not in self.parties:
                self.onboard(org)
        contract_id = "probe-iou"
        if contract_id not in self.verifiers:
            def verify(wire: WireTransaction) -> None:
                for state in wire.outputs:
                    if state.contract_id == contract_id and state.data.get("amount", 0) <= 0:
                        raise ContractError("IOU amount must be positive")
            self.register_contract(contract_id, verify, language="kotlin")
        return "probe-alice", "probe-bob"

    def _issue_probe_state(self, alice: str, bob: str, amount: int = 10) -> FlowResult:
        state = ContractState(
            contract_id="probe-iou", participants=(alice, bob),
            data={"amount": amount},
        )
        wire = self.build_transaction(
            inputs=[], outputs=[state],
            commands=[Command(name="Issue", signers=(alice, bob))],
        )
        return self.run_flow(alice, wire)

    def _probe_separation_of_ledgers_parties(self) -> ProbeResult:
        alice, bob = self._probe_fixture()
        if "probe-carol" not in self.parties:
            self.onboard("probe-carol")
        self._issue_probe_state(alice, bob)
        self.network.run()
        carol = self.network.node("probe-carol").observer
        leaked = carol.seen_identities & {alice, bob}
        return self._result(
            Mechanism.SEPARATION_OF_LEDGERS_PARTIES,
            SupportLevel.NATIVE if not leaked else SupportLevel.REWRITE,
            "per-transaction segregation: p2p flows reach involved parties "
            f"only; an uninvolved node observed {sorted(leaked) or 'nothing'}",
        )

    def _probe_one_time_public_keys(self) -> ProbeResult:
        alice, bob = self._probe_fixture()
        identity = self.create_confidential_identity(alice)
        state = ContractState(
            contract_id="probe-iou", participants=(alice, bob),
            data={"amount": 5}, owner_key_y=identity.public.y,
        )
        wire = self.build_transaction(
            inputs=[], outputs=[state],
            commands=[Command(name="Issue", signers=(alice, bob))],
        )
        result = self.run_flow(alice, wire)
        recorded = self.vault(bob).state_at(result.output_refs[0])
        owner = self.reveal_owner(bob, recorded.owner_key_y)
        return self._result(
            Mechanism.ONE_TIME_PUBLIC_KEYS,
            SupportLevel.NATIVE if owner == alice else SupportLevel.REWRITE,
            "confidential identities: ownership recorded against a fresh "
            "key, resolvable only via the off-ledger linking certificate",
        )

    def _probe_zkp_of_identity(self) -> ProbeResult:
        # Corda flows are addressed to legal identities on the network map;
        # there is no credential-presentation hook, so anonymous-credential
        # identity requires rewriting the flow framework (paper: '-').
        has_anonymous_membership = hasattr(self, "idemix_issuer")
        try:
            self.run_flow(
                "unknown-anonymous-party",
                self.build_transaction(inputs=[], outputs=[], commands=[]),
            )
            flow_accepts_anonymous = True
        except MembershipError:
            flow_accepts_anonymous = False
        level = (
            SupportLevel.NATIVE
            if has_anonymous_membership or flow_accepts_anonymous
            else SupportLevel.REWRITE
        )
        return self._result(
            Mechanism.ZKP_OF_IDENTITY, level,
            "flows require onboarded legal identities; no ZKP credential "
            "hook exists in the session layer",
        )

    def _probe_separation_of_ledgers_data(self) -> ProbeResult:
        alice, bob = self._probe_fixture()
        if "probe-carol" not in self.parties:
            self.onboard("probe-carol")
        self._issue_probe_state(alice, bob, amount=77)
        self.network.run()
        carol = self.network.node("probe-carol").observer
        leaked = "amount" in carol.seen_data_keys
        return self._result(
            Mechanism.SEPARATION_OF_LEDGERS_DATA,
            SupportLevel.REWRITE if leaked else SupportLevel.NATIVE,
            "transaction data travels point-to-point to participants only",
        )

    def _probe_off_chain_peer_data(self) -> ProbeResult:
        # No native PDC equivalent: applications attach hash references to
        # states and keep payloads in their own stores ('*').
        alice, bob = self._probe_fixture()
        store = OffChainStore("corda-app-store", hosting=Hosting.EXTERNAL,
                              authorized={alice})
        anchor = store.put("kyc-file", {"passport": "X123"}, now=self.clock.now)
        state = ContractState(
            contract_id="probe-iou", participants=(alice, bob),
            data={"amount": 1, "kyc_anchor": anchor},
        )
        wire = self.build_transaction(
            inputs=[], outputs=[state],
            commands=[Command(name="Issue", signers=(alice, bob))],
        )
        self.run_flow(alice, wire)
        verified = store.verify_anchor("kyc-file", anchor, alice)
        native_api = hasattr(self, "create_collection")
        return self._result(
            Mechanism.OFF_CHAIN_PEER_DATA,
            SupportLevel.NATIVE if native_api
            else SupportLevel.IMPLEMENTABLE if verified
            else SupportLevel.REWRITE,
            "no native private-data collections; applications anchor "
            "hashes in states and host payloads themselves",
        )

    def _probe_symmetric_encryption(self) -> ProbeResult:
        alice, bob = self._probe_fixture()
        key = SymmetricKey.from_seed("corda-probe-key")
        ciphertext = key.encrypt(b"trade terms", self.rng.fork("sym"))
        state = ContractState(
            contract_id="probe-iou", participants=(alice, bob),
            data={"amount": 2, "terms_enc": ciphertext.body.hex()},
        )
        wire = self.build_transaction(
            inputs=[], outputs=[state],
            commands=[Command(name="Issue", signers=(alice, bob))],
        )
        result = self.run_flow(alice, wire)
        stored = self.vault(bob).state_at(result.output_refs[0])
        ok = stored.data["terms_enc"] == ciphertext.body.hex()
        return self._result(
            Mechanism.SYMMETRIC_ENCRYPTION,
            SupportLevel.NATIVE if ok else SupportLevel.REWRITE,
            "state fields are opaque; symmetric ciphertext round-trips "
            "through the flow unchanged",
        )

    def _probe_merkle_tear_offs(self) -> ProbeResult:
        alice, bob = self._probe_fixture()
        state = ContractState(
            contract_id="probe-iou", participants=(alice, bob),
            data={"amount": 3, "secret-margin": 9},
        )
        wire = self.build_transaction(
            inputs=[], outputs=[state],
            commands=[Command(name="Issue", signers=(alice, bob),
                              payload={"fact": "fx", "value": 1.25})],
        )
        filtered = wire.filtered([ComponentGroup.COMMANDS, ComponentGroup.NOTARY])
        root_matches = filtered.verify()
        hides_outputs = not filtered.visible_of_group("outputs")
        return self._result(
            Mechanism.MERKLE_TEAR_OFFS,
            SupportLevel.NATIVE if root_matches and hides_outputs
            else SupportLevel.REWRITE,
            "FilteredTransaction is a first-class API: a signer verifies "
            "the root while output components stay hidden",
        )

    def _probe_install_on_involved_nodes(self) -> ProbeResult:
        # Not applicable: contracts attach to states and travel with them;
        # there is no separate installation step to scope (Table 1: N/A).
        return self._result(
            Mechanism.INSTALL_ON_INVOLVED_NODES,
            SupportLevel.NOT_APPLICABLE,
            "contract code is referenced by states and distributed with "
            "them; no installation step exists to restrict",
            exercised=False,
        )

    def _probe_off_chain_execution_engine(self) -> ProbeResult:
        # Native: flows execute business logic outside the platform; the
        # on-ledger contract only verifies signatures/structure (paper S5).
        alice, bob = self._probe_fixture()
        language = self.verifier_language.get("probe-iou", "")
        result = self._issue_probe_state(alice, bob, amount=4)
        return self._result(
            Mechanism.OFF_CHAIN_EXECUTION_ENGINE,
            SupportLevel.NATIVE if result.receipt is not None else SupportLevel.REWRITE,
            f"business logic ran outside the ledger (verifier language "
            f"{language!r}); the platform only checked signatures and "
            "uniqueness",
        )

    def _probe_trusted_execution_environment(self) -> ProbeResult:
        # R3's SGX integration is a design document (paper ref [17]); the
        # released platform has no enclave path.
        flow_uses_enclave = False
        return self._result(
            Mechanism.TRUSTED_EXECUTION_ENVIRONMENT,
            SupportLevel.NATIVE if flow_uses_enclave else SupportLevel.REWRITE,
            "SGX integration exists only as a design doc (ref [17]); "
            "verification inside enclaves requires rewriting the node",
            exercised=False,
        )

    def _probe_private_sequencing_service(self) -> ProbeResult:
        member_notary = Notary(
            "member-notary", self.scheme, self.clock,
            validating=False, operator="probe-alice",
        )
        return self._result(
            Mechanism.PRIVATE_SEQUENCING_SERVICE,
            SupportLevel.NATIVE
            if member_notary.is_member_operated({"probe-alice", "probe-bob"})
            else SupportLevel.REWRITE,
            "any party can run a notary cluster; combined with tear-offs "
            "it sees only opaque state references",
        )
