"""Corda state model.

Corda has no global key-value state: the ledger is a set of immutable
*states*, each owned by its participants, consumed and produced by
transactions.  A :class:`StateRef` points at an output of a previous
transaction; the notary tracks which refs are spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.ids import content_id


@dataclass(frozen=True)
class StateRef:
    """Pointer to the *index*-th output of transaction *tx_id*."""

    tx_id: str
    index: int

    def __str__(self) -> str:
        return f"{self.tx_id}[{self.index}]"


@dataclass(frozen=True)
class ContractState:
    """An immutable fact on the ledger.

    ``participants`` are the parties (or one-time keys' holders) that must
    be informed of changes to this state; ``owner_key_y`` optionally records
    ownership against a (possibly one-time) public key, per Section 2.1.
    """

    contract_id: str
    participants: tuple[str, ...]
    data: dict = field(default_factory=dict)
    owner_key_y: int | None = None

    def state_id(self) -> str:
        return content_id("state", {
            "contract_id": self.contract_id,
            "participants": list(self.participants),
            "data": self.data,
            "owner_key_y": self.owner_key_y,
        })


@dataclass(frozen=True)
class Command:
    """An instruction with the keys required to sign for it."""

    name: str
    signers: tuple[str, ...]
    payload: dict = field(default_factory=dict)
