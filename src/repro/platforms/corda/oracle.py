"""Corda oracles with tear-offs.

Section 5: "A common scenario for this is when an oracle is needed to
attest to a certain piece of data in a transaction, but the transaction
participants do not want all the components of the transaction visible to
the oracle."

The oracle receives a :class:`FilteredTransaction` whose only visible
component is the command carrying the fact to attest.  It verifies the
tear-off against the root, checks the fact against its own data source,
and signs the root — a signature valid for the full transaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ProofError, ValidationError
from repro.crypto.signatures import Signature, SignatureScheme
from repro.network.messages import Exposure
from repro.network.simnet import Observer
from repro.platforms.corda.transactions import FilteredTransaction


@dataclass
class OracleAttestation:
    """The oracle's signature over the transaction root."""

    tx_id: str
    oracle: str
    fact_name: str
    signature: Signature


class Oracle:
    """Attests to facts (e.g. an FX rate) embedded in torn-off commands."""

    def __init__(
        self,
        name: str,
        scheme: SignatureScheme,
        facts: dict[str, object] | Callable[[str], object],
    ) -> None:
        self.name = name
        self.scheme = scheme
        self._facts = facts
        self.key = scheme.keygen_from_seed("oracle:" + name)
        self.observer = Observer(name)

    def _lookup(self, fact_name: str):
        if callable(self._facts):
            return self._facts(fact_name)
        if fact_name not in self._facts:
            raise ValidationError(f"oracle {self.name!r} has no fact {fact_name!r}")
        return self._facts[fact_name]

    def attest(self, ftx: FilteredTransaction, fact_name: str) -> OracleAttestation:
        """Verify the tear-off, check the claimed fact, sign the root.

        Raises if the tear-off is inconsistent, if the command is missing,
        or if the claimed value disagrees with the oracle's source.
        """
        if not ftx.verify():
            raise ProofError("filtered transaction does not match its root")
        commands = ftx.visible_of_group("commands")
        matching = [c for c in commands if c.get("payload", {}).get("fact") == fact_name]
        if not matching:
            raise ValidationError(
                f"no visible command carries fact {fact_name!r}"
            )
        claimed = matching[0]["payload"].get("value")
        truth = self._lookup(fact_name)
        if claimed != truth:
            raise ValidationError(
                f"claimed {fact_name!r}={claimed!r} but oracle says {truth!r}"
            )
        # The oracle's knowledge: only what the tear-off exposed.
        visible_keys = set()
        for component in ftx.visible_components():
            if isinstance(component, dict) and component.get("group") == "outputs":
                visible_keys |= set(component.get("data", {}))
        self.observer.observe_exposure(Exposure.of(data_keys=visible_keys))
        return OracleAttestation(
            tx_id=ftx.tx_id,
            oracle=self.name,
            fact_name=fact_name,
            signature=self.scheme.sign(self.key, ftx.signing_payload()),
        )

    def saw_component_count(self) -> int:
        """How many events the oracle handled (for disclosure assertions)."""
        return self.observer.messages_observed
