"""Corda simulation: p2p flows, notaries, tear-offs, confidential identities."""

from repro.platforms.corda.backchain import (
    BackchainDisclosure,
    collect_backchain,
    disclosure_of,
    verify_backchain,
)
from repro.platforms.corda.network import (
    NOTARY_NODE,
    CordaNetwork,
    FlowResult,
)
from repro.platforms.corda.notary import NotarisationReceipt, Notary
from repro.platforms.corda.notary_cluster import NotaryCluster, QuorumReceipt
from repro.platforms.corda.oracle import Oracle, OracleAttestation
from repro.platforms.corda.states import Command, ContractState, StateRef
from repro.platforms.corda.transactions import (
    ComponentGroup,
    FilteredTransaction,
    SignedTransaction,
    WireTransaction,
)
from repro.platforms.corda.vault import Vault

__all__ = [
    "CordaNetwork",
    "BackchainDisclosure",
    "collect_backchain",
    "disclosure_of",
    "verify_backchain",
    "FlowResult",
    "NOTARY_NODE",
    "Notary",
    "NotaryCluster",
    "QuorumReceipt",
    "NotarisationReceipt",
    "Oracle",
    "OracleAttestation",
    "Command",
    "ContractState",
    "StateRef",
    "ComponentGroup",
    "FilteredTransaction",
    "SignedTransaction",
    "WireTransaction",
    "Vault",
]
