"""Notary clusters.

Production Corda notaries run as fault-tolerant clusters; the paper's
§3.4 "can parties feasibly run their own service" question therefore
means running a *cluster*.  :class:`NotaryCluster` wraps N replica
notaries: a transaction is notarised when a majority of alive replicas
accept it (each enforcing its own spent-ref map), yielding a quorum
receipt.  Crash a minority and service continues; crash a majority and
notarisation halts rather than risking a double spend.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import SimClock
from repro.common.errors import DoubleSpendError, OrderingError
from repro.crypto.signatures import Signature, SignatureScheme
from repro.platforms.corda.notary import NotarisationReceipt, Notary
from repro.platforms.corda.transactions import (
    FilteredTransaction,
    SignedTransaction,
)


@dataclass
class QuorumReceipt:
    """Majority evidence that a transaction's inputs were unique."""

    tx_id: str
    receipts: list[NotarisationReceipt] = field(default_factory=list)

    @property
    def signer_count(self) -> int:
        return len(self.receipts)


class NotaryCluster:
    """N replica notaries with majority-quorum notarisation."""

    def __init__(
        self,
        name: str,
        scheme: SignatureScheme,
        clock: SimClock,
        replicas: int = 3,
        validating: bool = False,
        operator: str = "third-party",
    ) -> None:
        if replicas < 3 or replicas % 2 == 0:
            raise OrderingError("a notary cluster needs an odd size >= 3")
        self.name = name
        self.replicas = [
            Notary(
                f"{name}-r{i}", scheme, clock,
                validating=validating, operator=operator,
            )
            for i in range(replicas)
        ]
        self._crashed: set[str] = set()

    def majority(self) -> int:
        return len(self.replicas) // 2 + 1

    def crash(self, index: int) -> None:
        self._crashed.add(self.replicas[index].name)

    def recover(self, index: int) -> None:
        self._crashed.discard(self.replicas[index].name)

    def _alive(self) -> list[Notary]:
        return [r for r in self.replicas if r.name not in self._crashed]

    def notarise_filtered(self, ftx: FilteredTransaction) -> QuorumReceipt:
        """Collect a majority of replica signatures over the tear-off.

        A replica that has already consumed an input rejects; one rejection
        for double-spend reasons fails the whole request (the conflict is
        real), while crashed replicas are simply skipped.
        """
        alive = self._alive()
        if len(alive) < self.majority():
            raise OrderingError("notary cluster lost its quorum")
        quorum = QuorumReceipt(tx_id=ftx.tx_id)
        for replica in alive:
            try:
                quorum.receipts.append(replica.notarise_filtered(ftx))
            except DoubleSpendError:
                raise
            if quorum.signer_count >= self.majority():
                return quorum
        raise OrderingError("could not assemble a notarisation majority")

    def notarise_full(self, stx: SignedTransaction) -> QuorumReceipt:
        """Validating-cluster path (every replica re-verifies contracts)."""
        alive = self._alive()
        if len(alive) < self.majority():
            raise OrderingError("notary cluster lost its quorum")
        quorum = QuorumReceipt(tx_id=stx.wire.tx_id)
        for replica in alive:
            quorum.receipts.append(replica.notarise_full(stx))
            if quorum.signer_count >= self.majority():
                return quorum
        raise OrderingError("could not assemble a notarisation majority")

    def combined_knowledge(self) -> dict:
        """Union of every replica's accumulated observations."""
        identities: set[str] = set()
        data_keys: set[str] = set()
        for replica in self.replicas:
            identities |= replica.observer.seen_identities
            data_keys |= replica.observer.seen_data_keys
        return {
            "identities": sorted(identities),
            "data_keys": sorted(data_keys),
        }
