"""Corda wire transactions and filtered transactions (tear-offs).

A wire transaction is a list of component groups — inputs, outputs,
commands, attachments, notary, time window — Merkle-ized so that signers
sign the root and any subset of components can be *torn off* for a party
that must act on the transaction without seeing everything (Section 2.2's
Merkle tree tear-offs; Section 5's oracle scenario).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import ProofError, ValidationError
from repro.common.ids import content_id
from repro.crypto.merkle import MerkleTree, TearOff
from repro.crypto.signatures import PublicKey, Signature, SignatureScheme
from repro.platforms.corda.states import Command, ContractState, StateRef


class ComponentGroup(enum.Enum):
    """Component group order is fixed so leaf indices are stable."""

    INPUTS = 0
    OUTPUTS = 1
    COMMANDS = 2
    ATTACHMENTS = 3
    NOTARY = 4
    TIME_WINDOW = 5


@dataclass(frozen=True)
class WireTransaction:
    """A full Corda transaction as built by the initiating flow."""

    inputs: tuple[StateRef, ...]
    outputs: tuple[ContractState, ...]
    commands: tuple[Command, ...]
    attachments: tuple[str, ...]
    notary: str
    time_window: float

    def _components(self) -> list[Any]:
        """Flatten component groups into Merkle leaves with stable tags."""
        leaves: list[Any] = []
        for ref in self.inputs:
            leaves.append({"group": "inputs", "tx_id": ref.tx_id, "index": ref.index})
        for state in self.outputs:
            leaves.append({
                "group": "outputs",
                "contract_id": state.contract_id,
                "participants": list(state.participants),
                "data": state.data,
                "owner_key_y": state.owner_key_y,
            })
        for command in self.commands:
            leaves.append({
                "group": "commands",
                "name": command.name,
                "signers": list(command.signers),
                "payload": command.payload,
            })
        for attachment in self.attachments:
            leaves.append({"group": "attachments", "id": attachment})
        leaves.append({"group": "notary", "name": self.notary})
        leaves.append({"group": "time_window", "at": self.time_window})
        return leaves

    def merkle_tree(self) -> MerkleTree:
        return MerkleTree(self._components())

    @property
    def tx_id(self) -> str:
        """The transaction id IS the Merkle root (as in Corda)."""
        return "corda:" + self.merkle_tree().root.hex()[:32]

    def component_indices(self, group: ComponentGroup) -> list[int]:
        """Leaf indices belonging to one component group."""
        sizes = [
            len(self.inputs),
            len(self.outputs),
            len(self.commands),
            len(self.attachments),
            1,  # notary
            1,  # time window
        ]
        start = sum(sizes[: group.value])
        return list(range(start, start + sizes[group.value]))

    def filtered(self, reveal_groups: list[ComponentGroup]) -> "FilteredTransaction":
        """Produce a tear-off revealing only the named component groups."""
        reveal: set[int] = set()
        for group in reveal_groups:
            reveal |= set(self.component_indices(group))
        tree = self.merkle_tree()
        return FilteredTransaction(
            tx_id=self.tx_id,
            root=tree.root,
            tear_off=tree.tear_off(reveal),
            revealed_groups=tuple(g.name for g in reveal_groups),
        )

    def signing_payload(self) -> bytes:
        """What every signer signs: the Merkle root."""
        return self.merkle_tree().root


@dataclass(frozen=True)
class FilteredTransaction:
    """A torn-off view: verifiable against the root, partial visibility."""

    tx_id: str
    root: bytes
    tear_off: TearOff
    revealed_groups: tuple[str, ...]

    def verify(self) -> bool:
        """Check the visible components really belong under the root."""
        return self.tear_off.verify(self.root)

    def visible_components(self) -> list[Any]:
        return [self.tear_off.visible[i] for i in sorted(self.tear_off.visible)]

    def visible_of_group(self, group: str) -> list[Any]:
        return [
            c for c in self.visible_components()
            if isinstance(c, dict) and c.get("group") == group
        ]

    def signing_payload(self) -> bytes:
        """Signing over a tear-off commits to the same root as the full tx."""
        return self.root


@dataclass
class SignedTransaction:
    """A wire transaction plus collected signatures over its root."""

    wire: WireTransaction
    signatures: dict[str, Signature] = field(default_factory=dict)

    def add_signature(self, signer: str, signature: Signature) -> None:
        self.signatures[signer] = signature

    def verify_signatures(
        self,
        scheme: SignatureScheme,
        resolve_key,
        required: set[str],
    ) -> None:
        """Check every required signer produced a valid root signature."""
        payload = self.wire.signing_payload()
        missing = required - set(self.signatures)
        if missing:
            raise ValidationError(f"missing signatures from {sorted(missing)}")
        for signer in required:
            public: PublicKey = resolve_key(signer)
            if not scheme.verify(public, payload, self.signatures[signer]):
                raise ValidationError(f"invalid signature from {signer!r}")
