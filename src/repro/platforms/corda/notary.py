"""Corda notaries.

The notary is Corda's ordering/uniqueness service: it prevents double
spends by tracking consumed state refs.  Two flavors matter for privacy
(paper Section 3.4 — the ordering service "has visibility of all DLT
events" *for validating notaries*):

- **validating**: receives the full transaction, re-runs contract
  verification — sees parties and data (FULL visibility);
- **non-validating**: receives a :class:`FilteredTransaction` exposing only
  the input refs and notary component — sees almost nothing (HASH_ONLY
  visibility), which is the tear-off mechanism earning its keep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.clock import SimClock
from repro.common.errors import (
    DoubleSpendError,
    OrderingError,
    ProofError,
    ValidationError,
)
from repro.crypto.signatures import PrivateKey, Signature, SignatureScheme
from repro.network.messages import Exposure
from repro.network.simnet import Observer
from repro.platforms.corda.states import StateRef
from repro.platforms.corda.transactions import (
    ComponentGroup,
    FilteredTransaction,
    SignedTransaction,
)
from repro.telemetry import Telemetry


@dataclass
class NotarisationReceipt:
    """The notary's signature over a transaction id it accepted."""

    tx_id: str
    notary: str
    signature: Signature


class Notary:
    """A (cluster of) uniqueness service(s) with a spent-ref map."""

    def __init__(
        self,
        name: str,
        scheme: SignatureScheme,
        clock: SimClock,
        validating: bool,
        operator: str = "third-party",
        contract_verifier: Callable | None = None,
        capacity_tps: float = 500.0,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.name = name
        self.scheme = scheme
        self.clock = clock
        self.telemetry = telemetry or Telemetry(clock=clock)
        self.validating = validating
        self.operator = operator
        self.contract_verifier = contract_verifier
        self.capacity_tps = capacity_tps
        self.crashed = False
        self.fault_plan = None
        self.observer = Observer(name)
        self.key = scheme.keygen_from_seed("notary:" + name)
        self._spent: dict[StateRef, str] = {}
        self._busy_until = 0.0
        self.total_notarised = 0

    # -- crash / recovery (mirrors OrderingService)

    def available(self, now: float | None = None) -> bool:
        if self.crashed:
            return False
        if self.fault_plan is None:
            return True
        when = self.clock.now if now is None else now
        return not self.fault_plan.orderer_down(self.name, when)

    def _require_available(self) -> None:
        if not self.available():
            raise OrderingError(f"notary {self.name!r} is down")

    def crash(self) -> None:
        """Take the notary down.  The spent-ref map is durable: losing it
        would let every consumed state be double-spent after recovery."""
        self.crashed = True
        self.telemetry.events.emit("notary.crash", notary=self.name)
        self.telemetry.metrics.counter("notary.crashes").inc()

    def recover(self) -> None:
        self.crashed = False
        self.telemetry.events.emit("notary.recover", notary=self.name)

    def _consume(self, refs: list[StateRef], tx_id: str) -> None:
        for ref in refs:
            if ref in self._spent and self._spent[ref] != tx_id:
                raise DoubleSpendError(
                    f"input {ref} already consumed by {self._spent[ref]}"
                )
        for ref in refs:
            self._spent[ref] = tx_id

    def _service_delay(self) -> float:
        start = max(self._busy_until, self.clock.now)
        self._busy_until = start + 1.0 / self.capacity_tps
        return self._busy_until

    def notarise_full(self, stx: SignedTransaction) -> NotarisationReceipt:
        """Validating path: full visibility, contract re-verification."""
        self._require_available()
        if not self.validating:
            raise ValidationError(
                f"notary {self.name!r} is non-validating; send a filtered tx"
            )
        wire = stx.wire
        # Full visibility: the notary learns parties and data.
        identities = set()
        data_keys = set()
        for state in wire.outputs:
            identities |= set(state.participants)
            data_keys |= set(state.data)
        self.observer.observe_exposure(
            Exposure.of(identities=identities, data_keys=data_keys)
        )
        if self.contract_verifier is not None:
            self.contract_verifier(wire)
        self._consume(list(wire.inputs), wire.tx_id)
        self.total_notarised += 1
        started = self.clock.now
        released = self._service_delay()
        self.telemetry.metrics.counter("notary.notarised", mode="full").inc()
        self.telemetry.tracer.record_span(
            "notary.notarise", start=started, end=released,
            mode="full", inputs=len(wire.inputs),
        )
        return NotarisationReceipt(
            tx_id=wire.tx_id,
            notary=self.name,
            signature=self.scheme.sign(self.key, wire.signing_payload()),
        )

    def notarise_filtered(self, ftx: FilteredTransaction) -> NotarisationReceipt:
        """Non-validating path: only input refs and notary name visible."""
        self._require_available()
        if self.validating:
            raise ValidationError(
                f"notary {self.name!r} is validating; send the full tx"
            )
        if not ftx.verify():
            raise ProofError("filtered transaction does not match its root")
        visible_inputs = ftx.visible_of_group("inputs")
        refs = [StateRef(tx_id=c["tx_id"], index=c["index"]) for c in visible_inputs]
        # The notary learns only opaque references — no identities, no data.
        self.observer.observe_exposure(Exposure())
        self._consume(refs, ftx.tx_id)
        self.total_notarised += 1
        started = self.clock.now
        released = self._service_delay()
        self.telemetry.metrics.counter("notary.notarised", mode="filtered").inc()
        self.telemetry.tracer.record_span(
            "notary.notarise", start=started, end=released,
            mode="filtered", inputs=len(refs),
        )
        return NotarisationReceipt(
            tx_id=ftx.tx_id,
            notary=self.name,
            signature=self.scheme.sign(self.key, ftx.signing_payload()),
        )

    def is_spent(self, ref: StateRef) -> bool:
        return ref in self._spent

    def is_member_operated(self, members: set[str]) -> bool:
        """Whether a transacting party runs this notary (private sequencing)."""
        return self.operator in members

    def knowledge(self) -> dict:
        return self.observer.knowledge()
