"""Private data collections (PDCs).

Section 5 (Fabric): "Confidential data is also possible between sub-groups
of channel participants through Private Data Collections, which allow for
data to be kept off the channel ledger (off-chain) and referenced in
transactions by hash only.  However, members of PDCs are listed in
associated transactions, so this method of confidentiality preservation is
useful only if privacy of interaction is not required within the channel."

A PDC is therefore: a member subset, per-member peer-hosted off-chain
stores, and hash-only ledger references that *do* name the collection
members — the leakage auditor checks that last property explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import MembershipError
from repro.offchain.stores import Hosting, OffChainStore


@dataclass
class PrivateDataCollection:
    """A named collection over a subset of channel members."""

    name: str
    members: frozenset[str]
    stores: dict[str, OffChainStore] = field(default_factory=dict)

    @classmethod
    def create(cls, name: str, members: list[str]) -> "PrivateDataCollection":
        member_set = frozenset(members)
        stores = {
            member: OffChainStore(
                name=f"pdc:{name}@{member}",
                hosting=Hosting.PEER,
                authorized=set(member_set),
            )
            for member in member_set
        }
        return cls(name=name, members=member_set, stores=stores)

    def put(self, writer: str, key: str, value: Any, now: float = 0.0) -> str:
        """Store private data on every member peer; returns the hash anchor."""
        if writer not in self.members:
            raise MembershipError(
                f"{writer!r} is not a member of collection {self.name!r}"
            )
        anchor = ""
        for store in self.stores.values():
            anchor = store.put(key, value, now=now)
        return anchor

    def get(self, reader: str, key: str) -> Any:
        """Read private data from the reader's own peer store."""
        if reader not in self.members:
            raise MembershipError(
                f"{reader!r} is not a member of collection {self.name!r}"
            )
        return self.stores[reader].get(key, caller=reader)

    def purge(self, key: str, reason: str, now: float = 0.0) -> None:
        """Delete private data from all member peers (Fabric's purge).

        The on-chain hash anchor remains — the paper's note that deletion
        coexists uneasily with an immutable record is visible here.
        """
        for store in self.stores.values():
            if not store.is_deleted(key):
                store.delete(key, reason=reason, now=now)

    def disclosure(self) -> dict:
        """What a transaction referencing this PDC reveals on-chain:
        the collection name and its member list (paper's caveat)."""
        return {"collection": self.name, "members": sorted(self.members)}
