"""Hyperledger Fabric simulation: channels, chaincode, PDCs, Idemix, orderer."""

from repro.platforms.fabric.channel import ChaincodeDefinition, Channel
from repro.platforms.fabric.network import (
    ANONYMOUS_CLIENT,
    ORDERER_NODE,
    FabricNetwork,
    InvokeResult,
    ProposedTransaction,
    ValidationCode,
)
from repro.platforms.fabric.pdc import PrivateDataCollection

__all__ = [
    "ChaincodeDefinition",
    "Channel",
    "FabricNetwork",
    "InvokeResult",
    "ProposedTransaction",
    "ValidationCode",
    "PrivateDataCollection",
    "ANONYMOUS_CLIENT",
    "ORDERER_NODE",
]
