"""The Hyperledger Fabric simulation.

Reproduces Fabric's privacy architecture as the paper describes it
(Section 5): channels as separate ledgers, chaincode visible only where
installed, an ordering service with full visibility of channel members and
transactions, Idemix for zero-knowledge client identity, and private data
collections.  The execute-order-validate flow is message-accurate: every
proposal, endorsement, submission, and block delivery crosses the
simulated network, so the leakage auditor can account for every exposure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import (
    ContractError,
    EndorsementError,
    MembershipError,
    OrderingError,
    PlatformError,
    ReproError,
    ValidationError,
)
from repro.core.mechanisms import Mechanism
from repro.crypto.anoncred import (
    CredentialHolder,
    CredentialIssuer,
    verify_presentation,
)
from repro.crypto.hashing import hash_hex
from repro.crypto.merkle import MerkleTree
from repro.crypto.symmetric import SymmetricKey
from repro.execution.contracts import SmartContract
from repro.execution.engines import LedgerEngine, OffChainEngine, TEEEngine
from repro.ledger.ordering import (
    OrdererVisibility,
    OrderingService,
    make_private_orderer,
)
from repro.ledger.transaction import (
    Endorsement,
    ReadEntry,
    Transaction,
    WriteEntry,
)
from repro.ledger.state import WorldState
from repro.ledger.validation import EndorsementPolicy, verify_endorsements
from repro.network.messages import Exposure
from repro.platforms.base import (
    Platform,
    ProbeResult,
    SupportLevel,
    TxReceipt,
    TxRequest,
    rejection_receipt,
)
from repro.platforms.fabric.channel import Channel
from repro.platforms.fabric.pdc import PrivateDataCollection
from repro.recovery.catchup import catchup_dedup_key, pick_provider, ship

ORDERER_NODE = "fabric-orderer"
ANONYMOUS_CLIENT = "anonymous-client"


class ValidationCode(enum.Enum):
    """Fabric-style per-transaction validation outcomes."""

    VALID = "VALID"
    MVCC_READ_CONFLICT = "MVCC_READ_CONFLICT"
    ENDORSEMENT_POLICY_FAILURE = "ENDORSEMENT_POLICY_FAILURE"


@dataclass
class ProposedTransaction:
    """An endorsed transaction awaiting ordering (propose-phase output)."""

    channel_name: str
    tx: Transaction
    return_value: object


@dataclass
class InvokeResult:
    """Outcome of one chaincode invocation through the full flow."""

    tx: Transaction
    return_value: object
    valid: bool
    commit_time: float
    validation_code: "ValidationCode" = None  # set by the commit path


class FabricNetwork(Platform):
    """A Fabric network: orgs with one peer each, channels, one orderer."""

    platform_name = "fabric"

    def __init__(
        self,
        seed: str = "fabric",
        orderer_operator: str = "third-party",
        resilient_delivery: bool = False,
    ) -> None:
        super().__init__(seed=seed)
        self.resilient_delivery = resilient_delivery
        self.network.add_node(ORDERER_NODE)
        self.orderer = OrderingService(
            ORDERER_NODE,
            self.clock,
            visibility=OrdererVisibility.FULL,
            operator=orderer_operator,
            telemetry=self.telemetry,
        )
        self.channels: dict[str, Channel] = {}
        # contract id -> channel it is committed on; lets the pipeline
        # infer the channel when TxRequest.scope is omitted.
        self.contract_channels: dict[str, str] = {}
        self.engine = LedgerEngine(telemetry=self.telemetry)
        self.idemix_issuer = CredentialIssuer(
            "fabric-idemix-msp", scheme=self.scheme, rng=self.rng.fork("idemix")
        )
        self._idemix_holders: dict[str, CredentialHolder] = {}

    # -- membership & channels

    def onboard(self, name: str, attributes: dict | None = None):
        party = super().onboard(name, attributes=attributes)
        self.idemix_issuer.enroll(name, {"msp": "fabric", **(attributes or {})})
        self._idemix_holders[name] = CredentialHolder(
            name, self.idemix_issuer, rng=self.rng.fork("holder:" + name)
        )
        return party

    def create_channel(self, name: str, members: list[str]) -> Channel:
        """Stand up a separate ledger for *members* only."""
        for member in members:
            if member not in self.parties:
                raise MembershipError(f"{member!r} is not onboarded")
        if name in self.channels:
            raise PlatformError(f"channel {name!r} already exists")
        channel = Channel(name, members)
        self.channels[name] = channel
        return channel

    def channel(self, name: str) -> Channel:
        if name not in self.channels:
            raise PlatformError(f"unknown channel {name!r}")
        return self.channels[name]

    # -- fault injection

    def inject_faults(self, plan) -> None:
        super().inject_faults(plan)
        self.orderer.fault_plan = plan

    def crash_ordering(self) -> None:
        """Take the ordering service down (queues survive per durability)."""
        self.orderer.crash()

    def recover_ordering(self) -> None:
        self.orderer.recover()

    # -- chaincode lifecycle

    def install_chaincode(self, org: str, contract: SmartContract) -> None:
        """Install code on one org's peer (code visible only there)."""
        self.engine.install(org, contract)

    def deploy_chaincode(
        self,
        channel_name: str,
        contract: SmartContract,
        endorsers: list[str],
        policy: EndorsementPolicy | None = None,
    ) -> None:
        """Full lifecycle: install on endorsers, approve by all, commit."""
        channel = self.channel(channel_name)
        for endorser in endorsers:
            channel.require_member(endorser)
            self.install_chaincode(endorser, contract)
        policy = policy or EndorsementPolicy.all_of(endorsers)
        for member in channel.members:
            channel.approve_definition(member, contract.contract_id, contract.version, policy)
        channel.commit_definition(contract.contract_id)
        self.contract_channels[contract.contract_id] = channel_name

    # -- the execute-order-validate flow

    def _crashed_members(self, channel: Channel) -> set[str]:
        """Members whose peers are currently down (miss blocks, lag state)."""
        return {m for m in channel.members if self.network.is_crashed(m)}

    def _endorse(
        self,
        channel: Channel,
        submitter_label: str,
        contract_id: str,
        function: str,
        args: dict,
        endorsers: list[str],
        proposal_exposure: Exposure,
    ):
        """Send proposals, execute on each endorser, check agreement."""
        reference = channel.reference_state(skip=self._crashed_members(channel))
        results = []
        with self.telemetry.span(
            "fabric.endorse",
            channel=channel.name,
            contract=contract_id,
            endorsers=len(endorsers),
        ):
            for endorser in endorsers:
                self.network.send(
                    submitter_label if submitter_label in self.parties else endorsers[0],
                    endorser,
                    "proposal",
                    {"contract": contract_id, "function": function, "args": args},
                    exposure=proposal_exposure,
                )
                result = self.engine.execute(
                    endorser,
                    contract_id,
                    function,
                    args,
                    reference.snapshot(),
                    {k: reference.version(k) for k in reference.keys()},
                )
                results.append((endorser, result))
        first = results[0][1]
        for endorser, result in results[1:]:
            if result.writes != first.writes or result.deletes != first.deletes:
                raise EndorsementError(
                    f"endorser {endorser!r} produced a divergent write set"
                )
        return first

    def propose(
        self,
        channel_name: str,
        submitter: str,
        contract_id: str,
        function: str,
        args: dict,
        endorsers: list[str] | None = None,
        collection_writes: dict[str, dict] | None = None,
        anonymous: bool = False,
    ) -> "ProposedTransaction":
        """Run the propose/endorse phase only; returns an endorsed proposal.

        Several proposals endorsed against the same snapshot can then be
        submitted together with :meth:`submit_batch`, which is how MVCC
        read conflicts arise in real Fabric.  ``collection_writes`` maps
        PDC name -> {key: value}; the values go to member peer stores,
        only hashes reach the ledger, and the PDC member list is disclosed
        in transaction metadata (the paper's caveat).  ``anonymous=True``
        submits with an Idemix presentation instead of the client
        certificate.
        """
        channel = self.channel(channel_name)
        if not anonymous:
            channel.require_member(submitter)
            self.authenticate(submitter)
        definition = channel.committed_definition(contract_id)
        endorsers = endorsers or sorted(
            definition.policy.required & channel.members
        )
        for endorser in endorsers:
            channel.require_member(endorser)

        visible_identities = set(endorsers)
        metadata: dict = {}
        if anonymous:
            holder = self._idemix_holders[submitter]
            presentation = holder.obtain_presentation({"msp": "fabric"})
            if not verify_presentation(self.idemix_issuer, presentation):
                raise MembershipError("Idemix presentation failed verification")
            self.telemetry.metrics.counter("crypto.ops", mechanism="idemix").inc()
            metadata["anonymous"] = True
            metadata["idemix"] = {
                "disclosed": presentation.disclosed,
                "nonce": presentation.nonce.hex(),
            }
            submitter_label = ANONYMOUS_CLIENT
        else:
            visible_identities.add(submitter)
            submitter_label = submitter

        proposal_exposure = Exposure.of(
            identities=visible_identities, code_ids={contract_id}
        )
        execution = self._endorse(
            channel, submitter_label, contract_id, function, args, endorsers,
            proposal_exposure,
        )

        private_hashes: dict = {}
        if collection_writes:
            disclosures = []
            for collection_name, writes in collection_writes.items():
                collection = channel.collection(collection_name)
                for key, value in writes.items():
                    anchor = collection.put(
                        endorsers[0] if submitter_label == ANONYMOUS_CLIENT else submitter,
                        key,
                        value,
                        now=self.clock.now,
                    )
                    private_hashes[f"{collection_name}/{key}"] = anchor
                    self.telemetry.metrics.counter(
                        "crypto.ops", mechanism="private-data-collection"
                    ).inc()
                disclosures.append(collection.disclosure())
            metadata["collections"] = disclosures

        tx = Transaction(
            channel=channel_name,
            submitter=submitter_label,
            reads=tuple(ReadEntry(key=k, version=v) for k, v in sorted(execution.reads.items())),
            writes=tuple(
                [WriteEntry(key=k, value=v) for k, v in sorted(execution.writes.items())]
                + [WriteEntry(key=k, is_delete=True) for k in sorted(execution.deletes)]
            ),
            private_hashes=private_hashes,
            metadata=metadata,
            timestamp=self.clock.now,
        )
        endorsements = []
        for endorser in endorsers:
            signature = self.scheme.sign(self.parties[endorser].key, tx.signing_bytes())
            self.telemetry.metrics.counter(
                "crypto.ops", mechanism="endorsement-signature"
            ).inc()
            endorsements.append(Endorsement(endorser=endorser, signature=signature))
            self.network.send(
                endorser,
                submitter_label if submitter_label in self.parties else endorser,
                "endorsement",
                {"tx_id": tx.tx_id},
                exposure=Exposure.of(identities={endorser}),
            )
        tx = tx.with_endorsements(endorsements)

        # Stamp the participant list the orderer will see (paper Section 5)
        # and re-sign over the final canonical content.
        tx_metadata = dict(tx.metadata)
        participants = visible_identities if not anonymous else set(endorsers)
        tx = Transaction(**{**tx.__dict__, "metadata": {**tx_metadata, "participants": sorted(participants)}})
        tx = tx.with_endorsements(endorsements_resign(self, tx, endorsers))
        return ProposedTransaction(
            channel_name=channel_name,
            tx=tx,
            return_value=execution.return_value,
        )

    def invoke(
        self,
        channel_name: str,
        submitter: str,
        contract_id: str,
        function: str,
        args: dict,
        endorsers: list[str] | None = None,
        collection_writes: dict[str, dict] | None = None,
        anonymous: bool = False,
    ) -> InvokeResult:
        """Full flow for one transaction: propose -> order -> commit.

        Raises :class:`ValidationError` if the transaction is invalidated
        at commit (e.g. a stale read).  For batch semantics with per-tx
        validation codes, use :meth:`propose` + :meth:`submit_batch`.
        """
        with self.telemetry.span(
            "fabric.invoke",
            channel=channel_name,
            contract=contract_id,
            function=function,
        ):
            proposal = self.propose(
                channel_name, submitter, contract_id, function, args,
                endorsers=endorsers, collection_writes=collection_writes,
                anonymous=anonymous,
            )
            result = self.submit_batch(channel_name, [proposal])[0]
        if not result.valid:
            raise ValidationError(
                f"transaction {result.tx.tx_id} invalidated: "
                f"{result.validation_code}"
            )
        return result

    def submit_batch(
        self,
        channel_name: str,
        proposals: list["ProposedTransaction"],
        force_cut: bool = True,
    ) -> list[InvokeResult]:
        """Order several endorsed proposals into one block and commit.

        Mirrors Fabric's validate phase: every transaction lands on the
        chain, each carrying a validation code; only VALID transactions
        mutate state.  Proposals endorsed against the same snapshot that
        touch the same keys therefore conflict — the first commits, the
        rest are marked MVCC_READ_CONFLICT.

        ``force_cut=True`` (the synchronous default) flushes the orderer
        immediately; ``force_cut=False`` leaves the cut to the orderer's
        own policy, so a partial batch is not released until its oldest
        transaction has waited out ``batch_timeout`` — the backpressure a
        drip-feeding client actually experiences.
        """
        channel = self.channel(channel_name)
        if not self.orderer.available():
            # Fail before any state or queue mutation so a caller can
            # retry the whole batch after recovery without double-apply.
            raise OrderingError(f"ordering service {ORDERER_NODE!r} is down")
        with self.telemetry.span(
            "fabric.order", channel=channel_name, batch_size=len(proposals)
        ):
            for proposal in proposals:
                if proposal.channel_name != channel_name:
                    raise PlatformError("proposal belongs to a different channel")
                submit_hop = (
                    self.network.send_with_retry
                    if self.resilient_delivery
                    else self.network.send
                )
                submit_hop(
                    proposal.tx.submitter
                    if proposal.tx.submitter in self.parties
                    else sorted(channel.members)[0],
                    ORDERER_NODE,
                    "submit",
                    {"tx_id": proposal.tx.tx_id},
                    exposure=Exposure.of(
                        identities=set(proposal.tx.metadata.get("participants", [])),
                        data_keys={w.key for w in proposal.tx.writes}
                        | {r.key for r in proposal.tx.reads},
                    ),
                )
                self.orderer.submit(proposal.tx)
            batch = self.orderer.cut_batch(channel_name, force=force_cut)
        return self._commit_block(channel, proposals, batch.released_at)

    def _commit_block(
        self,
        channel: Channel,
        proposals: list["ProposedTransaction"],
        released_at: float,
    ) -> list[InvokeResult]:
        """Deliver one block to every member; validate and apply each tx.

        Fabric semantics: every transaction lands on the chain with a
        validation code; invalid ones do not touch state.  Validation runs
        sequentially against the evolving state, so two proposals endorsed
        over the same snapshot conflict on their read sets.
        """
        results: list[InvokeResult] = []
        block_txs: list[Transaction] = []
        # A crashed member misses block delivery and its replica lags —
        # that is what checkpoint + catch-up recover from later.  Live
        # members keep committing as long as the endorsement policy can
        # still be met without the crashed peer.
        crashed = self._crashed_members(channel)
        for proposal in proposals:
            tx = proposal.tx
            data_keys = {w.key for w in tx.writes} | {r.key for r in tx.reads}
            identities = set(tx.metadata.get("participants", []))
            for member in sorted(channel.members):
                if member in crashed:
                    continue
                self.network.send(
                    ORDERER_NODE,
                    member,
                    "block",
                    {"tx_id": tx.tx_id, "channel": channel.name},
                    exposure=Exposure.of(identities=identities, data_keys=data_keys),
                )
            with self.telemetry.span(
                "fabric.validate", channel=channel.name
            ) as validate_span:
                code = ValidationCode.VALID
                # 1. Endorsement policy of the (single committed) chaincode.
                # Every live committing peer validates independently (the
                # honest Fabric model); the signature-verification cache
                # turns the repeats into lookups.
                contract_id = self._contract_of(channel, tx)
                if contract_id is not None:
                    policy = channel.committed_definition(contract_id).policy
                    validators = [
                        m for m in sorted(channel.members) if m not in crashed
                    ] or [None]
                    try:
                        for __ in validators:
                            verify_endorsements(
                                tx, policy, self.scheme,
                                lambda n: self.parties[n].public_key,
                            )
                    except EndorsementError:
                        code = ValidationCode.ENDORSEMENT_POLICY_FAILURE
                # 2. MVCC read-set check against the evolving state.
                if code is ValidationCode.VALID:
                    reference = channel.reference_state(skip=crashed)
                    for read in tx.reads:
                        if reference.version(read.key) != read.version:
                            code = ValidationCode.MVCC_READ_CONFLICT
                            break
                self.telemetry.tracer.set_attribute(
                    validate_span, "validation_code", code.value
                )
                self.telemetry.metrics.counter(
                    "fabric.validation", code=code.value
                ).inc()
            # 3. Apply writes on every replica iff valid.
            with self.telemetry.span(
                "fabric.commit", channel=channel.name, valid=code is ValidationCode.VALID
            ):
                if code is ValidationCode.VALID:
                    for member, state in channel.states.items():
                        if member in crashed:
                            continue
                        for write in tx.writes:
                            if write.is_delete:
                                if state.exists(write.key):
                                    state.delete(write.key)
                            else:
                                state.put(write.key, write.value)
                block_txs.append(tx)
                channel.record_commit(tx, code is ValidationCode.VALID)
            results.append(InvokeResult(
                tx=tx,
                return_value=proposal.return_value,
                valid=code is ValidationCode.VALID,
                commit_time=released_at,
                validation_code=code,
            ))
        channel.chain.append(block_txs, self.clock.now)
        self.clock.advance_to(released_at)
        return results

    def _contract_of(self, channel: Channel, tx: Transaction) -> str | None:
        """Best-effort recovery of which committed chaincode produced *tx*."""
        committed = [
            cid for cid, d in channel.definitions.items() if d.committed
        ]
        if len(committed) == 1:
            return committed[0]
        return None

    # ------------------------------------------------------------------
    # Unified transaction pipeline (Platform hooks)
    #
    # A TxRequest routes through the *same* propose -> order -> validate
    # -> commit path as the native entrypoints.  Fabric-specific mapping:
    # ``scope`` is the channel (inferred from the committed chaincode when
    # omitted), ``private_args`` are PDC collection writes, and
    # ``options`` may carry ``endorsers`` / ``anonymous``.  ``private_for``
    # is refused — Fabric's confidentiality tools are channels and PDCs,
    # not ad-hoc participant lists.
    # ------------------------------------------------------------------

    def _request_channel(self, request: TxRequest) -> str:
        if request.scope:
            return request.scope
        channel_name = self.contract_channels.get(request.contract_id)
        if channel_name is None:
            raise PlatformError(
                f"cannot infer a channel for contract {request.contract_id!r}; "
                "set TxRequest.scope"
            )
        return channel_name

    def _check_request(self, request: TxRequest) -> None:
        if request.private_for is not None:
            raise PlatformError(
                "fabric expresses confidentiality through channels and "
                "private data collections; TxRequest.private_for is not "
                "supported — use scope and private_args"
            )

    def _receipt_from(
        self, request: TxRequest, result: InvokeResult, submitted_at: float
    ) -> TxReceipt:
        return TxReceipt(
            request=request,
            platform=self.platform_name,
            tx_id=result.tx.tx_id,
            committed=result.valid,
            status="committed" if result.valid else result.validation_code.value,
            submitted_at=submitted_at,
            committed_at=result.commit_time,
            result=result.return_value,
            info={
                "channel": result.tx.channel,
                "validation_code": result.validation_code.value,
            },
        )

    def _submit_one_native(self, request: TxRequest) -> TxReceipt:
        self._check_request(request)
        channel_name = self._request_channel(request)
        submitted_at = self.clock.now
        result = self.invoke(
            channel_name,
            request.submitter,
            request.contract_id,
            request.function,
            dict(request.args),
            endorsers=request.options.get("endorsers"),
            collection_writes=request.private_args,
            anonymous=request.options.get("anonymous", False),
        )
        return self._receipt_from(request, result, submitted_at)

    def _submit_batch_native(
        self, requests: list[TxRequest], force_cut: bool
    ) -> list[TxReceipt]:
        # Endorse every request first (all against the same committed
        # snapshot — this is how real Fabric clients create MVCC read
        # conflicts), then order each channel's proposals as one batch.
        receipts: list[TxReceipt | None] = [None] * len(requests)
        by_channel: dict[str, list[tuple[int, ProposedTransaction, float]]] = {}
        channel_order: list[str] = []
        for index, request in enumerate(requests):
            submitted_at = self.clock.now
            try:
                self._check_request(request)
                channel_name = self._request_channel(request)
                proposal = self.propose(
                    channel_name,
                    request.submitter,
                    request.contract_id,
                    request.function,
                    dict(request.args),
                    endorsers=request.options.get("endorsers"),
                    collection_writes=request.private_args,
                    anonymous=request.options.get("anonymous", False),
                )
            except ReproError as error:
                receipts[index] = rejection_receipt(
                    request, self.platform_name, submitted_at, error
                )
                continue
            if channel_name not in by_channel:
                channel_order.append(channel_name)
            by_channel.setdefault(channel_name, []).append(
                (index, proposal, submitted_at)
            )
        for channel_name in channel_order:
            entries = by_channel[channel_name]
            try:
                results = self.submit_batch(
                    channel_name,
                    [proposal for __, proposal, __ in entries],
                    force_cut=force_cut,
                )
            except ReproError as error:
                for index, __, submitted_at in entries:
                    receipts[index] = rejection_receipt(
                        requests[index], self.platform_name, submitted_at, error
                    )
                continue
            for (index, __, submitted_at), result in zip(entries, results):
                receipts[index] = self._receipt_from(
                    requests[index], result, submitted_at
                )
        return receipts

    def _state_snapshot(self) -> dict:
        channels = {}
        for name in sorted(self.channels):
            channel = self.channels[name]
            channels[name] = {
                "members": sorted(channel.members),
                "height": channel.chain.height,
                "committed": sorted(channel.committed_tx_ids),
                "invalid": sorted(channel.invalid_tx_ids),
                "replicas": {
                    member: channel.states[member].snapshot()
                    for member in sorted(channel.members)
                },
            }
        return {"platform": self.platform_name, "channels": channels}

    # ------------------------------------------------------------------
    # Crash recovery (Platform hooks)
    #
    # Durable per peer: the chain (append-only, shared), PDC stores
    # (off-chain storage services), and checkpoints.  Volatile: the
    # world-state replica and the network node's inbox/dedup memory.
    # Catch-up ships per-channel blocks only — Fabric's visibility rule:
    # a rejoining member receives its channels' transactions, with PDC
    # values reduced to their on-chain anchors (``tx.private_hashes``),
    # never another channel's traffic.
    # ------------------------------------------------------------------

    def _member_channels(self, name: str) -> list[Channel]:
        return [
            self.channels[channel_name]
            for channel_name in sorted(self.channels)
            if name in self.channels[channel_name].members
        ]

    def _checkpoint_data(self, name: str) -> dict:
        heights: dict[str, int] = {}
        state_hashes: dict[str, str] = {}
        snapshots: dict[str, dict] = {}
        for channel in self._member_channels(name):
            heights[channel.name] = channel.chain.height
            snapshots[channel.name] = channel.states[name].dump()
            state_hashes[channel.name] = hash_hex(
                "repro/recovery/fabric-state", channel.states[name].snapshot()
            )
        return {
            "heights": heights,
            "state_hashes": state_hashes,
            "pending": {},
            "snapshots": snapshots,
        }

    def _drop_volatile(self, name: str) -> None:
        for channel in self._member_channels(name):
            channel.states[name] = WorldState()

    def _restore_checkpoint(self, name: str, checkpoint) -> None:
        for channel in self._member_channels(name):
            if checkpoint is not None and channel.name in checkpoint.snapshots:
                channel.states[name] = WorldState.from_dump(
                    checkpoint.snapshots[channel.name]
                )
            else:
                channel.states[name] = WorldState()

    def _catch_up(self, name: str, checkpoint) -> dict:
        items = 0
        blocks_behind = 0
        for channel in self._member_channels(name):
            since = checkpoint.height_of(channel.name) if checkpoint else 0
            provider = pick_provider(self.network, channel.members, name)
            if provider is None:
                continue  # no live peer on this channel; stays behind
            committed = set(channel.committed_tx_ids)
            state = channel.states[name]
            for block in channel.chain.blocks():
                if block.height <= since:
                    continue
                blocks_behind += 1
                for tx in block.transactions:
                    dedup = catchup_dedup_key("fabric", channel.name, name, tx.tx_id)
                    fresh = not self.network.node(name).has_applied(dedup)
                    delivered = ship(
                        self.network,
                        provider,
                        name,
                        "catchup-block",
                        {
                            "tx_id": tx.tx_id,
                            "channel": channel.name,
                            "height": block.height,
                            # PDC values never travel: anchors only.
                            "private_hashes": dict(tx.private_hashes),
                        },
                        exposure=Exposure.of(
                            identities=set(tx.metadata.get("participants", [])),
                            data_keys={w.key for w in tx.writes}
                            | {r.key for r in tx.reads},
                        ),
                        dedup_key=dedup,
                    )
                    if not (delivered and fresh):
                        continue
                    items += 1
                    if tx.tx_id not in committed:
                        continue  # invalid txs are on-chain but never applied
                    for write in tx.writes:
                        if write.is_delete:
                            if state.exists(write.key):
                                state.delete(write.key)
                        else:
                            state.put(write.key, write.value)
        self.telemetry.metrics.counter("recovery.catchup.items").inc(items)
        return {"items": items, "blocks_behind": blocks_behind}

    # ------------------------------------------------------------------
    # Table 1 capability probes (HLF column)
    # ------------------------------------------------------------------

    def _probe_fixture(self) -> tuple[Channel, SmartContract]:
        """A throwaway channel + chaincode for probes that need one."""
        suffix = f"probe{len(self.channels)}"
        for org in ("probe-org1", "probe-org2"):
            if org not in self.parties:
                self.onboard(org)
        channel = self.create_channel(f"ch-{suffix}", ["probe-org1", "probe-org2"])

        def put(view, args):
            view.put(args["key"], args["value"])
            return args["value"]

        contract = SmartContract(
            contract_id=f"cc-{suffix}",
            version=1,
            language="python-chaincode",
            functions={"put": put},
        )
        self.deploy_chaincode(channel.name, contract, ["probe-org1", "probe-org2"])
        return channel, contract

    def _probe_separation_of_ledgers_parties(self) -> ProbeResult:
        channel, contract = self._probe_fixture()
        if "probe-outsider" not in self.parties:
            self.onboard("probe-outsider")
        self.invoke(channel.name, "probe-org1", contract.contract_id, "put",
                    {"key": "k", "value": 1})
        self.network.run()
        outsider = self.network.node("probe-outsider").observer
        leaked = outsider.seen_identities & {"probe-org1", "probe-org2"}
        level = SupportLevel.NATIVE if not leaked else SupportLevel.REWRITE
        return self._result(
            Mechanism.SEPARATION_OF_LEDGERS_PARTIES, level,
            "channels confine member identities: an onboarded non-member "
            f"observed {sorted(leaked) or 'no member identities'}",
        )

    def _probe_one_time_public_keys(self) -> ProbeResult:
        # Fabric identities must chain to an enrolled MSP certificate; a
        # fresh uncertified key is rejected at membership, and changing
        # that means rewriting the MSP (paper: '-').
        channel, contract = self._probe_fixture()
        fresh_key = self.scheme.keygen(self.rng.fork("fresh-ot"))
        tx = Transaction(channel=channel.name, submitter="one-time-pseudonym")
        signature = self.scheme.sign(fresh_key, tx.signing_bytes())
        try:
            self.membership.verify_member_signature(
                self.scheme, "one-time-pseudonym", tx.signing_bytes(), signature
            )
            level = SupportLevel.NATIVE
            evidence = "unexpected: uncertified key accepted"
        except Exception:
            level = SupportLevel.REWRITE
            evidence = (
                "a fresh key with no MSP certificate is rejected at membership; "
                "supporting per-transaction keys requires rewriting the MSP"
            )
        return self._result(Mechanism.ONE_TIME_PUBLIC_KEYS, level, evidence)

    def _probe_zkp_of_identity(self) -> ProbeResult:
        channel, contract = self._probe_fixture()
        result = self.invoke(
            channel.name, "probe-org1", contract.contract_id, "put",
            {"key": "anon", "value": 7}, anonymous=True,
        )
        anonymous = result.tx.submitter == ANONYMOUS_CLIENT
        has_proof = "idemix" in result.tx.metadata
        level = (
            SupportLevel.NATIVE if anonymous and has_proof else SupportLevel.REWRITE
        )
        return self._result(
            Mechanism.ZKP_OF_IDENTITY, level,
            "Idemix: transaction committed with a verified anonymous "
            "credential presentation and no client identity on the wire",
        )

    def _probe_separation_of_ledgers_data(self) -> ProbeResult:
        channel, contract = self._probe_fixture()
        self.invoke(channel.name, "probe-org1", contract.contract_id, "put",
                    {"key": "secret-data", "value": 42})
        self.network.run()
        if "probe-outsider" not in self.parties:
            self.onboard("probe-outsider")
        outsider = self.network.node("probe-outsider").observer
        leaked = "secret-data" in outsider.seen_data_keys
        return self._result(
            Mechanism.SEPARATION_OF_LEDGERS_DATA,
            SupportLevel.REWRITE if leaked else SupportLevel.NATIVE,
            "channel transactions are delivered to channel members only",
        )

    def _probe_off_chain_peer_data(self) -> ProbeResult:
        channel, contract = self._probe_fixture()
        collection = channel.create_collection("probe-pdc", ["probe-org1"])
        result = self.invoke(
            channel.name, "probe-org1", contract.contract_id, "put",
            {"key": "public-ref", "value": "see-pdc"},
            collection_writes={"probe-pdc": {"pii": {"ssn": "000-11-2222"}}},
        )
        anchored = any(k.startswith("probe-pdc/") for k in result.tx.private_hashes)
        readable = collection.get("probe-org1", "pii") == {"ssn": "000-11-2222"}
        members_listed = result.tx.metadata["collections"][0]["members"] == ["probe-org1"]
        level = (
            SupportLevel.NATIVE
            if anchored and readable and members_listed
            else SupportLevel.REWRITE
        )
        return self._result(
            Mechanism.OFF_CHAIN_PEER_DATA, level,
            "PDC stores data on member peers, anchors a hash on-chain, and "
            "(per the paper's caveat) lists collection members in the tx",
        )

    def _probe_symmetric_encryption(self) -> ProbeResult:
        channel, contract = self._probe_fixture()
        key = SymmetricKey.from_seed("probe-shared-key")
        ciphertext = key.encrypt(b"confidential payload", self.rng.fork("sym"))
        self.invoke(
            channel.name, "probe-org1", contract.contract_id, "put",
            {"key": "enc-blob", "value": ciphertext.body.hex()},
        )
        stored = channel.reference_state().get("enc-blob")
        roundtrip = key.decrypt(ciphertext) == b"confidential payload"
        return self._result(
            Mechanism.SYMMETRIC_ENCRYPTION,
            SupportLevel.NATIVE if stored and roundtrip else SupportLevel.REWRITE,
            "ledger values are opaque bytes; AES-style encryption of values "
            "with PKI-shared keys needs no platform change",
        )

    def _probe_merkle_tear_offs(self) -> ProbeResult:
        # Fabric transactions are not Merkle-structured component groups;
        # tear-offs can be layered on by applications (library Merkle tree
        # inside a value) but no platform API consumes them: '*'.
        tree = MerkleTree(["amount:100", "price:42", "secret-margin:7"])
        tear_off = tree.tear_off({0, 1})
        works_in_library = tear_off.verify(tree.root)
        native_api = hasattr(self, "filtered_transaction")
        level = (
            SupportLevel.NATIVE if native_api
            else SupportLevel.IMPLEMENTABLE if works_in_library
            else SupportLevel.REWRITE
        )
        return self._result(
            Mechanism.MERKLE_TEAR_OFFS, level,
            "no native filtered-transaction API; applications can embed "
            "library Merkle roots in values and share tear-offs off-band",
        )

    def _probe_install_on_involved_nodes(self) -> ProbeResult:
        channel, contract = self._probe_fixture()
        visible = self.engine.registry.nodes_with_code_visibility(contract.contract_id)
        outsiders = visible - set(channel.members)
        return self._result(
            Mechanism.INSTALL_ON_INVOLVED_NODES,
            SupportLevel.NATIVE if not outsiders else SupportLevel.REWRITE,
            f"chaincode visible only on endorsing peers {sorted(visible)}",
        )

    def _probe_off_chain_execution_engine(self) -> ProbeResult:
        engine = OffChainEngine()

        def business_logic(view, args):
            view.put("result", args["x"] * 2)
            return args["x"] * 2

        contract = SmartContract(
            contract_id="probe-external", version=1, language="kotlin",
            functions={"run": business_logic},
        )
        engine.install("external-host", contract)
        result = engine.execute("external-host", "probe-external", "run",
                                {"x": 21}, {}, {})
        return self._result(
            Mechanism.OFF_CHAIN_EXECUTION_ENGINE,
            SupportLevel.IMPLEMENTABLE if result.return_value == 42 else SupportLevel.REWRITE,
            "feasible via the Hyperledger transaction-execution-platform "
            "proposal (paper ref [1]); not part of the released platform",
        )

    def _probe_trusted_execution_environment(self) -> ProbeResult:
        # The TEE engine works standalone, but wiring it into Fabric's
        # endorsement flow would replace peer-side chaincode execution
        # entirely — the paper classifies this as requiring a rewrite.
        engine = TEEEngine()

        def noop(view, args):
            return "ok"

        contract = SmartContract(
            contract_id="probe-tee", version=1, language="python-chaincode",
            functions={"noop": noop},
        )
        engine.install("peer-tee", contract)
        standalone = engine.execute("peer-tee", "probe-tee", "noop", {}, {}, {})
        endorsement_flow_integrates_tee = isinstance(self.engine, TEEEngine)
        level = (
            SupportLevel.NATIVE if endorsement_flow_integrates_tee
            else SupportLevel.REWRITE
        )
        return self._result(
            Mechanism.TRUSTED_EXECUTION_ENVIRONMENT, level,
            "enclave execution works in isolation but the peer endorsement "
            "path has no enclave integration; replacing it is a rewrite "
            f"(standalone attestation verified: {standalone.return_value == 'ok'})",
        )

    def _probe_private_sequencing_service(self) -> ProbeResult:
        member_orderer = make_private_orderer("probe-org1", self.clock)
        runs_for_member = member_orderer.is_member_operated({"probe-org1", "probe-org2"})
        return self._result(
            Mechanism.PRIVATE_SEQUENCING_SERVICE,
            SupportLevel.NATIVE if runs_for_member else SupportLevel.REWRITE,
            "channel members can operate the ordering service themselves, "
            "containing its full visibility within the member set",
        )


def endorsements_resign(
    network: FabricNetwork, tx: Transaction, endorsers: list[str]
) -> list[Endorsement]:
    """Re-sign a transaction whose metadata changed after endorsement.

    Fabric's real flow signs the proposal response payload; our simplified
    model re-signs the final canonical content so validation stays honest.
    """
    return [
        Endorsement(
            endorser=endorser,
            signature=network.scheme.sign(
                network.parties[endorser].key, tx.signing_bytes()
            ),
        )
        for endorser in endorsers
    ]
