"""Fabric channels.

Section 5: "The primary mechanisms for privacy and confidentiality
preservation is through channels, which provide a separate ledger for a
subset of participants.  Identities of channel members are not revealed to
the wider network and transactions are only shared between channel
members."

A channel bundles: a member set, a hash-linked chain, per-member world
state replicas (all kept identical by the commit path), an endorsement
policy, committed chaincode definitions, and any private data collections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import (
    ContractError,
    MembershipError,
    ValidationError,
)
from repro.ledger.block import Chain
from repro.ledger.state import WorldState
from repro.ledger.transaction import Transaction
from repro.ledger.validation import EndorsementPolicy
from repro.platforms.fabric.pdc import PrivateDataCollection


@dataclass
class ChaincodeDefinition:
    """A committed chaincode definition: id, version, endorsement policy."""

    contract_id: str
    version: int
    policy: EndorsementPolicy
    approvals: set[str] = field(default_factory=set)
    committed: bool = False


class Channel:
    """One Fabric channel: membership boundary + ledger + lifecycle state."""

    def __init__(self, name: str, members: list[str]) -> None:
        if len(members) < 1:
            raise MembershipError("a channel needs at least one member")
        self.name = name
        self.members: frozenset[str] = frozenset(members)
        self.chain = Chain(name)
        # Per-member state replicas; the commit path applies every write to
        # every replica, and tests assert the replicas never diverge.
        self.states: dict[str, WorldState] = {m: WorldState() for m in members}
        self.definitions: dict[str, ChaincodeDefinition] = {}
        self.collections: dict[str, PrivateDataCollection] = {}
        self.committed_tx_ids: list[str] = []
        self.invalid_tx_ids: list[str] = []

    def require_member(self, org: str) -> None:
        if org not in self.members:
            raise MembershipError(
                f"{org!r} is not a member of channel {self.name!r}"
            )

    # -- chaincode lifecycle (approve -> commit)

    def approve_definition(
        self, org: str, contract_id: str, version: int, policy: EndorsementPolicy
    ) -> None:
        """One org's approval of a chaincode definition."""
        self.require_member(org)
        definition = self.definitions.get(contract_id)
        if definition is None or definition.version != version:
            definition = ChaincodeDefinition(
                contract_id=contract_id, version=version, policy=policy
            )
            self.definitions[contract_id] = definition
        definition.approvals.add(org)

    def commit_definition(self, contract_id: str) -> ChaincodeDefinition:
        """Commit once a majority of members have approved."""
        definition = self.definitions.get(contract_id)
        if definition is None:
            raise ContractError(f"no approvals for chaincode {contract_id!r}")
        if len(definition.approvals) * 2 <= len(self.members):
            raise ContractError(
                f"chaincode {contract_id!r} lacks majority approval "
                f"({len(definition.approvals)}/{len(self.members)})"
            )
        definition.committed = True
        return definition

    def committed_definition(self, contract_id: str) -> ChaincodeDefinition:
        definition = self.definitions.get(contract_id)
        if definition is None or not definition.committed:
            raise ContractError(
                f"chaincode {contract_id!r} is not committed on channel {self.name!r}"
            )
        return definition

    # -- private data collections

    def create_collection(self, name: str, members: list[str]) -> PrivateDataCollection:
        for member in members:
            self.require_member(member)
        collection = PrivateDataCollection.create(name, members)
        self.collections[name] = collection
        return collection

    def collection(self, name: str) -> PrivateDataCollection:
        if name not in self.collections:
            raise MembershipError(f"no collection {name!r} on channel {self.name!r}")
        return self.collections[name]

    # -- state access

    def state_of(self, org: str) -> WorldState:
        self.require_member(org)
        return self.states[org]

    def reference_state(self, skip: frozenset[str] | set[str] = frozenset()) -> WorldState:
        """A live replica (they are identical); used for validation reads.

        *skip* excludes members whose replicas cannot be trusted right
        now — crashed peers whose state lags until they catch up.
        """
        for member, state in self.states.items():
            if member not in skip:
                return state
        raise ValidationError(
            f"channel {self.name!r} has no live replica to validate against"
        )

    def replicas_consistent(self) -> bool:
        """True iff every member's replica holds the same snapshot."""
        snapshots = [state.snapshot() for state in self.states.values()]
        return all(s == snapshots[0] for s in snapshots[1:])

    def record_commit(self, tx: Transaction, valid: bool) -> None:
        if valid:
            self.committed_tx_ids.append(tx.tx_id)
        else:
            self.invalid_tx_ids.append(tx.tx_id)
