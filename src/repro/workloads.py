"""Synthetic workload generation.

The paper (§3.4): "custom scalability tests may need to be designed to
fit the particular use case".  This module provides the parameterized
workloads the benchmark harness drives: key-value update streams with
uniform or Zipfian key popularity (hot keys produce MVCC conflicts),
multi-party trade scenarios, and letter-of-credit application mixes.
All draws come from a :class:`DeterministicRNG`, so a workload is fully
described by (generator, parameters, seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.common.rng import DeterministicRNG


@dataclass(frozen=True)
class KVOperation:
    """One key-value update by one submitter."""

    submitter: str
    key: str
    value: int


@dataclass(frozen=True)
class TradeScenario:
    """One bilateral trade among a wider network."""

    buyer: str
    seller: str
    instrument: str
    notional: int
    confidential: bool


class ZipfianKeys:
    """Zipf-distributed key popularity (rank-frequency ~ 1/rank^s).

    ``skew=0`` degenerates to uniform; higher skew concentrates traffic
    on few keys, which is what produces read-write contention.
    """

    def __init__(self, key_count: int, skew: float = 1.0) -> None:
        if key_count < 1:
            raise ValueError("need at least one key")
        if skew < 0:
            raise ValueError("skew must be non-negative")
        self.key_count = key_count
        self.skew = skew
        weights = [1.0 / ((rank + 1) ** skew) for rank in range(key_count)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf: list[float] = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)

    def draw(self, rng: DeterministicRNG) -> str:
        point = rng.uniform(0.0, 1.0)
        for rank, bound in enumerate(self._cdf):
            if point <= bound:
                return f"key-{rank:04d}"
        return f"key-{self.key_count - 1:04d}"


def kv_update_stream(
    submitters: list[str],
    operations: int,
    key_count: int = 64,
    skew: float = 0.0,
    seed: str = "kv-workload",
) -> Iterator[KVOperation]:
    """A stream of key-value updates with configurable contention."""
    if not submitters:
        raise ValueError("need at least one submitter")
    rng = DeterministicRNG(seed)
    keys = ZipfianKeys(key_count, skew)
    for __ in range(operations):
        yield KVOperation(
            submitter=rng.choice(submitters),
            key=keys.draw(rng),
            value=rng.randint_below(1_000_000),
        )


def trade_stream(
    parties: list[str],
    trades: int,
    confidential_fraction: float = 0.5,
    seed: str = "trade-workload",
) -> Iterator[TradeScenario]:
    """Bilateral trades among *parties*; a fraction are confidential."""
    if len(parties) < 2:
        raise ValueError("need at least two parties to trade")
    if not (0.0 <= confidential_fraction <= 1.0):
        raise ValueError("confidential_fraction must be in [0, 1]")
    rng = DeterministicRNG(seed)
    instruments = ["FX-SWAP", "IRS", "BOND-REPO", "CDS", "EQ-OPT"]
    for __ in range(trades):
        buyer = rng.choice(parties)
        seller = rng.choice([p for p in parties if p != buyer])
        yield TradeScenario(
            buyer=buyer,
            seller=seller,
            instrument=rng.choice(instruments),
            notional=(1 + rng.randint_below(100)) * 100_000,
            confidential=rng.uniform(0.0, 1.0) < confidential_fraction,
        )


@dataclass
class ContentionReport:
    """How contended a KV workload actually was (for bench labels)."""

    operations: int
    distinct_keys: int
    hottest_key_share: float


def measure_contention(operations: list[KVOperation]) -> ContentionReport:
    """Summarize a materialized workload's key-popularity profile."""
    counts: dict[str, int] = {}
    for op in operations:
        counts[op.key] = counts.get(op.key, 0) + 1
    hottest = max(counts.values()) if counts else 0
    return ContentionReport(
        operations=len(operations),
        distinct_keys=len(counts),
        hottest_key_share=hottest / len(operations) if operations else 0.0,
    )
