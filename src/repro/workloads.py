"""Synthetic workload generation.

The paper (§3.4): "custom scalability tests may need to be designed to
fit the particular use case".  This module provides the parameterized
workloads the benchmark harness drives: key-value update streams with
uniform or Zipfian key popularity (hot keys produce MVCC conflicts),
multi-party trade scenarios, and letter-of-credit application mixes.
All draws come from a :class:`DeterministicRNG`, so a workload is fully
described by (generator, parameters, seed).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator

from repro.common.rng import DeterministicRNG


@dataclass(frozen=True)
class KVOperation:
    """One key-value update by one submitter."""

    submitter: str
    key: str
    value: int


@dataclass(frozen=True)
class TradeScenario:
    """One bilateral trade among a wider network."""

    buyer: str
    seller: str
    instrument: str
    notional: int
    confidential: bool


class ZipfianKeys:
    """Zipf-distributed key popularity (rank-frequency ~ 1/rank^s).

    ``skew=0`` degenerates to uniform; higher skew concentrates traffic
    on few keys, which is what produces read-write contention.
    """

    def __init__(self, key_count: int, skew: float = 1.0) -> None:
        if key_count < 1:
            raise ValueError("need at least one key")
        if skew < 0:
            raise ValueError("skew must be non-negative")
        self.key_count = key_count
        self.skew = skew
        weights = [1.0 / ((rank + 1) ** skew) for rank in range(key_count)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf: list[float] = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)

    def draw(self, rng: DeterministicRNG) -> str:
        # Binary search over the CDF; this sits on the inner loop of every
        # Zipfian workload, where a linear scan costs O(key_count) per op.
        # bisect_left finds the first rank whose cumulative bound reaches
        # the drawn point — identical to the previous linear `point <=
        # bound` scan, including ties.
        point = rng.uniform(0.0, 1.0)
        rank = bisect.bisect_left(self._cdf, point)
        if rank >= self.key_count:  # guard against float round-off at 1.0
            rank = self.key_count - 1
        return f"key-{rank:04d}"


def kv_update_stream(
    submitters: list[str],
    operations: int,
    key_count: int = 64,
    skew: float = 0.0,
    seed: str = "kv-workload",
) -> Iterator[KVOperation]:
    """A stream of key-value updates with configurable contention."""
    if not submitters:
        raise ValueError("need at least one submitter")
    rng = DeterministicRNG(seed)
    keys = ZipfianKeys(key_count, skew)
    for __ in range(operations):
        yield KVOperation(
            submitter=rng.choice(submitters),
            key=keys.draw(rng),
            value=rng.randint_below(1_000_000),
        )


def trade_stream(
    parties: list[str],
    trades: int,
    confidential_fraction: float = 0.5,
    seed: str = "trade-workload",
) -> Iterator[TradeScenario]:
    """Bilateral trades among *parties*; a fraction are confidential."""
    if len(parties) < 2:
        raise ValueError("need at least two parties to trade")
    if not (0.0 <= confidential_fraction <= 1.0):
        raise ValueError("confidential_fraction must be in [0, 1]")
    rng = DeterministicRNG(seed)
    instruments = ["FX-SWAP", "IRS", "BOND-REPO", "CDS", "EQ-OPT"]
    for __ in range(trades):
        buyer = rng.choice(parties)
        seller = rng.choice([p for p in parties if p != buyer])
        yield TradeScenario(
            buyer=buyer,
            seller=seller,
            instrument=rng.choice(instruments),
            notional=(1 + rng.randint_below(100)) * 100_000,
            confidential=rng.uniform(0.0, 1.0) < confidential_fraction,
        )


#: The full letter-of-credit lifecycle, in order (paper §4 use case).
LOC_STAGES = ("apply", "issue", "ship", "pay")


@dataclass(frozen=True)
class LoCApplication:
    """One letter-of-credit application and how far it progresses.

    ``stages`` is a prefix of :data:`LOC_STAGES`: every application is
    applied for, but only a fraction are issued, shipped against, and
    paid — the mix a trade-finance platform actually sees.
    """

    loc_id: str
    applicant: str
    beneficiary: str
    amount: int
    stages: tuple[str, ...]

    @property
    def completed(self) -> bool:
        return self.stages == LOC_STAGES


def loc_stream(
    applicants: list[str],
    beneficiaries: list[str],
    applications: int,
    completion_fraction: float = 0.75,
    seed: str = "loc-workload",
) -> Iterator[LoCApplication]:
    """Letter-of-credit applications with a configurable completion mix.

    A ``completion_fraction`` of applications run the full
    apply/issue/ship/pay lifecycle; the rest stop uniformly at an earlier
    stage (rejected, in transit, or awaiting payment).
    """
    if not applicants or not beneficiaries:
        raise ValueError("need at least one applicant and one beneficiary")
    if not (0.0 <= completion_fraction <= 1.0):
        raise ValueError("completion_fraction must be in [0, 1]")
    rng = DeterministicRNG(seed)
    for index in range(applications):
        applicant = rng.choice(applicants)
        beneficiary = rng.choice(
            [b for b in beneficiaries if b != applicant] or beneficiaries
        )
        if rng.uniform(0.0, 1.0) < completion_fraction:
            depth = len(LOC_STAGES)
        else:
            depth = 1 + rng.randint_below(len(LOC_STAGES) - 1)
        yield LoCApplication(
            loc_id=f"loc-{index:05d}",
            applicant=applicant,
            beneficiary=beneficiary,
            amount=(1 + rng.randint_below(500)) * 10_000,
            stages=LOC_STAGES[:depth],
        )


@dataclass
class ContentionReport:
    """How contended a KV workload actually was (for bench labels)."""

    operations: int
    distinct_keys: int
    hottest_key_share: float


def measure_contention(operations: list[KVOperation]) -> ContentionReport:
    """Summarize a materialized workload's key-popularity profile."""
    counts: dict[str, int] = {}
    for op in operations:
        counts[op.key] = counts.get(op.key, 0) + 1
    hottest = max(counts.values()) if counts else 0
    return ContentionReport(
        operations=len(operations),
        distinct_keys=len(counts),
        hottest_key_share=hottest / len(operations) if operations else 0.0,
    )
