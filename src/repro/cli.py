"""Command-line interface.

Subcommands expose the paper's artifacts without writing any code:

- ``repro table1``   — regenerate Table 1 from capability probes and diff
  it against the published matrix.
- ``repro figure1``  — print the decision path for a requirements spec
  given as flags.
- ``repro design``   — run the full guide over a JSON requirements file
  and emit the markdown report.
- ``repro audit``    — run the leakage audit across the three platforms.
- ``repro lint``     — static privacy-leakage / determinism analysis over
  contract, platform, and use-case code (``--self`` lints this repo).
- ``repro trace``    — run a traced letter-of-credit lifecycle on one
  platform and render the simulated-time span tree.
- ``repro metrics``  — the metrics snapshot of such a run, or a diff of
  two saved snapshots.
- ``repro recover``  — run the canonical crash/recover/catch-up scenario
  on one platform and report convergence and catch-up privacy.
- ``repro bench``    — drive a synthetic workload (KV, trades, or
  letter-of-credit mix) through one platform's unified transaction
  pipeline and report throughput, latency, and crypto-cache hit rates.
- ``repro converge`` — the same scenario across all three platforms; the
  CI convergence gate (exit 1 on any divergence or leak).

Run ``python -m repro <subcommand> --help`` for details.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core.decision import decide_data_confidentiality
from repro.core.guide import design_solution
from repro.core.requirements import (
    DataClassRequirements,
    DeploymentContext,
    InteractionPrivacy,
    LogicRequirements,
    UseCaseRequirements,
)


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.core.probe import compare_with_paper

    comparison = compare_with_paper()
    print(comparison.render())
    return 0 if comparison.agreement_ratio == 1.0 else 1


def _cmd_figure1(args: argparse.Namespace) -> int:
    requirements = DataClassRequirements(
        name=args.name,
        deletion_required=args.deletion_required,
        private_from_counterparties=args.private_from_counterparties,
        shared_function_on_private_inputs=args.shared_function,
        encrypted_sharing_allowed=not args.no_encrypted_sharing,
        onchain_record_desired=not args.no_onchain_record,
        partial_visibility_within_transaction=args.partial_visibility,
        uninvolved_validation_required=args.uninvolved_validation,
    )
    deployment = DeploymentContext(
        ordering_service_trusted=not args.untrusted_orderer,
        third_party_node_admin=args.third_party_admin,
    )
    recommendation = decide_data_confidentiality(requirements, deployment)
    print(recommendation.describe())
    return 0


def requirements_from_json(data: dict) -> UseCaseRequirements:
    """Build a :class:`UseCaseRequirements` from a plain JSON dict.

    Schema::

        {
          "name": "...",
          "interaction_privacy": "none|group-private|subgroup-unlinkable|individual-anonymous",
          "data_classes": [{"name": "...", "<flag>": true, ...}, ...],
          "logic": {"keep_logic_private": true, ...},
          "deployment": {"ordering_service_trusted": false, ...}
        }
    """
    data_classes = tuple(
        DataClassRequirements(**dc) for dc in data.get("data_classes", [])
    )
    return UseCaseRequirements(
        name=data["name"],
        interaction_privacy=InteractionPrivacy(
            data.get("interaction_privacy", "none")
        ),
        data_classes=data_classes,
        logic=LogicRequirements(**data.get("logic", {})),
        deployment=DeploymentContext(**data.get("deployment", {})),
    )


def _cmd_design(args: argparse.Namespace) -> int:
    from repro.core.report import render_markdown

    if args.requirements == "-":
        data = json.load(sys.stdin)
    else:
        with open(args.requirements, encoding="utf-8") as handle:
            data = json.load(handle)
    requirements = requirements_from_json(data)
    design = design_solution(requirements)
    print(render_markdown(design))
    return 0


def _cmd_threats(args: argparse.Namespace) -> int:
    from repro.core.threats import evaluate_design

    if args.requirements == "-":
        data = json.load(sys.stdin)
    else:
        with open(args.requirements, encoding="utf-8") as handle:
            data = json.load(handle)
    design = design_solution(requirements_from_json(data))
    assessment = evaluate_design(design)
    print(assessment.render())
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.core.audit import audit_all

    reports = [report.summary_row() for report in audit_all()]
    width = max(len(key) for key in reports[0])
    header = f"{'':{width}s} " + " ".join(f"{r['platform']:>8s}" for r in reports)
    print(header)
    for key in reports[0]:
        if key == "platform":
            continue
        row = f"{key:{width}s} " + " ".join(
            f"{str(r[key]):>8s}" for r in reports
        )
        print(row)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_paths, self_paths

    paths = list(args.paths)
    if args.self_scan:
        paths.extend(self_paths())
    if not paths:
        print("repro lint: no paths given (pass files/dirs or --self)",
              file=sys.stderr)
        return 2
    report = analyze_paths(paths)
    if args.json:
        print(report.to_json(include_suppressed=args.include_suppressed))
    else:
        print(report.render_text(include_suppressed=args.include_suppressed))
    return report.exit_code(strict=args.strict)


def _traced_lifecycle(platform: str):
    """Run one letter-of-credit lifecycle on *platform*; return its
    telemetry bundle (spans + metrics + events, all simulated-time)."""
    if platform == "fabric":
        from repro.usecases.letter_of_credit import LetterOfCreditWorkflow

        workflow = LetterOfCreditWorkflow()
    elif platform == "corda":
        from repro.usecases.letter_of_credit_multi import CordaLetterOfCredit

        workflow = CordaLetterOfCredit()
    else:
        from repro.usecases.letter_of_credit_multi import QuorumLetterOfCredit

        workflow = QuorumLetterOfCredit()
    workflow.setup()
    workflow.run_full_lifecycle()
    workflow.network.network.run()  # drain in-flight messages -> transit spans
    return workflow.network.telemetry


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import render_trace_tree, trace_json

    telemetry = _traced_lifecycle(args.platform)
    if args.json:
        print(trace_json(telemetry.tracer))
    else:
        print(render_trace_tree(telemetry.tracer))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.telemetry import diff_snapshots, render_diff

    if args.diff:
        before_path, after_path = args.diff
        with open(before_path, encoding="utf-8") as handle:
            before = json.load(handle)
        with open(after_path, encoding="utf-8") as handle:
            after = json.load(handle)
        delta = diff_snapshots(before, after)
        if args.json:
            print(json.dumps(delta, indent=2, sort_keys=True))
        else:
            print(render_diff(delta))
        return 0
    telemetry = _traced_lifecycle(args.platform)
    if args.json:
        print(json.dumps(telemetry.metrics.snapshot(), indent=2, sort_keys=True))
    else:
        print(telemetry.metrics.render_text())
    return 0


def _scenario_payload(result) -> dict:
    """JSON shape shared by ``repro recover`` and ``repro converge``."""
    return {
        "platform": result.platform_name,
        "crashed_node": result.crashed_node,
        "checkpoint_sequence": result.checkpoint_sequence,
        "statuses": result.statuses,
        "converged": result.report.converged,
        "divergences": [
            {
                "scope": d.scope,
                "detail": d.detail,
                "nodes": list(d.nodes),
            }
            for d in result.report.divergences
        ],
        "leak_ok": result.leak_ok,
        "leak_findings": result.leak_findings,
        "metrics": result.summary,
        "ok": result.ok,
    }


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.recovery.scenario import CANONICAL_SEED, run_recovery_scenario

    result = run_recovery_scenario(
        args.platform, seed=args.seed or CANONICAL_SEED
    )
    if args.json:
        print(json.dumps(_scenario_payload(result), indent=2, sort_keys=True))
    else:
        print(result.render())
    return 0 if result.ok else 1


def _cmd_converge(args: argparse.Namespace) -> int:
    from repro.recovery.scenario import (
        CANONICAL_SEED,
        run_all_recovery_scenarios,
        run_recovery_scenario,
    )

    seed = args.seed or CANONICAL_SEED
    if args.platform:
        results = [run_recovery_scenario(args.platform, seed=seed)]
    else:
        results = run_all_recovery_scenarios(seed=seed)
    if args.json:
        print(json.dumps(
            [_scenario_payload(r) for r in results], indent=2, sort_keys=True
        ))
    else:
        for result in results:
            print(result.render())
            print()
        failed = [r.platform_name for r in results if not r.ok]
        print(
            "convergence gate: "
            + ("PASS" if not failed else f"FAIL ({', '.join(failed)})")
        )
    return 0 if all(r.ok for r in results) else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.driver import Driver, DriverConfig, build_scenario

    scenario = build_scenario(
        args.platform, args.workload, args.ops, skew=args.skew,
        seed=args.seed,
    )
    config = DriverConfig(
        batch_size=args.batch, force_cut=not args.no_force_cut
    )
    report = Driver(scenario.platform, config).run(scenario.requests)
    if args.json:
        payload = report.to_dict()
        payload["workload"] = args.workload
        payload["scenario"] = scenario.params
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"workload {scenario.label} {scenario.params}")
        print(report.render_text())
    return 0 if report.failed == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Design guide & platform comparison from the "
        "Middleware'19 privacy/confidentiality paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="regenerate Table 1 from probes")
    table1.set_defaults(func=_cmd_table1)

    figure1 = sub.add_parser(
        "figure1", help="walk the Figure 1 decision tree for one data class"
    )
    figure1.add_argument("--name", default="data")
    figure1.add_argument("--deletion-required", action="store_true")
    figure1.add_argument("--private-from-counterparties", action="store_true")
    figure1.add_argument("--shared-function", action="store_true")
    figure1.add_argument("--no-encrypted-sharing", action="store_true")
    figure1.add_argument("--no-onchain-record", action="store_true")
    figure1.add_argument("--partial-visibility", action="store_true")
    figure1.add_argument("--uninvolved-validation", action="store_true")
    figure1.add_argument("--untrusted-orderer", action="store_true")
    figure1.add_argument("--third-party-admin", action="store_true")
    figure1.set_defaults(func=_cmd_figure1)

    design = sub.add_parser(
        "design", help="full design report from a JSON requirements file"
    )
    design.add_argument(
        "requirements", help="path to a requirements JSON file, or - for stdin"
    )
    design.set_defaults(func=_cmd_design)

    threats = sub.add_parser(
        "threats", help="threat-coverage matrix for a requirements file"
    )
    threats.add_argument(
        "requirements", help="path to a requirements JSON file, or - for stdin"
    )
    threats.set_defaults(func=_cmd_threats)

    audit = sub.add_parser("audit", help="run the cross-platform leakage audit")
    audit.set_defaults(func=_cmd_audit)

    lint = sub.add_parser(
        "lint",
        help="static privacy-leakage and determinism linter",
        description="Lints Python contract functions, platform code, and "
        "use cases for confidential-to-public information flows, "
        "nondeterminism in validation logic, and trust-boundary caveats. "
        "Exit status: 1 if any error finding (with --strict: warnings "
        "too) survives suppression, else 0.",
    )
    lint.add_argument("paths", nargs="*", help="files or directories to lint")
    lint.add_argument(
        "--self", dest="self_scan", action="store_true",
        help="lint this repo's own src/repro and examples trees",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="also fail on warning-severity findings",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )
    lint.add_argument(
        "--include-suppressed", action="store_true",
        help="show findings silenced by '# repro: allow(...)' comments",
    )
    lint.set_defaults(func=_cmd_lint)

    trace = sub.add_parser(
        "trace",
        help="span tree of a traced letter-of-credit run",
        description="Runs one letter-of-credit lifecycle on the chosen "
        "platform simulation and renders the resulting span tree, with "
        "every duration in simulated time.  Deterministic: the same "
        "platform always yields byte-identical output.",
    )
    trace.add_argument(
        "--platform", choices=("fabric", "corda", "quorum"), default="fabric"
    )
    trace.add_argument(
        "--json", action="store_true", help="emit spans as JSON instead"
    )
    trace.set_defaults(func=_cmd_trace)

    metrics = sub.add_parser(
        "metrics",
        help="metrics snapshot of a traced run, or a diff of two snapshots",
        description="Without --diff: runs one letter-of-credit lifecycle "
        "and prints the metrics snapshot (counters, gauges, histograms). "
        "With --diff BEFORE.json AFTER.json: prints per-metric deltas "
        "between two saved snapshots.",
    )
    metrics.add_argument(
        "--platform", choices=("fabric", "corda", "quorum"), default="fabric"
    )
    metrics.add_argument(
        "--diff", nargs=2, metavar=("BEFORE", "AFTER"),
        help="diff two snapshot JSON files instead of running a workload",
    )
    metrics.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    metrics.set_defaults(func=_cmd_metrics)

    recover = sub.add_parser(
        "recover",
        help="crash/recover/catch-up scenario on one platform",
        description="Runs the canonical recovery scenario: a "
        "letter-of-credit party crashes mid-lifecycle under a fault plan, "
        "business continues without it (including interactions it is not "
        "entitled to see), then the node recovers from its checkpoint and "
        "catches up through the visibility-filtered protocol.  Reports "
        "liveness, convergence, and catch-up privacy.  Exit 1 on any "
        "divergence or entitlement widening.",
    )
    recover.add_argument(
        "--platform", choices=("fabric", "corda", "quorum"), default="fabric"
    )
    recover.add_argument(
        "--seed", default=None, help="override the canonical scenario seed"
    )
    recover.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    recover.set_defaults(func=_cmd_recover)

    converge = sub.add_parser(
        "converge",
        help="recovery + convergence gate across all three platforms",
        description="Runs the canonical recovery scenario on every "
        "platform (or one, with --platform) and audits convergence.  "
        "This is the CI convergence gate: exit 0 iff every platform "
        "converges with zero divergence and no entitlement widening.",
    )
    converge.add_argument(
        "--platform", choices=("fabric", "corda", "quorum"), default=None
    )
    converge.add_argument(
        "--seed", default=None, help="override the canonical scenario seed"
    )
    converge.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    converge.set_defaults(func=_cmd_converge)

    bench = sub.add_parser(
        "bench",
        help="drive a synthetic workload through one platform's pipeline",
        description="Compiles a repro.workloads stream into TxRequests "
        "for the chosen platform and pumps them through the unified "
        "submission pipeline in batches, reporting simulated-time "
        "throughput, latency, and signature/certificate cache hit rates. "
        "Deterministic in --seed.  Exit 1 if any transaction fails.",
    )
    bench.add_argument(
        "--platform", choices=("fabric", "corda", "quorum"), default="fabric"
    )
    bench.add_argument(
        "--workload", choices=("kv", "trades", "loc"), default="kv",
        help="kv: key-value updates; trades: bilateral confidential "
        "trades; loc: letter-of-credit stage mix (ops = applications)",
    )
    bench.add_argument(
        "--ops", type=int, default=100,
        help="operations (kv), trades, or LoC applications to generate",
    )
    bench.add_argument(
        "--skew", type=float, default=0.0,
        help="Zipfian key-popularity skew for the kv workload (0 = uniform)",
    )
    bench.add_argument(
        "--batch", type=int, default=25, help="requests kept in flight together"
    )
    bench.add_argument(
        "--no-force-cut", action="store_true",
        help="leave batch release to the orderer's size/timeout policy",
    )
    bench.add_argument("--seed", default="bench")
    bench.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. ``| head``) closed the pipe early;
        # that is not an error.  Detach stdout so interpreter shutdown
        # doesn't raise again while flushing.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
