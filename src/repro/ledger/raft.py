"""A Raft-style replicated ordering cluster.

Section 3.4 asks architects to consider "if parties can feasibly run
their own [ordering] service".  A realistic member-run deployment is not
a single process but a small replicated cluster; this module provides a
faithful-enough Raft core — terms, leader election with randomized
timeouts, log replication with majority commit, and crash/recovery — so
the 'private sequencing service' option can be exercised under faults.

Privacy accounting carries over: every replica observes everything the
leader does (replication copies the log), so running a cluster multiplies
the *operators* who see the data — a trade-off the tests make explicit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import OrderingError
from repro.common.rng import DeterministicRNG
from repro.ledger.transaction import Transaction
from repro.network.messages import Exposure
from repro.network.simnet import Observer
from repro.telemetry import Telemetry


class Role(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass
class LogEntry:
    """One replicated slot: the term it was appended in and its payload."""

    term: int
    tx: Transaction


@dataclass
class RaftNode:
    """A single replica's Raft state."""

    name: str
    operator: str
    current_term: int = 0
    voted_for: str | None = None
    role: Role = Role.FOLLOWER
    log: list[LogEntry] = field(default_factory=list)
    commit_index: int = 0  # number of committed entries
    crashed: bool = False
    observer: Observer = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.observer is None:
            self.observer = Observer(self.name)

    def last_log_term(self) -> int:
        return self.log[-1].term if self.log else 0


class RaftCluster:
    """A synchronous-round Raft cluster ordering transactions.

    The simulation advances in explicit steps (:meth:`elect`,
    :meth:`replicate`) rather than timers, which keeps runs deterministic
    while preserving the protocol's safety logic: majority votes with
    up-to-date-log checks, majority commit, term-based leader fencing.
    """

    def __init__(
        self,
        operators: list[str],
        rng: DeterministicRNG | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if len(operators) < 3 or len(operators) % 2 == 0:
            raise OrderingError("a raft cluster needs an odd size >= 3")
        self._rng = rng or DeterministicRNG("raft:" + "|".join(operators))
        self.telemetry = telemetry or Telemetry()
        self.nodes: dict[str, RaftNode] = {
            f"raft-{operator}": RaftNode(name=f"raft-{operator}", operator=operator)
            for operator in operators
        }
        self.leader: str | None = None

    # -- membership helpers

    def _alive(self) -> list[RaftNode]:
        return [n for n in self.nodes.values() if not n.crashed]

    def majority(self) -> int:
        return len(self.nodes) // 2 + 1

    def node(self, name: str) -> RaftNode:
        if name not in self.nodes:
            raise OrderingError(f"unknown raft node {name!r}")
        return self.nodes[name]

    # -- leader election

    def elect(self, candidate_name: str | None = None) -> str:
        """Run one election round; returns the new leader's name.

        A deterministic stand-in for randomized timeouts: the caller (or
        the RNG) picks which alive node times out first and campaigns.
        """
        alive = self._alive()
        if len(alive) < self.majority():
            raise OrderingError("no quorum alive: cluster unavailable")
        if candidate_name is None:
            candidate = alive[self._rng.randint_below(len(alive))]
        else:
            candidate = self.node(candidate_name)
            if candidate.crashed:
                raise OrderingError(f"{candidate_name!r} is crashed")
        candidate.current_term += 1
        candidate.role = Role.CANDIDATE
        candidate.voted_for = candidate.name
        votes = 1
        for voter in alive:
            if voter.name == candidate.name:
                continue
            up_to_date = (
                candidate.last_log_term() > voter.last_log_term()
                or (
                    candidate.last_log_term() == voter.last_log_term()
                    and len(candidate.log) >= len(voter.log)
                )
            )
            fresh_term = candidate.current_term > voter.current_term or (
                candidate.current_term == voter.current_term
                and voter.voted_for in (None, candidate.name)
            )
            if up_to_date and fresh_term:
                voter.current_term = candidate.current_term
                voter.voted_for = candidate.name
                voter.role = Role.FOLLOWER
                votes += 1
        if votes < self.majority():
            candidate.role = Role.FOLLOWER
            self.telemetry.metrics.counter("raft.election_failures").inc()
            raise OrderingError(
                f"{candidate.name!r} failed to win a majority ({votes})"
            )
        candidate.role = Role.LEADER
        self.leader = candidate.name
        self.telemetry.metrics.counter("raft.elections_won").inc()
        self.telemetry.metrics.gauge("raft.term").set(candidate.current_term)
        self.telemetry.events.emit(
            "raft.leader_elected",
            leader=candidate.name,
            term=candidate.current_term,
            votes=votes,
        )
        return candidate.name

    def require_leader(self) -> RaftNode:
        if self.leader is None:
            self.elect()
        leader = self.node(self.leader)  # type: ignore[arg-type]
        if leader.crashed:
            raise OrderingError("leader crashed; call elect()")
        return leader

    # -- log replication

    def submit(self, tx: Transaction) -> int:
        """Append *tx* through the leader; returns its committed index.

        Replicates to all alive followers and commits on majority match.
        Every replica that stores the entry observes its exposure — the
        privacy cost of replicated ordering.
        """
        leader = self.require_leader()
        entry = LogEntry(term=leader.current_term, tx=tx)
        leader.log.append(entry)
        stored = 1
        exposure = Exposure.of(
            identities={tx.submitter, *tx.metadata.get("participants", [])},
            data_keys={w.key for w in tx.writes},
        )
        leader.observer.observe_exposure(exposure)
        for follower in self._alive():
            if follower.name == leader.name:
                continue
            # Followers with shorter logs catch up to the leader's log.
            follower.log = [
                LogEntry(term=e.term, tx=e.tx) for e in leader.log
            ]
            follower.current_term = leader.current_term
            follower.observer.observe_exposure(exposure)
            stored += 1
        if stored < self.majority():
            leader.log.pop()
            self.telemetry.metrics.counter("raft.replication_failures").inc()
            raise OrderingError("could not replicate to a majority")
        self.telemetry.metrics.counter("raft.entries_committed").inc()
        self.telemetry.metrics.counter("raft.replica_writes").inc(stored)
        leader.commit_index = len(leader.log)
        for follower in self._alive():
            follower.commit_index = min(len(follower.log), leader.commit_index)
        return leader.commit_index - 1

    def committed_transactions(self) -> list[Transaction]:
        """The totally-ordered committed log (from any quorum member)."""
        leader = self.require_leader()
        return [entry.tx for entry in leader.log[: leader.commit_index]]

    # -- fault injection

    def crash(self, operator: str) -> None:
        node = self.node(f"raft-{operator}")
        node.crashed = True
        node.role = Role.FOLLOWER
        self.telemetry.events.emit("raft.crash", node=node.name)
        if self.leader == node.name:
            self.leader = None

    def recover(self, operator: str) -> None:
        """A crashed node rejoins with its persisted log intact.

        Volatile election state is reset: a recovered node is a follower
        with no outstanding vote.  Keeping the pre-crash ``voted_for``
        would let a stale self-vote from an abandoned candidacy block the
        node from voting in that same term after rejoining.

        The uncommitted log suffix is truncated: entries beyond the
        commit index were never acknowledged to any client and may
        conflict with what a newer leader committed while this node was
        down — a recovered former leader must not resurrect them.
        """
        node = self.node(f"raft-{operator}")
        node.crashed = False
        node.role = Role.FOLLOWER
        node.voted_for = None
        if len(node.log) > node.commit_index:
            truncated = len(node.log) - node.commit_index
            node.log = node.log[: node.commit_index]
            self.telemetry.metrics.counter("raft.log_truncations").inc(truncated)
            self.telemetry.events.emit(
                "raft.log_truncated", node=node.name, entries=truncated
            )

    def logs_consistent(self) -> bool:
        """Safety check: all alive nodes agree on the committed prefix."""
        alive = self._alive()
        if not alive:
            return True
        reference = min(n.commit_index for n in alive)
        prefixes = [
            [(e.term, e.tx.tx_id) for e in n.log[:reference]] for n in alive
        ]
        return all(p == prefixes[0] for p in prefixes[1:])

    def operators_with_visibility(self) -> set[str]:
        """Every operator whose replica saw transaction contents."""
        return {
            node.operator
            for node in self.nodes.values()
            if node.observer.messages_observed > 0
        }
