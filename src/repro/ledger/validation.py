"""Transaction validation pipeline.

Platform-neutral validation: endorsement-policy evaluation, signature
checks against a certificate resolver, and MVCC read-set staleness checks
against a :class:`WorldState`.  Platforms compose these into their own
commit paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import EndorsementError, ValidationError
from repro.crypto.signatures import PublicKey, SignatureScheme
from repro.ledger.state import WorldState
from repro.ledger.transaction import Transaction


@dataclass(frozen=True)
class EndorsementPolicy:
    """Which signers must endorse a transaction.

    ``required`` is the eligible set; ``threshold`` how many of them must
    sign.  ``threshold=len(required)`` is AND, ``threshold=1`` is OR.
    """

    required: frozenset[str]
    threshold: int

    def __post_init__(self) -> None:
        if self.threshold < 1 or self.threshold > len(self.required):
            raise ValidationError("threshold outside [1, |required|]")

    @classmethod
    def all_of(cls, names: list[str]) -> "EndorsementPolicy":
        return cls(required=frozenset(names), threshold=len(names))

    @classmethod
    def any_of(cls, names: list[str]) -> "EndorsementPolicy":
        return cls(required=frozenset(names), threshold=1)

    @classmethod
    def k_of(cls, k: int, names: list[str]) -> "EndorsementPolicy":
        return cls(required=frozenset(names), threshold=k)

    def satisfied_by(self, endorsers: set[str]) -> bool:
        return len(endorsers & self.required) >= self.threshold


KeyResolver = Callable[[str], PublicKey]


def verify_endorsements(
    tx: Transaction,
    policy: EndorsementPolicy,
    scheme: SignatureScheme,
    resolve_key: KeyResolver,
) -> None:
    """Raise unless the transaction carries valid signatures satisfying *policy*."""
    message = tx.signing_bytes()
    valid_endorsers: set[str] = set()
    for endorsement in tx.endorsements:
        public = resolve_key(endorsement.endorser)
        if scheme.verify(public, message, endorsement.signature):
            valid_endorsers.add(endorsement.endorser)
        else:
            raise EndorsementError(
                f"invalid signature from endorser {endorsement.endorser!r}"
            )
    if not policy.satisfied_by(valid_endorsers):
        raise EndorsementError(
            f"policy requires {policy.threshold} of {sorted(policy.required)}, "
            f"got valid endorsements from {sorted(valid_endorsers)}"
        )


def check_read_set(tx: Transaction, state: WorldState) -> None:
    """MVCC check: every read version must still be current."""
    for read in tx.reads:
        current = state.version(read.key)
        if current != read.version:
            raise ValidationError(
                f"stale read of {read.key!r}: read version {read.version}, "
                f"current {current}"
            )


def apply_writes(tx: Transaction, state: WorldState) -> None:
    """Apply the write set to the world state (after validation)."""
    for write in tx.writes:
        if write.is_delete:
            if state.exists(write.key):
                state.delete(write.key)
        else:
            state.put(write.key, write.value)


def validate_and_apply(
    tx: Transaction,
    state: WorldState,
    policy: EndorsementPolicy | None = None,
    scheme: SignatureScheme | None = None,
    resolve_key: KeyResolver | None = None,
) -> None:
    """Full pipeline: endorsements (if a policy is given), MVCC, then apply."""
    if policy is not None:
        if scheme is None or resolve_key is None:
            raise ValidationError("endorsement check needs a scheme and key resolver")
        verify_endorsements(tx, policy, scheme, resolve_key)
    check_read_set(tx, state)
    apply_writes(tx, state)
