"""Ordering services.

Section 3.4: "The service that provides ordering of transactions ... is an
integral part of any DLT platform.  For some of the platforms reviewed
(Fabric and Corda), this service has visibility of all DLT events,
including parties to transactions and transaction details.  When assessing
a DLT for suitability, architects must consider whether the ordering
service meets privacy and confidentiality requirements and if parties can
feasibly run their own service to mitigate leaks."

This module makes that analysis executable.  Every orderer carries an
:class:`Observer` recording exactly what it saw; orderers differ in

- **visibility**: FULL (sees parties and payloads, like a Fabric ordering
  node or a Corda validating notary) vs HASH_ONLY (sees only digests, like
  a Corda non-validating notary);
- **operator**: a third party, or one of the transacting organizations
  ("private sequencing service", Table 1's Misc row).

A simple service-time model (capacity in tx/s, batch cutting by size or
timeout) supports the S1-S3 scalability benchmarks: ordering is the shared
bottleneck whose saturation the benches demonstrate.

The service also models crash/recovery (mirroring ``RaftCluster.crash`` /
``recover``): a crashed orderer refuses submissions and batch cuts, and its
pending queues either survive the crash (``durable=True``, a write-ahead
log) or are lost with it.  Scheduled outages come from an attached
:class:`repro.faults.FaultPlan`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.clock import SimClock
from repro.common.errors import OrderingError
from repro.faults.plan import FaultPlan
from repro.ledger.transaction import Transaction
from repro.network.messages import Exposure
from repro.network.simnet import Observer
from repro.telemetry import Telemetry


class OrdererVisibility(enum.Enum):
    """How much of each transaction the ordering service can read."""

    FULL = "full"
    HASH_ONLY = "hash_only"


@dataclass
class OrdererProfile:
    """Performance envelope of one ordering service."""

    capacity_tps: float = 1000.0
    max_batch_size: int = 100
    batch_timeout: float = 0.5


@dataclass
class OrderedBatch:
    """A cut batch with the simulated time at which it was released."""

    channel: str
    transactions: list[Transaction]
    released_at: float
    sequence: int


class OrderingService:
    """A single logical ordering service (possibly multi-channel).

    Fabric deployments share one ordering service across channels, which is
    why the orderer's observer accumulates knowledge across confidentiality
    boundaries — the exact §3.4 concern.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        visibility: OrdererVisibility = OrdererVisibility.FULL,
        operator: str = "third-party",
        profile: OrdererProfile | None = None,
        durable: bool = True,
        fault_plan: FaultPlan | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.name = name
        self.clock = clock
        self.visibility = visibility
        self.operator = operator
        self.profile = profile or OrdererProfile()
        self.durable = durable
        self.fault_plan = fault_plan
        self.telemetry = telemetry or Telemetry(clock=clock)
        self.crashed = False
        self.observer = Observer(name)
        self._pending: dict[str, list[tuple[Transaction, float]]] = {}
        self._sequence = 0
        self._busy_until = 0.0
        self.total_ordered = 0

    # -- crash / recovery

    def available(self, now: float | None = None) -> bool:
        """Whether the service accepts work at *now* (default: clock time)."""
        if self.crashed:
            return False
        if self.fault_plan is None:
            return True
        when = self.clock.now if now is None else now
        return not self.fault_plan.orderer_down(self.name, when)

    def _require_available(self) -> None:
        if not self.available():
            raise OrderingError(f"ordering service {self.name!r} is down")

    def crash(self) -> None:
        """Take the service down.  Non-durable services lose their queues."""
        self.crashed = True
        if not self.durable:
            self._pending.clear()
        self.telemetry.events.emit(
            "ordering.crash", service=self.name, durable=self.durable
        )
        self.telemetry.metrics.counter("ordering.crashes").inc()

    def recover(self) -> None:
        """Bring the service back.  Durable queues resume where they were."""
        self.crashed = False
        self.telemetry.events.emit("ordering.recover", service=self.name)

    def _record_visibility(self, tx: Transaction) -> None:
        if self.visibility is OrdererVisibility.FULL:
            identities = {e.endorser for e in tx.endorsements}
            # A pseudonymous submitter (e.g. an Idemix client) is not an
            # identity observation — the orderer sees only the pseudonym.
            if not tx.metadata.get("anonymous"):
                identities.add(tx.submitter)
            if "participants" in tx.metadata:
                identities |= set(tx.metadata["participants"])
            data_keys = {w.key for w in tx.writes} | {r.key for r in tx.reads}
            exposure = Exposure.of(identities=identities, data_keys=data_keys)
        else:
            # Hash-only orderers learn that *a* transaction exists, nothing else.
            exposure = Exposure()
        self.observer.observe_exposure(exposure)

    def submit(self, tx: Transaction) -> None:
        """Accept a transaction for ordering on its channel."""
        self._require_available()
        self._record_visibility(tx)
        arrival = self.clock.now
        self._pending.setdefault(tx.channel, []).append((tx, arrival))
        self.telemetry.metrics.counter("ordering.submitted").inc()
        self.telemetry.metrics.gauge("ordering.pending", channel=tx.channel).inc()

    def pending_count(self, channel: str) -> int:
        return len(self._pending.get(channel, []))

    def oldest_wait(self, channel: str, now: float | None = None) -> float:
        """How long the oldest pending tx on *channel* has been waiting."""
        queue = self._pending.get(channel, [])
        if not queue:
            return 0.0
        when = self.clock.now if now is None else now
        return max(0.0, when - queue[0][1])

    def ready_to_cut(self, channel: str, now: float | None = None) -> bool:
        """Whether a batch would be cut at *now*: full, or timeout expired."""
        queue = self._pending.get(channel, [])
        if not queue:
            return False
        if len(queue) >= self.profile.max_batch_size:
            return True
        return self.oldest_wait(channel, now) >= self.profile.batch_timeout

    def cut_batch(self, channel: str, force: bool = False) -> OrderedBatch:
        """Order the pending transactions of *channel* into one batch.

        Models service time: the orderer processes transactions serially at
        ``capacity_tps``; the batch release time reflects queueing behind
        earlier work on *any* channel (shared-bottleneck semantics).

        Batch cutting honors ``profile.batch_timeout``: a partial batch
        (fewer than ``max_batch_size`` transactions) is not released until
        its oldest transaction has waited ``batch_timeout`` — the release
        time is pushed out to that expiry.  Pass ``force=True`` to cut
        immediately regardless (an explicit operator flush, used by the
        platform simulations' synchronous submit paths).
        """
        self._require_available()
        queue = self._pending.get(channel, [])
        if not queue:
            raise OrderingError(f"no pending transactions on channel {channel!r}")
        batch_items = queue[: self.profile.max_batch_size]
        self._pending[channel] = queue[self.profile.max_batch_size :]
        transactions = [tx for tx, __ in batch_items]
        latest_arrival = max(arrival for __, arrival in batch_items)
        service_time = len(transactions) / self.profile.capacity_tps
        start = max(self._busy_until, latest_arrival)
        if not force and len(batch_items) < self.profile.max_batch_size:
            # Partial batch: the timeout timer starts at the *oldest*
            # arrival, so the batch is released once that tx has waited
            # batch_timeout (or immediately if it already has).
            oldest_arrival = min(arrival for __, arrival in batch_items)
            start = max(start, oldest_arrival + self.profile.batch_timeout)
        released_at = start + service_time
        self._busy_until = released_at
        self._sequence += 1
        self.total_ordered += len(transactions)
        metrics = self.telemetry.metrics
        metrics.counter("ordering.batches_cut").inc()
        metrics.counter("ordering.txs_ordered").inc(len(transactions))
        metrics.gauge("ordering.pending", channel=channel).dec(len(transactions))
        metrics.histogram(
            "ordering.batch_size", bounds=(1, 2, 5, 10, 25, 50, 100, 250)
        ).observe(len(transactions))
        metrics.histogram("ordering.batch_latency").observe(
            released_at - latest_arrival
        )
        # The batch's lifetime as a span: cut decision now, release at the
        # modelled service-time end.  Parentage follows the caller's
        # active span (e.g. ``fabric.order``), so orderer batches appear
        # inside the transaction trace that triggered them.
        self.telemetry.tracer.record_span(
            "ordering.cut_batch",
            start=self.clock.now,
            end=released_at,
            channel=channel,
            batch_size=len(transactions),
            sequence=self._sequence,
            forced=force,
        )
        return OrderedBatch(
            channel=channel,
            transactions=transactions,
            released_at=released_at,
            sequence=self._sequence,
        )

    def drain_channel(self, channel: str, force: bool = False) -> list[OrderedBatch]:
        """Cut batches until the channel queue is empty."""
        batches = []
        while self.pending_count(channel):
            batches.append(self.cut_batch(channel, force=force))
        return batches

    def is_member_operated(self, members: set[str]) -> bool:
        """True if a transacting organization runs this service itself —
        the paper's mitigation for ordering-service visibility."""
        return self.operator in members

    def knowledge(self) -> dict:
        """What this orderer has learned (for the L1 leakage audit)."""
        return self.observer.knowledge()


def make_private_orderer(
    operator: str,
    clock: SimClock,
    visibility: OrdererVisibility = OrdererVisibility.FULL,
    profile: OrdererProfile | None = None,
) -> OrderingService:
    """An ordering service run by one of the transacting organizations.

    Visibility is unchanged — the *operator* changes, which converts the
    leak from 'third party sees everything' to 'a member sees everything',
    the trade-off §3.4 describes.
    """
    return OrderingService(
        name=f"orderer@{operator}",
        clock=clock,
        visibility=visibility,
        operator=operator,
        profile=profile,
    )
