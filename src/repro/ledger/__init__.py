"""Ledger substrate: transactions, blocks, chains, state, validation, ordering."""

from repro.ledger.anchors import (
    Anchor,
    AnchorLedger,
    ChannelAnchorer,
    ExistenceProof,
)
from repro.ledger.block import (
    GENESIS_DIGEST,
    Block,
    BlockHeader,
    Chain,
    Checkpoint,
    build_block,
)
from repro.ledger.ordering import (
    OrderedBatch,
    OrdererProfile,
    OrdererVisibility,
    OrderingService,
    make_private_orderer,
)
from repro.ledger.raft import LogEntry, RaftCluster, RaftNode, Role
from repro.ledger.state import WorldState
from repro.ledger.transaction import (
    Endorsement,
    ReadEntry,
    Transaction,
    WriteEntry,
)
from repro.ledger.validation import (
    EndorsementPolicy,
    apply_writes,
    check_read_set,
    validate_and_apply,
    verify_endorsements,
)

__all__ = [name for name in dir() if not name.startswith("_")]
