"""Public anchor ledger: existence proofs without content.

Section 2.2 (separation of ledgers): "If a public record of the existence
of a transaction is required, a hash of transaction data may optionally
be published on a shared ledger" — and later: "by storing a hash of data
on a shared ledger, it is recorded that a transaction occurred without
revealing its content."

:class:`AnchorLedger` is that shared ledger: network-wide, append-only,
holding only digests.  A channel (or any private ledger) periodically
publishes the Merkle root over its recent transaction hashes; a member
can later prove to *anyone* — a regulator, a court — that a specific
transaction existed by the anchoring time, by revealing the transaction's
hash plus its Merkle path, without revealing any other transaction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ProofError, ValidationError
from repro.crypto.merkle import InclusionProof, MerkleTree
from repro.ledger.transaction import Transaction


@dataclass(frozen=True)
class Anchor:
    """One published commitment: a source label, root, and coverage count."""

    source: str       # e.g. channel name; reveals *which* ledger anchored
    sequence: int
    root: bytes
    tx_count: int
    published_at: float


@dataclass(frozen=True)
class ExistenceProof:
    """Evidence that one transaction hash is covered by a public anchor."""

    anchor_sequence: int
    tx_hash: str
    inclusion: InclusionProof


class AnchorLedger:
    """The shared, content-free ledger every network member can read."""

    def __init__(self, name: str = "public-anchors") -> None:
        self.name = name
        self._anchors: list[Anchor] = []

    def publish(
        self, source: str, tx_hashes: list[str], now: float
    ) -> Anchor:
        """Anchor a batch of transaction hashes under one Merkle root."""
        if not tx_hashes:
            raise ValidationError("nothing to anchor")
        tree = MerkleTree(tx_hashes)
        anchor = Anchor(
            source=source,
            sequence=len(self._anchors),
            root=tree.root,
            tx_count=len(tx_hashes),
            published_at=now,
        )
        self._anchors.append(anchor)
        return anchor

    def anchor(self, sequence: int) -> Anchor:
        if not (0 <= sequence < len(self._anchors)):
            raise ValidationError(f"no anchor with sequence {sequence}")
        return self._anchors[sequence]

    def anchors_of(self, source: str) -> list[Anchor]:
        return [a for a in self._anchors if a.source == source]

    def verify_existence(self, proof: ExistenceProof) -> bool:
        """Anyone holding the public ledger can check an existence proof."""
        anchor = self.anchor(proof.anchor_sequence)
        return proof.inclusion.verify(proof.tx_hash, anchor.root)

    def __len__(self) -> int:
        return len(self._anchors)


class ChannelAnchorer:
    """Publishes a private ledger's transaction hashes and builds proofs.

    Lives with the channel members (it needs the transaction contents to
    compute hashes); the public side only ever sees roots.
    """

    def __init__(self, source: str, ledger: AnchorLedger) -> None:
        self.source = source
        self.ledger = ledger
        self._batches: list[list[str]] = []
        self._anchored_count = 0

    def anchor_transactions(
        self, transactions: list[Transaction], now: float
    ) -> Anchor | None:
        """Publish hashes for all not-yet-anchored transactions."""
        pending = transactions[self._anchored_count:]
        if not pending:
            return None
        hashes = [tx.content_hash() for tx in pending]
        anchor = self.ledger.publish(self.source, hashes, now)
        self._batches.append(hashes)
        self._anchored_count = len(transactions)
        return anchor

    def prove_existence(self, tx: Transaction) -> ExistenceProof:
        """Build the proof a member shows a third party."""
        tx_hash = tx.content_hash()
        anchors = self.ledger.anchors_of(self.source)
        for batch_index, hashes in enumerate(self._batches):
            if tx_hash in hashes:
                tree = MerkleTree(hashes)
                index = hashes.index(tx_hash)
                return ExistenceProof(
                    anchor_sequence=anchors[batch_index].sequence,
                    tx_hash=tx_hash,
                    inclusion=tree.inclusion_proof(index),
                )
        raise ProofError("transaction was never anchored from this source")
