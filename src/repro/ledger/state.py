"""Versioned key-value world state.

Each committed write bumps a key's version; transactions carry the versions
they read, and the validator rejects a transaction whose read set is stale
(multi-version concurrency control, as in Fabric).  The state keeps history
so auditors can reconstruct any prior value — unless a key was migrated
off-chain and deleted, which is the point of the paper's off-chain
mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.common.errors import StateError


@dataclass
class VersionedValue:
    """Current value, its version, and full prior history."""

    value: Any
    version: int
    history: list[Any] = field(default_factory=list)


class WorldState:
    """MVCC key-value store backing one ledger."""

    def __init__(self) -> None:
        self._entries: dict[str, VersionedValue] = {}

    def get(self, key: str) -> Any:
        """Current value of *key*; raises :class:`StateError` if absent."""
        entry = self._entries.get(key)
        if entry is None:
            raise StateError(f"key {key!r} not in world state")
        return entry.value

    def get_or(self, key: str, default: Any = None) -> Any:
        entry = self._entries.get(key)
        return default if entry is None else entry.value

    def version(self, key: str) -> int:
        """Committed version of *key* (0 if never written)."""
        entry = self._entries.get(key)
        return 0 if entry is None else entry.version

    def exists(self, key: str) -> bool:
        return key in self._entries

    def put(self, key: str, value: Any) -> int:
        """Commit a write; returns the new version."""
        entry = self._entries.get(key)
        if entry is None:
            self._entries[key] = VersionedValue(value=value, version=1)
            return 1
        entry.history.append(entry.value)
        entry.value = value
        entry.version += 1
        return entry.version

    def delete(self, key: str) -> None:
        """Remove *key* and its entire history (true erasure)."""
        if key not in self._entries:
            raise StateError(f"key {key!r} not in world state")
        del self._entries[key]

    def history(self, key: str) -> list[Any]:
        """All prior values of *key*, oldest first (excludes current)."""
        entry = self._entries.get(key)
        if entry is None:
            raise StateError(f"key {key!r} not in world state")
        return list(entry.history)

    def keys(self) -> list[str]:
        return sorted(self._entries)

    def items(self) -> Iterator[tuple[str, Any]]:
        for key in self.keys():
            yield key, self._entries[key].value

    def snapshot(self) -> dict[str, Any]:
        """Plain dict copy of the current state (for assertions/audits)."""
        return {key: entry.value for key, entry in self._entries.items()}

    def dump(self) -> dict[str, dict[str, Any]]:
        """Checkpoint-serializable ``{key: {"value", "version"}}`` image.

        Versions are included so a state restored from a checkpoint keeps
        MVCC-compatible with replicas that never crashed.  History is
        deliberately excluded: a crash loses it, like process memory —
        only the committed tip is durable.
        """
        return {
            key: {"value": entry.value, "version": entry.version}
            for key, entry in sorted(self._entries.items())
        }

    @classmethod
    def from_dump(cls, dump: dict[str, dict[str, Any]]) -> "WorldState":
        """Rebuild a state from a :meth:`dump` image (history is empty)."""
        state = cls()
        for key in sorted(dump):
            entry = dump[key]
            state._entries[key] = VersionedValue(
                value=entry["value"], version=int(entry["version"])
            )
        return state

    def __len__(self) -> int:
        return len(self._entries)
