"""Blocks and the hash-linked chain.

An append-only sequence of blocks, each committing to its predecessor's
digest and to a Merkle root over its transactions.  The chain validates
linkage on append and supports the paper's §3.2 note on pruning: blocks
below a checkpoint can be archived, leaving a checkpoint record so the
chain remains verifiable while old entries move to an archive that parties
query on request.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.crypto.hashing import hash_value
from repro.crypto.merkle import MerkleTree
from repro.ledger.transaction import Transaction

GENESIS_DIGEST = b"\x00" * 32


@dataclass(frozen=True)
class BlockHeader:
    """Height, previous-block digest, and transaction Merkle root."""

    height: int
    previous_digest: bytes
    tx_root: bytes
    timestamp: float

    def digest(self) -> bytes:
        return hash_value(
            "repro/block",
            {
                "height": self.height,
                "previous_digest": self.previous_digest,
                "tx_root": self.tx_root,
                "timestamp": self.timestamp,
            },
        )


@dataclass(frozen=True)
class Block:
    """A block: header plus the ordered transactions it commits."""

    header: BlockHeader
    transactions: tuple[Transaction, ...]

    @property
    def height(self) -> int:
        return self.header.height

    def digest(self) -> bytes:
        return self.header.digest()


def build_block(
    height: int,
    previous_digest: bytes,
    transactions: list[Transaction],
    timestamp: float,
) -> Block:
    """Assemble a block, computing the transaction Merkle root."""
    tree = MerkleTree([tx.core_content() for tx in transactions])
    header = BlockHeader(
        height=height,
        previous_digest=previous_digest,
        tx_root=tree.root,
        timestamp=timestamp,
    )
    return Block(header=header, transactions=tuple(transactions))


@dataclass(frozen=True)
class Checkpoint:
    """Summary left behind when blocks below it are archived."""

    height: int
    digest: bytes
    archived_tx_count: int


class Chain:
    """Append-only chain of blocks with verification and pruning."""

    def __init__(self, channel: str) -> None:
        self.channel = channel
        self._blocks: list[Block] = []
        self._archive: list[Block] = []
        self._checkpoint: Checkpoint | None = None

    @property
    def height(self) -> int:
        """Height of the latest block (0 when empty)."""
        if self._blocks:
            return self._blocks[-1].height
        if self._checkpoint is not None:
            return self._checkpoint.height
        return 0

    def tip_digest(self) -> bytes:
        if self._blocks:
            return self._blocks[-1].digest()
        if self._checkpoint is not None:
            return self._checkpoint.digest
        return GENESIS_DIGEST

    def append(self, transactions: list[Transaction], timestamp: float) -> Block:
        """Build and append the next block."""
        block = build_block(
            height=self.height + 1,
            previous_digest=self.tip_digest(),
            transactions=transactions,
            timestamp=timestamp,
        )
        self._blocks.append(block)
        return block

    def append_block(self, block: Block) -> None:
        """Append a block received from an orderer, verifying linkage."""
        if block.height != self.height + 1:
            raise ValidationError(
                f"block height {block.height} does not extend height {self.height}"
            )
        if block.header.previous_digest != self.tip_digest():
            raise ValidationError("block does not link to the current tip")
        tree = MerkleTree([tx.core_content() for tx in block.transactions])
        if tree.root != block.header.tx_root:
            raise ValidationError("block transaction root mismatch")
        self._blocks.append(block)

    def blocks(self) -> list[Block]:
        """Live (non-archived) blocks, oldest first."""
        return list(self._blocks)

    def transactions(self) -> list[Transaction]:
        """All transactions in live blocks."""
        return [tx for block in self._blocks for tx in block.transactions]

    def verify(self) -> None:
        """Re-verify every hash link; raises on any tamper."""
        previous = (
            self._checkpoint.digest if self._checkpoint is not None else GENESIS_DIGEST
        )
        expected_height = (
            self._checkpoint.height if self._checkpoint is not None else 0
        )
        for block in self._blocks:
            expected_height += 1
            if block.height != expected_height:
                raise ValidationError(f"height gap at block {block.height}")
            if block.header.previous_digest != previous:
                raise ValidationError(f"broken link at height {block.height}")
            tree = MerkleTree([tx.core_content() for tx in block.transactions])
            if tree.root != block.header.tx_root:
                raise ValidationError(f"tx root mismatch at height {block.height}")
            previous = block.digest()

    # -- pruning / archiving (paper §3.2: "archived entries are generally
    # still available to parties on request")

    def prune_below(self, height: int) -> Checkpoint:
        """Archive all blocks strictly below *height*."""
        if height > self.height:
            raise ValidationError("cannot prune above the chain tip")
        keep = [b for b in self._blocks if b.height >= height]
        archive = [b for b in self._blocks if b.height < height]
        if not archive:
            raise ValidationError("nothing to prune below that height")
        boundary = archive[-1]
        self._archive.extend(archive)
        self._blocks = keep
        self._checkpoint = Checkpoint(
            height=boundary.height,
            digest=boundary.digest(),
            archived_tx_count=sum(len(b.transactions) for b in self._archive),
        )
        return self._checkpoint

    def archived_blocks(self) -> list[Block]:
        """Archived blocks — available on request, not deleted."""
        return list(self._archive)

    @property
    def checkpoint(self) -> Checkpoint | None:
        return self._checkpoint
