"""Transactions.

The neutral transaction model shared by every platform simulation.  A
transaction carries a read set, a write set, signer endorsements, and
optional privacy annotations (hash anchors for off-chain data, encrypted
payloads, torn-off component digests).  Platform modules wrap or extend
this with their own semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.ids import content_id
from repro.common.serialization import canonical_bytes
from repro.crypto.hashing import hash_hex
from repro.crypto.signatures import Signature


@dataclass(frozen=True)
class ReadEntry:
    """A key read at a specific committed version (for MVCC validation)."""

    key: str
    version: int


@dataclass(frozen=True)
class WriteEntry:
    """A key/value write.  ``is_delete`` tombstones the key."""

    key: str
    value: Any = None
    is_delete: bool = False


@dataclass(frozen=True)
class Endorsement:
    """One signer's approval of the transaction's canonical content."""

    endorser: str
    signature: Signature


@dataclass(frozen=True)
class Transaction:
    """A proposed ledger update.

    ``channel`` scopes the transaction to a ledger (platform-dependent
    meaning: Fabric channel, Corda transaction universe, Quorum chain).
    ``private_hashes`` maps labels to hex digests anchoring off-chain or
    torn-off data.  ``metadata`` carries platform extensions (e.g. the
    Quorum participant list — which is itself a privacy leak the paper
    calls out, so it lives in plain sight here deliberately).
    """

    channel: str
    submitter: str
    reads: tuple[ReadEntry, ...] = ()
    writes: tuple[WriteEntry, ...] = ()
    endorsements: tuple[Endorsement, ...] = ()
    private_hashes: dict = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)
    timestamp: float = 0.0

    def core_content(self) -> dict:
        """The signed/endorsed portion (everything except endorsements)."""
        return {
            "channel": self.channel,
            "submitter": self.submitter,
            "reads": [r.__dict__ for r in self.reads],
            "writes": [w.__dict__ for w in self.writes],
            "private_hashes": self.private_hashes,
            "metadata": self.metadata,
            "timestamp": self.timestamp,
        }

    def signing_bytes(self) -> bytes:
        """Canonical bytes an endorser signs."""
        return canonical_bytes(self.core_content())

    @property
    def tx_id(self) -> str:
        return content_id("tx", self.core_content())

    def with_endorsements(self, endorsements: list[Endorsement]) -> "Transaction":
        """Return a copy carrying the given endorsements."""
        return Transaction(
            channel=self.channel,
            submitter=self.submitter,
            reads=self.reads,
            writes=self.writes,
            endorsements=tuple(endorsements),
            private_hashes=dict(self.private_hashes),
            metadata=dict(self.metadata),
            timestamp=self.timestamp,
        )

    def content_hash(self) -> str:
        """Hex digest of the endorsed content (used for hash-only records)."""
        return hash_hex("repro/tx", self.core_content())
