"""Execution engines.

Section 3.3 names four criteria for business-logic confidentiality
mechanisms: whether an implementation (1) keeps logic private, (2) offers
in-built smart contract versioning, (3) hides data from the node
administrator, and (4) allows any programming language.

Three engines realize the paper's three mechanisms, and each reports its
own criteria via :meth:`ExecutionEngine.properties` — the design guide and
the Table 1 prober consume those self-descriptions, so the guide's
recommendations are grounded in executable artifacts rather than a table of
constants.

- :class:`LedgerEngine`    — contracts installed on (only) involved nodes,
  ledger-managed versioning, platform language, admin sees code and data.
- :class:`OffChainEngine`  — logic runs outside the DLT; the on-ledger
  contract is reduced to read/write stubs; any language; versioning is the
  operator's problem (drift is simulable); the *engine host's* admin still
  sees everything.
- :class:`TEEEngine`       — logic and data sealed inside a simulated
  enclave with remote attestation; the admin sees only ciphertext.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import ContractError
from repro.common.rng import DeterministicRNG
from repro.common.serialization import canonical_bytes, from_canonical_json
from repro.crypto.tee import Enclave, Manufacturer
from repro.execution.contracts import (
    ContractRegistry,
    SmartContract,
    StateView,
)
from repro.network.messages import Exposure
from repro.network.simnet import Observer
from repro.telemetry import Telemetry


@dataclass(frozen=True)
class EngineProperties:
    """The Section 3.3 decision criteria, self-reported by each engine."""

    keeps_logic_private: bool
    inbuilt_versioning: bool
    hides_data_from_admin: bool
    any_language: bool


@dataclass
class ExecutionResult:
    """Outcome of one contract invocation."""

    contract_id: str
    version: int
    return_value: Any
    reads: dict[str, int]
    writes: dict[str, Any]
    deletes: set[str]


class ExecutionEngine:
    """Common interface; subclasses define where code actually runs.

    Every engine carries a :class:`~repro.telemetry.Telemetry` bundle
    (the owning platform's, or a private one when standalone) and counts
    invocations and mechanism-specific crypto costs on it, so the
    ``repro metrics`` snapshot can attribute execution cost to the
    Section 3.3 mechanism that incurred it.
    """

    name = "abstract"

    def __init__(self, telemetry: Telemetry | None = None) -> None:
        self.telemetry = telemetry or Telemetry()

    def _count_invocation(self, contract_id: str) -> None:
        self.telemetry.metrics.counter("exec.invocations", engine=self.name).inc()

    def properties(self) -> EngineProperties:
        raise NotImplementedError

    def execute(
        self,
        node: str,
        contract_id: str,
        function: str,
        args: dict,
        state: dict[str, Any],
        versions: dict[str, int],
    ) -> ExecutionResult:
        raise NotImplementedError


class LedgerEngine(ExecutionEngine):
    """Contracts installed per node; execution happens on the peer.

    The node's administrator can read both the code and the cleartext data
    (criterion 3 fails); versioning is ledger-managed (criterion 2 holds);
    logic is private exactly to the nodes it is installed on (criterion 1
    holds, given installation is scoped); language is the platform's
    (criterion 4 fails).
    """

    name = "ledger"
    platform_language = "python-chaincode"

    def __init__(
        self,
        registry: ContractRegistry | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        super().__init__(telemetry=telemetry)
        self.registry = registry or ContractRegistry(enforce_consistency=True)
        self.admin_observers: dict[str, Observer] = {}

    def properties(self) -> EngineProperties:
        return EngineProperties(
            keeps_logic_private=True,
            inbuilt_versioning=True,
            hides_data_from_admin=False,
            any_language=False,
        )

    def install(self, node: str, contract: SmartContract) -> None:
        if contract.language != self.platform_language:
            raise ContractError(
                f"ledger engine only runs {self.platform_language!r} contracts"
            )
        self.registry.install(node, contract)

    def _admin_observer(self, node: str) -> Observer:
        if node not in self.admin_observers:
            self.admin_observers[node] = Observer(f"admin@{node}")
        return self.admin_observers[node]

    def execute(
        self,
        node: str,
        contract_id: str,
        function: str,
        args: dict,
        state: dict[str, Any],
        versions: dict[str, int],
    ) -> ExecutionResult:
        contract = self.registry.lookup(node, contract_id)
        self._count_invocation(contract_id)
        view = StateView(state, versions)
        value = contract.invoke(function, view, args)
        # The node admin sees the code identity and all cleartext keys.
        self._admin_observer(node).observe_exposure(
            Exposure.of(
                data_keys=set(view.reads) | set(view.writes),
                code_ids={contract_id},
            )
        )
        return ExecutionResult(
            contract_id=contract_id,
            version=contract.version,
            return_value=value,
            reads=view.reads,
            writes=view.writes,
            deletes=view.deletes,
        )


class OffChainEngine(ExecutionEngine):
    """Business logic runs outside the DLT layer (paper ref [1]).

    The ledger only sees read/write stubs.  Any language is accepted;
    versioning is not enforced (``ContractRegistry(enforce_consistency=
    False)``), so two hosts can drift — call :meth:`detect_drift` to model
    the paper's warning about "additional challenges to enforce
    simultaneous updates across all engines".
    """

    name = "offchain"

    def __init__(self, telemetry: Telemetry | None = None) -> None:
        super().__init__(telemetry=telemetry)
        self.registry = ContractRegistry(enforce_consistency=False)
        self.admin_observers: dict[str, Observer] = {}

    def properties(self) -> EngineProperties:
        return EngineProperties(
            keeps_logic_private=True,
            inbuilt_versioning=False,
            hides_data_from_admin=False,
            any_language=True,
        )

    def install(self, host: str, contract: SmartContract) -> None:
        """Any language is fine — that is the engine's selling point."""
        self.registry.install(host, contract)

    def _admin_observer(self, host: str) -> Observer:
        if host not in self.admin_observers:
            self.admin_observers[host] = Observer(f"admin@{host}")
        return self.admin_observers[host]

    def execute(
        self,
        node: str,
        contract_id: str,
        function: str,
        args: dict,
        state: dict[str, Any],
        versions: dict[str, int],
    ) -> ExecutionResult:
        contract = self.registry.lookup(node, contract_id)
        self._count_invocation(contract_id)
        view = StateView(state, versions)
        value = contract.invoke(function, view, args)
        self._admin_observer(node).observe_exposure(
            Exposure.of(
                data_keys=set(view.reads) | set(view.writes),
                code_ids={contract_id},
            )
        )
        return ExecutionResult(
            contract_id=contract_id,
            version=contract.version,
            return_value=value,
            reads=view.reads,
            writes=view.writes,
            deletes=view.deletes,
        )

    def detect_drift(self, hosts: list[str], contract_id: str) -> dict[str, int]:
        """Report per-host versions; the caller decides what to do.

        Unlike the ledger engine there is no enforcement — the return value
        simply makes the hazard observable.
        """
        return {
            host: self.registry.lookup(host, contract_id).version for host in hosts
        }


class TEEEngine(ExecutionEngine):
    """Contracts execute inside a simulated enclave (Section 2.2/2.3 TEEs).

    The node administrator sees only ciphertext and attestation blobs; the
    relying party verifies the enclave measurement before trusting results.
    """

    name = "tee"

    def __init__(
        self,
        manufacturer: Manufacturer | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        super().__init__(telemetry=telemetry)
        self.manufacturer = manufacturer or Manufacturer()
        self._enclaves: dict[tuple[str, str], Enclave] = {}
        self._measurements: dict[tuple[str, str], bytes] = {}
        self._contracts: dict[tuple[str, str], SmartContract] = {}
        self._rng = DeterministicRNG("tee-engine")
        self._nonce_counter = 0

    def properties(self) -> EngineProperties:
        return EngineProperties(
            keeps_logic_private=True,
            inbuilt_versioning=True,
            hides_data_from_admin=True,
            any_language=False,
        )

    def install(self, node: str, contract: SmartContract) -> None:
        """Provision an enclave on *node* and load the contract into it."""
        enclave = self.manufacturer.provision()

        def enclave_program(payload: dict) -> dict:
            view = StateView(payload["state"], payload["versions"])
            value = contract.invoke(payload["function"], view, payload["args"])
            return {
                "return_value": value,
                "reads": view.reads,
                "writes": view.writes,
                "deletes": sorted(view.deletes),
                "version": contract.version,
            }

        measurement = enclave.load(enclave_program)
        key = (node, contract.contract_id)
        self._enclaves[key] = enclave
        self._measurements[key] = measurement
        self._contracts[key] = contract

    def measurement_of(self, node: str, contract_id: str) -> bytes:
        return self._measurements[(node, contract_id)]

    def enclave_of(self, node: str, contract_id: str) -> Enclave:
        return self._enclaves[(node, contract_id)]

    def execute(
        self,
        node: str,
        contract_id: str,
        function: str,
        args: dict,
        state: dict[str, Any],
        versions: dict[str, int],
    ) -> ExecutionResult:
        key = (node, contract_id)
        if key not in self._enclaves:
            raise ContractError(
                f"no enclave for contract {contract_id!r} on node {node!r}"
            )
        self._count_invocation(contract_id)
        crypto = self.telemetry.metrics
        crypto.counter("crypto.ops", mechanism="tee-session-key").inc()
        crypto.counter("crypto.ops", mechanism="tee-attestation").inc()
        enclave = self._enclaves[key]
        session = enclave.establish_session_key(self._rng.fork(f"s{self._nonce_counter}"))
        self._nonce_counter += 1
        nonce = self._rng.randbytes(16)
        payload = canonical_bytes(
            {
                "function": function,
                "args": args,
                "state": state,
                "versions": versions,
            }
        )
        encrypted = session.encrypt(payload, self._rng)
        output_ct, attestation = enclave.execute(encrypted, nonce)
        self.manufacturer.verify_attestation(
            attestation, self._measurements[key], nonce
        )
        result = from_canonical_json(session.decrypt(output_ct).decode("utf-8"))
        return ExecutionResult(
            contract_id=contract_id,
            version=result["version"],
            return_value=result["return_value"],
            reads=result["reads"],
            writes=result["writes"],
            deletes=set(result["deletes"]),
        )

    def admin_view(self, node: str, contract_id: str) -> list[dict]:
        """Everything the node admin could observe: opaque sizes only."""
        enclave = self._enclaves[(node, contract_id)]
        return [
            {"operation": entry.operation, "bytes": entry.visible_bytes}
            for entry in enclave.host_log
        ]
