"""Smart contracts and the versioning registry.

A contract is deterministic business logic operating on a key-value state
view.  The registry implements the "in-built smart contract versioning"
criterion of Section 3.3: platforms with ledger-managed contracts guarantee
every endorsing node runs the same version, while off-chain engines must
manage versions externally (and can drift — a hazard the tests exercise).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import ContractError
from repro.crypto.hashing import hash_hex

ContractFunction = Callable[["StateView", dict], Any]


@dataclass(frozen=True)
class SourceLocation:
    """Where a registered contract function's code lives.

    The static analyzer and error messages use this to point at *user*
    contract code instead of at the execution engine.  ``introspectable``
    is False for callables whose source cannot be recovered (builtins,
    C-level callables, code defined in a REPL) — registering those makes
    the contract invisible to the linter, which is why the use cases
    register plain ``def``s.
    """

    function: str
    file: str
    line: int
    introspectable: bool
    source: str | None = None

    def describe(self) -> str:
        status = "" if self.introspectable else " (source unavailable)"
        return f"{self.function} @ {self.file}:{self.line}{status}"


class StateView:
    """The read/write interface contract code sees during execution.

    Collects a read set and write set for MVCC validation instead of
    mutating state directly.
    """

    def __init__(self, backing: dict[str, Any], versions: dict[str, int]) -> None:
        self._backing = dict(backing)
        self._versions = dict(versions)
        self.reads: dict[str, int] = {}
        self.writes: dict[str, Any] = {}
        self.deletes: set[str] = set()

    def get(self, key: str, default: Any = None) -> Any:
        self.reads[key] = self._versions.get(key, 0)
        if key in self.writes:
            return self.writes[key]
        if key in self.deletes:
            return default
        return self._backing.get(key, default)

    def put(self, key: str, value: Any) -> None:
        self.deletes.discard(key)
        self.writes[key] = value

    def delete(self, key: str) -> None:
        self.writes.pop(key, None)
        self.deletes.add(key)

    def get_range(self, start: str, end: str) -> dict[str, Any]:
        """All visible keys in [start, end), reads recorded per key.

        Mirrors Fabric's GetStateByRange: results reflect committed state
        plus this invocation's own writes and deletes.
        """
        keys = set(self._backing) | set(self.writes)
        out: dict[str, Any] = {}
        for key in sorted(keys):
            if start <= key < end and key not in self.deletes:
                out[key] = self.get(key)
        return out


@dataclass(frozen=True)
class SmartContract:
    """Versioned business logic.

    ``language`` matters for the Section 3.3 criterion "allows for business
    logic to be written in any programming language": ledger-hosted engines
    pin it to the platform language, external engines accept anything.
    ``functions`` maps entry-point names to callables.
    """

    contract_id: str
    version: int
    language: str
    functions: dict[str, ContractFunction] = field(default_factory=dict)

    def code_measurement(self) -> str:
        """Stable identity of this code version.

        Covers the contract id, version, and each function's compiled
        bytecode — so two contracts that differ only in logic (same names,
        same version) still measure differently, which TEE attestation
        relies on.
        """
        return hash_hex(
            "repro/contract",
            {
                "contract_id": self.contract_id,
                "version": self.version,
                "functions": {
                    name: fn.__code__.co_code
                    for name, fn in sorted(self.functions.items())
                },
            },
        )

    def source_location(self, function: str) -> SourceLocation:
        """Introspect where *function*'s registered code was defined."""
        if function not in self.functions:
            raise ContractError(
                f"contract {self.contract_id!r} has no function {function!r}"
            )
        fn = self.functions[function]
        code = getattr(fn, "__code__", None)
        file = getattr(code, "co_filename", "<unknown>")
        line = getattr(code, "co_firstlineno", 0)
        try:
            source = inspect.getsource(fn)
            introspectable = True
        except (OSError, TypeError):
            source = None
            introspectable = False
        return SourceLocation(
            function=function,
            file=file,
            line=line,
            introspectable=introspectable,
            source=source,
        )

    def source_locations(self) -> dict[str, SourceLocation]:
        """Source locations for every registered entry point."""
        return {name: self.source_location(name) for name in sorted(self.functions)}

    def invoke(self, function: str, view: StateView, args: dict) -> Any:
        if function not in self.functions:
            available = ", ".join(
                location.describe()
                for location in self.source_locations().values()
            )
            raise ContractError(
                f"contract {self.contract_id!r} has no function {function!r}"
                + (f"; registered entry points: {available}" if available else "")
            )
        return self.functions[function](view, args)


class ContractRegistry:
    """Tracks which node has which contract version installed.

    ``enforce_consistency=True`` models ledger-managed lifecycles (Fabric
    chaincode commit): execution refuses to proceed unless all executing
    nodes hold the same version.  ``False`` models external engines where
    version control "will need to be managed outside the DLT layer".
    """

    def __init__(self, enforce_consistency: bool = True) -> None:
        self.enforce_consistency = enforce_consistency
        self._installed: dict[str, dict[str, SmartContract]] = {}

    def install(self, node: str, contract: SmartContract) -> None:
        """Install a contract version on one node."""
        self._installed.setdefault(node, {})[contract.contract_id] = contract

    def installed_on(self, node: str) -> list[str]:
        return sorted(self._installed.get(node, {}))

    def has_contract(self, node: str, contract_id: str) -> bool:
        return contract_id in self._installed.get(node, {})

    def lookup(self, node: str, contract_id: str) -> SmartContract:
        contract = self._installed.get(node, {}).get(contract_id)
        if contract is None:
            raise ContractError(
                f"node {node!r} does not have contract {contract_id!r} installed"
            )
        return contract

    def check_version_consistency(self, nodes: list[str], contract_id: str) -> int:
        """Return the common version, or raise if nodes disagree.

        Only meaningful when the registry enforces consistency; external
        engines skip this check, which is exactly their versioning hazard.
        """
        versions = {}
        for node in nodes:
            versions[node] = self.lookup(node, contract_id).version
        distinct = set(versions.values())
        if self.enforce_consistency and len(distinct) > 1:
            raise ContractError(
                f"version drift for {contract_id!r}: {versions}"
            )
        return max(distinct)

    def nodes_with_code_visibility(self, contract_id: str) -> set[str]:
        """Which nodes can read this contract's logic (Section 2.3).

        A node sees the code iff the code is installed on it — the
        'installation on involved nodes only' confidentiality mechanism.
        """
        return {
            node
            for node, contracts in self._installed.items()
            if contract_id in contracts
        }
