"""Smart-contract execution: contracts, versioning, and the three engines."""

from repro.execution.contracts import (
    ContractRegistry,
    SmartContract,
    SourceLocation,
    StateView,
)
from repro.execution.engines import (
    EngineProperties,
    ExecutionEngine,
    ExecutionResult,
    LedgerEngine,
    OffChainEngine,
    TEEEngine,
)

__all__ = [
    "ContractRegistry",
    "SmartContract",
    "SourceLocation",
    "StateView",
    "EngineProperties",
    "ExecutionEngine",
    "ExecutionResult",
    "LedgerEngine",
    "OffChainEngine",
    "TEEEngine",
]
