"""Simulated clock.

All time in the library is logical: the discrete-event network advances a
:class:`SimClock` and every timestamped artifact (certificates, blocks,
messages) reads from it.  Nothing in the core ever calls the wall clock,
which keeps runs reproducible.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing logical clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before time 0")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by *delta* seconds and return the new time."""
        if delta < 0:
            raise ValueError("clock cannot move backwards")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        """Move time forward to absolute time *when* (no-op if in the past)."""
        if when > self._now:
            self._now = when
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
