"""Stable identifier helpers.

Identifiers for transactions, blocks, parties, and stores are short hex
digests of their canonical content, so they are stable across runs and
meaningful in test assertions.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.common.serialization import canonical_bytes


def content_id(kind: str, value: Any, length: int = 16) -> str:
    """Return ``kind:hex`` where hex digests the canonical form of *value*."""
    digest = hashlib.sha256(
        kind.encode("utf-8") + b"\x00" + canonical_bytes(value)
    ).hexdigest()
    return f"{kind}:{digest[:length]}"


def short(identifier: str, length: int = 8) -> str:
    """Abbreviate an identifier for human-readable logs."""
    if ":" in identifier:
        kind, digest = identifier.split(":", 1)
        return f"{kind}:{digest[:length]}"
    return identifier[:length]
