"""Canonical, deterministic serialization.

Every hash, signature, and Merkle leaf in the library is computed over the
canonical encoding produced here, so two nodes that hold the same logical
value always derive the same digest.  The encoding is JSON with sorted keys,
no insignificant whitespace, and explicit tagging for byte strings (JSON has
no native bytes type).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

_BYTES_TAG = "__bytes_hex__"


def _default(value: Any) -> Any:
    if isinstance(value, bytes):
        return {_BYTES_TAG: value.hex()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    raise TypeError(f"cannot canonically serialize {type(value).__name__}")


def canonical_json(value: Any) -> str:
    """Return the canonical JSON text for *value*.

    Dict keys are sorted, floats are rejected implicitly by JSON's default
    repr only when NaN/Inf (``allow_nan=False``), bytes are hex-tagged, and
    dataclasses are serialized as dictionaries.
    """
    return json.dumps(
        value,
        default=_default,
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
        ensure_ascii=True,
    )


def canonical_bytes(value: Any) -> bytes:
    """Return the canonical UTF-8 encoding of *value* for hashing/signing."""
    return canonical_json(value).encode("utf-8")


def from_canonical_json(text: str) -> Any:
    """Invert :func:`canonical_json`, restoring tagged byte strings."""

    def hook(obj: dict) -> Any:
        if set(obj.keys()) == {_BYTES_TAG}:
            return bytes.fromhex(obj[_BYTES_TAG])
        return obj

    return json.loads(text, object_hook=hook)
