"""Exception hierarchy shared by every subsystem.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Subsystem bases (crypto, ledger, platform, guide) exist so that
integration code can distinguish a cryptographic failure from, say, a
validation failure without string matching.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class SignatureError(CryptoError):
    """A signature failed to verify."""


class DecryptionError(CryptoError):
    """Ciphertext could not be authenticated or decrypted."""


class ProofError(CryptoError):
    """A zero-knowledge proof or Merkle proof failed to verify."""


class CertificateError(CryptoError):
    """A certificate was invalid, expired, revoked, or had a broken chain."""


class AttestationError(CryptoError):
    """A TEE attestation failed verification."""


class MPCError(CryptoError):
    """A multiparty computation protocol aborted."""


class LedgerError(ReproError):
    """Base class for ledger failures."""


class ValidationError(LedgerError):
    """A transaction or block failed validation."""


class StateError(LedgerError):
    """World-state access failed (missing key, version conflict)."""


class OrderingError(LedgerError):
    """The ordering service rejected or could not order a transaction."""


class NetworkError(ReproError):
    """Base class for simulated-network failures."""


class DeliveryError(NetworkError):
    """A message could not be delivered (unknown node, partition)."""


class DeliveryTimeout(DeliveryError):
    """Resilient delivery exhausted its retry budget without an ack."""


class PlatformError(ReproError):
    """Base class for platform-simulation failures."""


class MembershipError(PlatformError):
    """An identity was not authorized for the attempted operation."""


class EndorsementError(PlatformError):
    """A transaction did not satisfy its endorsement policy."""


class ContractError(PlatformError):
    """Smart-contract installation, lookup, or execution failed."""


class DoubleSpendError(PlatformError):
    """An asset was spent twice (raised only by platforms that detect it)."""


class PrivacyError(PlatformError):
    """An operation would have violated a configured privacy boundary."""


class GuideError(ReproError):
    """Base class for design-guide failures."""


class RequirementsError(GuideError):
    """A requirements specification was inconsistent or incomplete."""


class DecisionError(GuideError):
    """The decision engine could not map requirements to a mechanism."""


class OffChainError(ReproError):
    """Base class for off-chain store failures."""


class AnchorMismatchError(OffChainError):
    """Off-chain data no longer matches its on-chain hash anchor."""


class DataDeletedError(OffChainError):
    """The requested off-chain data was deleted (e.g. GDPR erasure)."""
