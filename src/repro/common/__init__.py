"""Shared utilities: errors, canonical serialization, simulated clock, RNG."""

from repro.common.clock import SimClock
from repro.common.ids import content_id, short
from repro.common.rng import DeterministicRNG
from repro.common.serialization import (
    canonical_bytes,
    canonical_json,
    from_canonical_json,
)

__all__ = [
    "SimClock",
    "DeterministicRNG",
    "canonical_bytes",
    "canonical_json",
    "from_canonical_json",
    "content_id",
    "short",
]
