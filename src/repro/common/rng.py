"""Deterministic randomness.

Cryptographic stand-ins in this library need unpredictable-looking values,
but the simulation needs reproducibility.  :class:`DeterministicRNG` derives
an unbounded stream from SHA-256 in counter mode, seeded explicitly.  Two
runs with the same seed produce identical networks, keys, and nonces.
"""

from __future__ import annotations

import hashlib


class DeterministicRNG:
    """SHA-256 counter-mode pseudo-random generator with an explicit seed."""

    def __init__(self, seed: bytes | str | int = 0) -> None:
        if isinstance(seed, int):
            seed = seed.to_bytes(32, "big", signed=False)
        elif isinstance(seed, str):
            seed = seed.encode("utf-8")
        self._seed = hashlib.sha256(b"repro-rng:" + seed).digest()
        self._counter = 0

    def _block(self) -> bytes:
        block = hashlib.sha256(
            self._seed + self._counter.to_bytes(16, "big")
        ).digest()
        self._counter += 1
        return block

    def randbytes(self, n: int) -> bytes:
        """Return *n* pseudo-random bytes."""
        if n < 0:
            raise ValueError("cannot draw a negative number of bytes")
        out = bytearray()
        while len(out) < n:
            out.extend(self._block())
        return bytes(out[:n])

    def randint_below(self, bound: int) -> int:
        """Return a uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        nbits = bound.bit_length()
        nbytes = (nbits + 7) // 8
        mask = (1 << nbits) - 1
        while True:
            candidate = int.from_bytes(self.randbytes(nbytes), "big") & mask
            if candidate < bound:
                return candidate

    def randint_range(self, low: int, high: int) -> int:
        """Return a uniform integer in ``[low, high]`` inclusive."""
        if high < low:
            raise ValueError("empty range")
        return low + self.randint_below(high - low + 1)

    def uniform(self, low: float, high: float) -> float:
        """Return a float uniform in ``[low, high)`` with 53-bit resolution."""
        if high < low:
            raise ValueError("empty range")
        frac = int.from_bytes(self.randbytes(8), "big") >> 11
        return low + (high - low) * (frac / float(1 << 53))

    def choice(self, seq):
        """Return a uniformly chosen element of the non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.randint_below(len(seq))]

    def shuffle(self, items: list) -> list:
        """Return a new list with the items in a random order (Fisher-Yates)."""
        out = list(items)
        for i in range(len(out) - 1, 0, -1):
            j = self.randint_below(i + 1)
            out[i], out[j] = out[j], out[i]
        return out

    def fork(self, label: str) -> "DeterministicRNG":
        """Derive an independent child generator keyed by *label*.

        Forking lets subsystems (network, keygen, workload) consume
        randomness without perturbing each other's streams.
        """
        return DeterministicRNG(self._seed + b"|fork|" + label.encode("utf-8"))
