"""Fault injection for the network/ordering substrate (paper §3.4)."""

from repro.faults.plan import FaultPlan, Window

__all__ = ["FaultPlan", "Window"]
