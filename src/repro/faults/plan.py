"""Declarative fault plans for the simulated substrate.

Section 3.4 asks architects whether parties "can feasibly run their own
[ordering] service" — a question that only has content under faults.  A
:class:`FaultPlan` describes, ahead of a run, every fault the substrate
should inject:

- **per-link loss**: probability that a message on a given link is lost
  silently (plus a network-wide default);
- **latency multipliers**: timed slow-downs of a link or the whole network
  (congestion, a saturated orderer uplink);
- **timed partitions**: link cuts with a start and an optional heal time —
  consulted both when a message is sent *and* when it would be delivered,
  so traffic already in flight is cut too;
- **crash windows**: intervals during which a node is down — sends to or
  from it are refused, and in-flight messages due inside the window drop;
- **orderer outages**: intervals during which an ordering principal
  (Fabric orderer, Corda notary, Quorum consensus) rejects work.

The plan itself is pure data over simulated time: it holds no randomness
(loss is sampled by the network's deterministic RNG) and never reads the
wall clock, so faulted runs stay reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import NetworkError


@dataclass(frozen=True)
class Window:
    """A half-open interval ``[start, end)`` of simulated seconds."""

    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.start < 0:
            raise NetworkError("fault window cannot start before time 0")
        if self.end < self.start:
            raise NetworkError("fault window cannot end before it starts")

    def contains(self, now: float) -> bool:
        return self.start <= now < self.end


def _link(a: str, b: str) -> frozenset[str]:
    return frozenset((a, b))


def _check_probability(p: float) -> float:
    if not 0.0 <= p <= 1.0:
        raise NetworkError(f"loss probability must be in [0, 1], got {p}")
    return p


class FaultPlan:
    """A schedule of injected faults, queried by the substrate.

    Builder methods return ``self`` so plans read as one chained
    declaration::

        plan = (
            FaultPlan()
            .set_link_loss("OrgA", "OrgB", 0.3)
            .slow_all(8.0, start=1.0, end=5.0)
            .partition_between("OrgA", "fabric-orderer", start=0.0, end=2.0)
            .crash_node("OrgC", start=0.5, end=1.5)
            .orderer_outage("fabric-orderer", start=3.0, end=4.0)
        )
    """

    def __init__(self) -> None:
        self.default_loss: float = 0.0
        self._link_loss: dict[frozenset[str], float] = {}
        self._latency: list[tuple[frozenset[str] | None, Window, float]] = []
        self._partitions: list[tuple[frozenset[str], Window]] = []
        self._crashes: dict[str, list[Window]] = {}
        self._outages: dict[str, list[Window]] = {}

    # -- builders

    def set_default_loss(self, probability: float) -> "FaultPlan":
        """Silent-loss probability applied to every link without its own."""
        self.default_loss = _check_probability(probability)
        return self

    def set_link_loss(self, a: str, b: str, probability: float) -> "FaultPlan":
        """Silent-loss probability for the (symmetric) link ``a <-> b``."""
        self._link_loss[_link(a, b)] = _check_probability(probability)
        return self

    def slow_link(
        self, a: str, b: str, factor: float,
        start: float = 0.0, end: float = math.inf,
    ) -> "FaultPlan":
        """Multiply latency on one link by *factor* during the window."""
        if factor <= 0:
            raise NetworkError(f"latency multiplier must be > 0, got {factor}")
        self._latency.append((_link(a, b), Window(start, end), factor))
        return self

    def slow_all(
        self, factor: float, start: float = 0.0, end: float = math.inf
    ) -> "FaultPlan":
        """Multiply latency on every link by *factor* during the window."""
        if factor <= 0:
            raise NetworkError(f"latency multiplier must be > 0, got {factor}")
        self._latency.append((None, Window(start, end), factor))
        return self

    def partition_between(
        self, a: str, b: str, start: float = 0.0, end: float = math.inf
    ) -> "FaultPlan":
        """Cut the link ``a <-> b`` for the window (heals at *end*)."""
        self._partitions.append((_link(a, b), Window(start, end)))
        return self

    def crash_node(
        self, name: str, start: float = 0.0, end: float = math.inf
    ) -> "FaultPlan":
        """Take *name* down for the window (recovers at *end*)."""
        self._crashes.setdefault(name, []).append(Window(start, end))
        return self

    def orderer_outage(
        self, name: str, start: float = 0.0, end: float = math.inf
    ) -> "FaultPlan":
        """Take the ordering principal *name* down for the window."""
        self._outages.setdefault(name, []).append(Window(start, end))
        return self

    # -- queries (all pure over simulated time)

    def loss_probability(self, a: str, b: str) -> float:
        return self._link_loss.get(_link(a, b), self.default_loss)

    def latency_multiplier(self, a: str, b: str, now: float) -> float:
        """Product of every active multiplier covering the link at *now*."""
        link = _link(a, b)
        factor = 1.0
        for scope, window, multiplier in self._latency:
            if (scope is None or scope == link) and window.contains(now):
                factor *= multiplier
        return factor

    def is_partitioned(self, a: str, b: str, now: float) -> bool:
        link = _link(a, b)
        return any(
            cut == link and window.contains(now)
            for cut, window in self._partitions
        )

    def is_crashed(self, name: str, now: float) -> bool:
        return any(w.contains(now) for w in self._crashes.get(name, ()))

    def orderer_down(self, name: str, now: float) -> bool:
        return any(w.contains(now) for w in self._outages.get(name, ()))

    def describe(self) -> str:
        """Human-readable summary (for logs and chaos-test output)."""
        lines = [f"FaultPlan(default_loss={self.default_loss})"]
        for link, p in sorted(self._link_loss.items(), key=lambda kv: sorted(kv[0])):
            lines.append(f"  loss {'-'.join(sorted(link))}: {p}")
        for scope, window, factor in self._latency:
            where = "-".join(sorted(scope)) if scope else "all links"
            lines.append(f"  latency x{factor} on {where} [{window.start}, {window.end})")
        for link, window in self._partitions:
            lines.append(
                f"  partition {'-'.join(sorted(link))} [{window.start}, {window.end})"
            )
        for name, windows in sorted(self._crashes.items()):
            for window in windows:
                lines.append(f"  crash {name} [{window.start}, {window.end})")
        for name, windows in sorted(self._outages.items()):
            for window in windows:
                lines.append(f"  orderer outage {name} [{window.start}, {window.end})")
        return "\n".join(lines)
