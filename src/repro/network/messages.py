"""Network message model.

Every byte that crosses the simulated wire is a :class:`Message`.  Privacy
analysis is message-centric: the leakage auditor inspects exactly what each
principal received or could observe, so messages carry explicit metadata
about the identities and data classes they expose.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_sequence = itertools.count(1)


@dataclass(frozen=True)
class Exposure:
    """What a message reveals to whoever can read it.

    - ``identities``: party names visible in the clear.
    - ``data_keys``: business-data identifiers visible in the clear.
    - ``code_ids``: smart-contract identifiers whose logic is visible.

    Encrypted payloads contribute nothing here; that is the point of
    encrypting them.
    """

    identities: frozenset[str] = frozenset()
    data_keys: frozenset[str] = frozenset()
    code_ids: frozenset[str] = frozenset()

    @classmethod
    def of(
        cls,
        identities: set[str] | list[str] = (),
        data_keys: set[str] | list[str] = (),
        code_ids: set[str] | list[str] = (),
    ) -> "Exposure":
        return cls(
            identities=frozenset(identities),
            data_keys=frozenset(data_keys),
            code_ids=frozenset(code_ids),
        )

    def merge(self, other: "Exposure") -> "Exposure":
        return Exposure(
            identities=self.identities | other.identities,
            data_keys=self.data_keys | other.data_keys,
            code_ids=self.code_ids | other.code_ids,
        )

    def is_empty(self) -> bool:
        return not (self.identities or self.data_keys or self.code_ids)


@dataclass(frozen=True)
class Message:
    """One unit of simulated network traffic.

    ``trace`` carries the sender's telemetry trace context —
    ``(trace_id, span_id)`` — across the wire, the way real systems put
    W3C traceparent headers on RPCs.  It holds opaque sequence-number
    ids only (never payload-derived data), so propagation adds no
    exposure: the leakage auditor ignores it and the telemetry
    cross-check test verifies it reveals nothing.

    ``dedup_key`` makes delivery idempotent at the application layer:
    two messages carrying the same key are applied at most once by the
    recipient (the second is acknowledged but not handed to handlers).
    Retransmissions from ``send_with_retry`` and replayed catch-up
    blocks both rely on it.  Like ``trace`` it is an opaque label, never
    payload-derived data, so it widens no observer's knowledge.
    """

    sender: str
    recipient: str
    kind: str
    payload: Any
    exposure: Exposure = field(default_factory=Exposure)
    size_bytes: int = 0
    message_id: int = field(default_factory=lambda: next(_sequence))
    sent_at: float = 0.0
    trace: tuple[str, str] | None = None
    dedup_key: str | None = None
