"""Discrete-event network simulator.

The substrate every platform simulation runs on.  Provides:

- registered nodes with inboxes and message handlers,
- point-to-point sends and broadcasts with configurable latency models,
- message loss and network partitions for fault-injection tests,
- **observer taps**: passive principals (a curious orderer, a wiretapping
  admin) that see traffic and whose accumulated knowledge the leakage
  auditor later inspects,
- cost accounting (messages, bytes, simulated time) for the S1-S3
  scalability benchmarks.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.clock import SimClock
from repro.common.errors import DeliveryError
from repro.common.rng import DeterministicRNG
from repro.common.serialization import canonical_bytes
from repro.network.messages import Exposure, Message


@dataclass
class LatencyModel:
    """Per-hop delay: base + uniform jitter, in simulated seconds."""

    base: float = 0.005
    jitter: float = 0.002

    def sample(self, rng: DeterministicRNG) -> float:
        if self.jitter <= 0:
            return self.base
        return self.base + rng.uniform(0.0, self.jitter)


@dataclass
class NetworkStats:
    """Aggregate traffic accounting for benchmarks."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_transferred: int = 0


class Observer:
    """A passive principal accumulating everything it could see.

    Observers model the paper's §3.4 concerns: the ordering service that
    "has visibility of all DLT events", or an infrastructure administrator
    hosting someone else's node.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.seen_identities: set[str] = set()
        self.seen_data_keys: set[str] = set()
        self.seen_code_ids: set[str] = set()
        self.messages_observed: int = 0

    def observe(self, message: Message) -> None:
        self.observe_exposure(message.exposure)

    def observe_exposure(self, exposure: Exposure) -> None:
        """Record knowledge gained from one observed event."""
        self.messages_observed += 1
        self.seen_identities |= exposure.identities
        self.seen_data_keys |= exposure.data_keys
        self.seen_code_ids |= exposure.code_ids

    def knowledge(self) -> dict:
        """Snapshot of accumulated knowledge (for audit reports)."""
        return {
            "identities": sorted(self.seen_identities),
            "data_keys": sorted(self.seen_data_keys),
            "code_ids": sorted(self.seen_code_ids),
            "messages_observed": self.messages_observed,
        }


class Node:
    """A network endpoint with an inbox and optional message handlers.

    Each node is also an :class:`Observer` of its own inbound traffic, so
    "what did this peer learn" falls out of the same accounting as the
    passive taps.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.inbox: list[Message] = []
        self.observer = Observer(name)
        self._handlers: dict[str, Callable[[Message], None]] = {}

    def on(self, kind: str, handler: Callable[[Message], None]) -> None:
        """Register a handler invoked when a message of *kind* arrives."""
        self._handlers[kind] = handler

    def deliver(self, message: Message) -> None:
        self.inbox.append(message)
        self.observer.observe(message)
        handler = self._handlers.get(message.kind)
        if handler is not None:
            handler(message)

    def drain(self, kind: str | None = None) -> list[Message]:
        """Remove and return inbox messages (optionally of one kind)."""
        if kind is None:
            out, self.inbox = self.inbox, []
            return out
        matched = [m for m in self.inbox if m.kind == kind]
        self.inbox = [m for m in self.inbox if m.kind != kind]
        return matched


@dataclass(order=True)
class _ScheduledDelivery:
    due: float
    order: int
    message: Message = field(compare=False)


class SimNetwork:
    """The event loop: schedule sends, run until quiescent.

    Messages are delivered in timestamp order.  Partitions are symmetric
    sets of node pairs that cannot communicate; sends across a partition
    raise immediately (TCP connection refusal analogue), while probabilistic
    drop models silent loss.
    """

    def __init__(
        self,
        clock: SimClock | None = None,
        rng: DeterministicRNG | None = None,
        latency: LatencyModel | None = None,
        drop_probability: float = 0.0,
    ) -> None:
        self.clock = clock or SimClock()
        self.rng = (rng or DeterministicRNG("simnet")).fork("net")
        self.latency = latency or LatencyModel()
        self.drop_probability = drop_probability
        self.stats = NetworkStats()
        self._nodes: dict[str, Node] = {}
        self._taps: list[Observer] = []
        self._queue: list[_ScheduledDelivery] = []
        self._order = itertools.count()
        self._partitions: set[frozenset[str]] = set()

    # -- topology

    def add_node(self, name: str) -> Node:
        if name in self._nodes:
            raise DeliveryError(f"node {name!r} already exists")
        node = Node(name)
        self._nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        if name not in self._nodes:
            raise DeliveryError(f"unknown node {name!r}")
        return self._nodes[name]

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def add_tap(self, observer: Observer) -> Observer:
        """Attach a passive wiretap that sees *all* traffic."""
        self._taps.append(observer)
        return observer

    # -- partitions

    def partition(self, a: str, b: str) -> None:
        """Cut the link between nodes *a* and *b*."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitions.discard(frozenset((a, b)))

    def is_partitioned(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._partitions

    # -- sending

    def _payload_size(self, payload: Any) -> int:
        try:
            return len(canonical_bytes(payload))
        except TypeError:
            return 256  # opaque object: charge a flat envelope size

    def send(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        exposure: Exposure | None = None,
    ) -> Message:
        """Queue a point-to-point message; returns the message envelope."""
        if recipient not in self._nodes:
            raise DeliveryError(f"unknown recipient {recipient!r}")
        if self.is_partitioned(sender, recipient):
            raise DeliveryError(f"network partition between {sender!r} and {recipient!r}")
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            exposure=exposure or Exposure(),
            size_bytes=self._payload_size(payload),
            sent_at=self.clock.now,
        )
        self.stats.messages_sent += 1
        if self.drop_probability > 0 and self.rng.uniform(0, 1) < self.drop_probability:
            self.stats.messages_dropped += 1
            return message
        due = self.clock.now + self.latency.sample(self.rng)
        heapq.heappush(
            self._queue, _ScheduledDelivery(due=due, order=next(self._order), message=message)
        )
        return message

    def broadcast(
        self,
        sender: str,
        kind: str,
        payload: Any,
        exposure: Exposure | None = None,
        recipients: list[str] | None = None,
    ) -> list[Message]:
        """Send to every node (or an explicit recipient list) except the sender."""
        targets = recipients if recipients is not None else self.nodes()
        return [
            self.send(sender, target, kind, payload, exposure=exposure)
            for target in targets
            if target != sender
        ]

    # -- event loop

    def step(self) -> bool:
        """Deliver the next message; returns False when the queue is empty."""
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self.clock.advance_to(event.due)
        message = event.message
        for tap in self._taps:
            tap.observe(message)
        self.stats.messages_delivered += 1
        self.stats.bytes_transferred += message.size_bytes
        self._nodes[message.recipient].deliver(message)
        return True

    def run(self, max_steps: int = 1_000_000) -> int:
        """Deliver until quiescent; returns the number of deliveries."""
        steps = 0
        while steps < max_steps and self.step():
            steps += 1
        if steps >= max_steps and self._queue:
            raise DeliveryError("network did not quiesce (message storm?)")
        return steps
