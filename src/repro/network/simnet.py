"""Discrete-event network simulator.

The substrate every platform simulation runs on.  Provides:

- registered nodes with inboxes and message handlers,
- point-to-point sends and broadcasts with configurable latency models,
- message loss, network partitions, and scheduled fault plans
  (:class:`repro.faults.FaultPlan`) consulted at both send *and* delivery
  time, so a partition created after ``send()`` still cuts in-flight
  traffic,
- a resilient-delivery layer (:meth:`SimNetwork.send_with_retry`) with
  ack tracking, timeouts, and exponential backoff that surfaces exhausted
  retries as typed :class:`DeliveryTimeout` errors instead of silence,
- **observer taps**: passive principals (a curious orderer, a wiretapping
  admin) that see traffic and whose accumulated knowledge the leakage
  auditor later inspects,
- cost accounting (messages, bytes, simulated time) for the S1-S3
  scalability benchmarks.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.clock import SimClock
from repro.common.errors import DeliveryError, DeliveryTimeout
from repro.common.rng import DeterministicRNG
from repro.common.serialization import canonical_bytes
from repro.faults.plan import FaultPlan
from repro.network.messages import Exposure, Message


@dataclass
class LatencyModel:
    """Per-hop delay: base + uniform jitter, in simulated seconds."""

    base: float = 0.005
    jitter: float = 0.002

    def sample(self, rng: DeterministicRNG) -> float:
        if self.jitter <= 0:
            return self.base
        return self.base + rng.uniform(0.0, self.jitter)


@dataclass
class NetworkStats:
    """Aggregate traffic accounting for benchmarks and chaos tests.

    ``messages_dropped`` is the total; the ``dropped_by_*`` counters
    attribute each drop to its fault class (probabilistic loss, a
    partition that cut the link while the message was in flight, or a
    recipient that crashed before delivery).
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    dropped_by_loss: int = 0
    dropped_by_partition: int = 0
    dropped_by_crash: int = 0
    retries: int = 0
    bytes_transferred: int = 0


@dataclass(frozen=True)
class DeliveryReceipt:
    """Ack-tracking outcome of one resilient send."""

    message: Message
    attempts: int
    delivered: bool
    delivered_at: float | None = None


class Observer:
    """A passive principal accumulating everything it could see.

    Observers model the paper's §3.4 concerns: the ordering service that
    "has visibility of all DLT events", or an infrastructure administrator
    hosting someone else's node.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.seen_identities: set[str] = set()
        self.seen_data_keys: set[str] = set()
        self.seen_code_ids: set[str] = set()
        self.messages_observed: int = 0

    def observe(self, message: Message) -> None:
        self.observe_exposure(message.exposure)

    def observe_exposure(self, exposure: Exposure) -> None:
        """Record knowledge gained from one observed event."""
        self.messages_observed += 1
        self.seen_identities |= exposure.identities
        self.seen_data_keys |= exposure.data_keys
        self.seen_code_ids |= exposure.code_ids

    def knowledge(self) -> dict:
        """Snapshot of accumulated knowledge (for audit reports)."""
        return {
            "identities": sorted(self.seen_identities),
            "data_keys": sorted(self.seen_data_keys),
            "code_ids": sorted(self.seen_code_ids),
            "messages_observed": self.messages_observed,
        }


class Node:
    """A network endpoint with an inbox and optional message handlers.

    Each node is also an :class:`Observer` of its own inbound traffic, so
    "what did this peer learn" falls out of the same accounting as the
    passive taps.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.inbox: list[Message] = []
        self.observer = Observer(name)
        self._handlers: dict[str, Callable[[Message], None]] = {}

    def on(self, kind: str, handler: Callable[[Message], None]) -> None:
        """Register a handler invoked when a message of *kind* arrives."""
        self._handlers[kind] = handler

    def deliver(self, message: Message) -> None:
        self.inbox.append(message)
        self.observer.observe(message)
        handler = self._handlers.get(message.kind)
        if handler is not None:
            handler(message)

    def drain(self, kind: str | None = None) -> list[Message]:
        """Remove and return inbox messages (optionally of one kind)."""
        if kind is None:
            out, self.inbox = self.inbox, []
            return out
        matched = [m for m in self.inbox if m.kind == kind]
        self.inbox = [m for m in self.inbox if m.kind != kind]
        return matched


@dataclass(order=True)
class _ScheduledDelivery:
    due: float
    order: int
    message: Message = field(compare=False)


class SimNetwork:
    """The event loop: schedule sends, run until quiescent.

    Messages are delivered in timestamp order.  Partitions are symmetric
    sets of node pairs that cannot communicate; sends across a partition
    raise immediately (TCP connection refusal analogue), while probabilistic
    drop models silent loss.
    """

    def __init__(
        self,
        clock: SimClock | None = None,
        rng: DeterministicRNG | None = None,
        latency: LatencyModel | None = None,
        drop_probability: float = 0.0,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.clock = clock or SimClock()
        self.rng = (rng or DeterministicRNG("simnet")).fork("net")
        self.latency = latency or LatencyModel()
        self.drop_probability = drop_probability
        self.fault_plan = fault_plan
        self.stats = NetworkStats()
        self._nodes: dict[str, Node] = {}
        self._taps: list[Observer] = []
        self._queue: list[_ScheduledDelivery] = []
        self._order = itertools.count()
        self._partitions: set[frozenset[str]] = set()
        self._delivered_at: dict[int, float] = {}

    # -- topology

    def add_node(self, name: str) -> Node:
        if name in self._nodes:
            raise DeliveryError(f"node {name!r} already exists")
        node = Node(name)
        self._nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        if name not in self._nodes:
            raise DeliveryError(f"unknown node {name!r}")
        return self._nodes[name]

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def add_tap(self, observer: Observer) -> Observer:
        """Attach a passive wiretap that sees *all* traffic."""
        self._taps.append(observer)
        return observer

    # -- partitions

    def partition(self, a: str, b: str) -> None:
        """Cut the link between nodes *a* and *b*."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitions.discard(frozenset((a, b)))

    def is_partitioned(self, a: str, b: str, now: float | None = None) -> bool:
        """Whether the link is cut — static partition or fault-plan window."""
        if frozenset((a, b)) in self._partitions:
            return True
        if self.fault_plan is None:
            return False
        when = self.clock.now if now is None else now
        return self.fault_plan.is_partitioned(a, b, when)

    def is_crashed(self, name: str, now: float | None = None) -> bool:
        """Whether the fault plan has *name* down at *now*."""
        if self.fault_plan is None:
            return False
        when = self.clock.now if now is None else now
        return self.fault_plan.is_crashed(name, when)

    # -- sending

    def _payload_size(self, payload: Any) -> int:
        try:
            return len(canonical_bytes(payload))
        except (TypeError, ValueError):
            # Unserializable object or unsupported value (NaN/Inf):
            # charge a flat opaque-envelope size instead of crashing.
            return 256

    def _check_link(self, sender: str, recipient: str) -> None:
        """Raise the TCP-refusal analogue if the link is unusable now."""
        if recipient not in self._nodes:
            raise DeliveryError(f"unknown recipient {recipient!r}")
        if self.is_partitioned(sender, recipient):
            raise DeliveryError(
                f"network partition between {sender!r} and {recipient!r}"
            )
        for endpoint in (sender, recipient):
            if self.is_crashed(endpoint):
                raise DeliveryError(f"node {endpoint!r} is down")

    def _loss_probability(self, sender: str, recipient: str) -> float:
        """Combined silent-loss probability of the global and link models."""
        link_loss = (
            self.fault_plan.loss_probability(sender, recipient)
            if self.fault_plan is not None
            else 0.0
        )
        return 1.0 - (1.0 - self.drop_probability) * (1.0 - link_loss)

    def send(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        exposure: Exposure | None = None,
    ) -> Message:
        """Queue a point-to-point message; returns the message envelope."""
        self._check_link(sender, recipient)
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            exposure=exposure or Exposure(),
            size_bytes=self._payload_size(payload),
            sent_at=self.clock.now,
        )
        self.stats.messages_sent += 1
        loss = self._loss_probability(sender, recipient)
        if loss > 0 and self.rng.uniform(0, 1) < loss:
            self.stats.messages_dropped += 1
            self.stats.dropped_by_loss += 1
            return message
        delay = self.latency.sample(self.rng)
        if self.fault_plan is not None:
            delay *= self.fault_plan.latency_multiplier(
                sender, recipient, self.clock.now
            )
        due = self.clock.now + delay
        heapq.heappush(
            self._queue, _ScheduledDelivery(due=due, order=next(self._order), message=message)
        )
        return message

    def broadcast(
        self,
        sender: str,
        kind: str,
        payload: Any,
        exposure: Exposure | None = None,
        recipients: list[str] | None = None,
    ) -> list[Message]:
        """Send to every node (or an explicit recipient list) except the sender.

        Atomic: every target is validated (known, reachable, up) before
        anything is queued, so a bad target mid-list cannot leave earlier
        recipients with a partial broadcast.
        """
        targets = [
            target
            for target in (recipients if recipients is not None else self.nodes())
            if target != sender
        ]
        for target in targets:
            self._check_link(sender, target)
        return [
            self.send(sender, target, kind, payload, exposure=exposure)
            for target in targets
        ]

    # -- resilient delivery

    def was_delivered(self, message: Message) -> bool:
        """Ack tracking: whether *message* reached its recipient."""
        return message.message_id in self._delivered_at

    def send_with_retry(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        exposure: Exposure | None = None,
        *,
        timeout: float = 0.25,
        max_attempts: int = 3,
        backoff: float = 2.0,
    ) -> DeliveryReceipt:
        """Send until acknowledged, with timeout and exponential backoff.

        Each attempt sends a fresh copy (same exposure — retransmission
        never widens what an observer can learn, it only repeats it) and
        drives the event loop until either the copy's delivery ack arrives
        or *timeout* simulated seconds elapse.  Transient link failures
        (partition windows, crash windows) are retried; an unknown
        recipient is permanent and raises immediately.  When every attempt
        times out, raises :class:`DeliveryTimeout` — a typed error in
        place of the silent drop the fire-and-forget path models.
        """
        if max_attempts < 1:
            raise DeliveryError("max_attempts must be >= 1")
        if timeout <= 0:
            raise DeliveryError("timeout must be > 0")
        if recipient not in self._nodes:
            raise DeliveryError(f"unknown recipient {recipient!r}")
        wait = timeout
        last_refusal: DeliveryError | None = None
        for attempt in range(1, max_attempts + 1):
            if attempt > 1:
                self.stats.retries += 1
            try:
                message = self.send(sender, recipient, kind, payload, exposure=exposure)
            except DeliveryError as refusal:
                message = None
                last_refusal = refusal
            deadline = self.clock.now + wait
            if message is not None:
                while (
                    self._queue
                    and self._queue[0].due <= deadline
                    and not self.was_delivered(message)
                ):
                    self.step()
                if self.was_delivered(message):
                    return DeliveryReceipt(
                        message=message,
                        attempts=attempt,
                        delivered=True,
                        delivered_at=self._delivered_at[message.message_id],
                    )
            # Wait out the ack timeout before the next attempt.
            self.clock.advance_to(deadline)
            wait *= backoff
        detail = f" (last refusal: {last_refusal})" if last_refusal else ""
        raise DeliveryTimeout(
            f"no acknowledgement from {recipient!r} after "
            f"{max_attempts} attempt(s){detail}"
        )

    # -- event loop

    def step(self) -> bool:
        """Process the next event; returns False when the queue is empty.

        Link and node health are re-checked at delivery time: a partition
        created (or a crash window opened) after ``send()`` drops the
        in-flight message instead of delivering across the cut.
        """
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self.clock.advance_to(event.due)
        message = event.message
        if self.is_partitioned(message.sender, message.recipient, now=event.due):
            self.stats.messages_dropped += 1
            self.stats.dropped_by_partition += 1
            return True
        if self.is_crashed(message.recipient, now=event.due):
            self.stats.messages_dropped += 1
            self.stats.dropped_by_crash += 1
            return True
        for tap in self._taps:
            tap.observe(message)
        self.stats.messages_delivered += 1
        self.stats.bytes_transferred += message.size_bytes
        self._delivered_at[message.message_id] = event.due
        self._nodes[message.recipient].deliver(message)
        return True

    def run(self, max_steps: int = 1_000_000) -> int:
        """Process events until quiescent; returns the number processed."""
        steps = 0
        while steps < max_steps and self.step():
            steps += 1
        if steps >= max_steps and self._queue:
            raise DeliveryError("network did not quiesce (message storm?)")
        return steps

    def run_until(self, deadline: float, max_steps: int = 1_000_000) -> int:
        """Process events due by *deadline*, then advance the clock to it."""
        steps = 0
        while (
            steps < max_steps
            and self._queue
            and self._queue[0].due <= deadline
            and self.step()
        ):
            steps += 1
        if steps >= max_steps and self._queue and self._queue[0].due <= deadline:
            raise DeliveryError("network did not quiesce (message storm?)")
        self.clock.advance_to(deadline)
        return steps
