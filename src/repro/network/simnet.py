"""Discrete-event network simulator.

The substrate every platform simulation runs on.  Provides:

- registered nodes with inboxes and message handlers,
- point-to-point sends and broadcasts with configurable latency models,
- message loss, network partitions, and scheduled fault plans
  (:class:`repro.faults.FaultPlan`) consulted at both send *and* delivery
  time, so a partition created after ``send()`` still cuts in-flight
  traffic,
- a resilient-delivery layer (:meth:`SimNetwork.send_with_retry`) with
  ack tracking, timeouts, and exponential backoff that surfaces exhausted
  retries as typed :class:`DeliveryTimeout` errors instead of silence,
- **observer taps**: passive principals (a curious orderer, a wiretapping
  admin) that see traffic and whose accumulated knowledge the leakage
  auditor later inspects,
- cost accounting (messages, bytes, simulated time) for the S1-S3
  scalability benchmarks, kept on an instance-scoped
  :class:`~repro.telemetry.metrics.MetricsRegistry` (reset between
  scenarios with :meth:`SimNetwork.reset_stats`),
- telemetry: sends stamp the sender's trace context onto the message
  envelope and deliveries record transit spans under it, so one trace
  follows a transaction across every principal it touches; drops and
  retries land in the privacy-aware event log.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.clock import SimClock
from repro.common.errors import DeliveryError, DeliveryTimeout
from repro.common.rng import DeterministicRNG
from repro.common.serialization import canonical_bytes
from repro.faults.plan import FaultPlan
from repro.network.messages import Exposure, Message
from repro.telemetry import Telemetry
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import TraceContext


@dataclass
class LatencyModel:
    """Per-hop delay: base + uniform jitter, in simulated seconds."""

    base: float = 0.005
    jitter: float = 0.002

    def sample(self, rng: DeterministicRNG) -> float:
        if self.jitter <= 0:
            return self.base
        return self.base + rng.uniform(0.0, self.jitter)


class NetworkStats:
    """Aggregate traffic accounting for benchmarks and chaos tests.

    ``messages_dropped`` is the total; the ``dropped_by_*`` counters
    attribute each drop to its fault class (probabilistic loss, a
    partition that cut the link while the message was in flight, or a
    recipient that crashed before delivery).

    The numbers live on the owning network's telemetry
    :class:`~repro.telemetry.metrics.MetricsRegistry`; this class is a
    read-only view kept for API compatibility (``net.stats.retries``
    etc.), scoped to one :class:`SimNetwork` instance and zeroed by
    :meth:`SimNetwork.reset_stats`.
    """

    FIELDS = {
        "messages_sent": "net.messages_sent",
        "messages_delivered": "net.messages_delivered",
        "messages_dropped": "net.messages_dropped",
        "dropped_by_loss": "net.dropped.loss",
        "dropped_by_partition": "net.dropped.partition",
        "dropped_by_crash": "net.dropped.crash",
        "retries": "net.retries",
        "deduplicated": "net.deduplicated",
        "bytes_transferred": "net.bytes_transferred",
    }

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self._metrics = metrics or MetricsRegistry()

    def __getattr__(self, name: str) -> int:
        try:
            metric = self.FIELDS[name]
        except KeyError:
            raise AttributeError(name) from None
        return int(self._metrics.counter(metric).value)

    def as_dict(self) -> dict[str, int]:
        return {field_name: getattr(self, field_name) for field_name in self.FIELDS}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NetworkStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"NetworkStats({inner})"


@dataclass(frozen=True)
class DeliveryReceipt:
    """Ack-tracking outcome of one resilient send."""

    message: Message
    attempts: int
    delivered: bool
    delivered_at: float | None = None


class Observer:
    """A passive principal accumulating everything it could see.

    Observers model the paper's §3.4 concerns: the ordering service that
    "has visibility of all DLT events", or an infrastructure administrator
    hosting someone else's node.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.seen_identities: set[str] = set()
        self.seen_data_keys: set[str] = set()
        self.seen_code_ids: set[str] = set()
        self.messages_observed: int = 0

    def observe(self, message: Message) -> None:
        self.observe_exposure(message.exposure)

    def observe_exposure(self, exposure: Exposure) -> None:
        """Record knowledge gained from one observed event."""
        self.messages_observed += 1
        self.seen_identities |= exposure.identities
        self.seen_data_keys |= exposure.data_keys
        self.seen_code_ids |= exposure.code_ids

    def knowledge(self) -> dict:
        """Snapshot of accumulated knowledge (for audit reports)."""
        return {
            "identities": sorted(self.seen_identities),
            "data_keys": sorted(self.seen_data_keys),
            "code_ids": sorted(self.seen_code_ids),
            "messages_observed": self.messages_observed,
        }


class Node:
    """A network endpoint with an inbox and optional message handlers.

    Each node is also an :class:`Observer` of its own inbound traffic, so
    "what did this peer learn" falls out of the same accounting as the
    passive taps.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.inbox: list[Message] = []
        self.observer = Observer(name)
        self.seen_dedup_keys: set[str] = set()
        self._handlers: dict[str, Callable[[Message], None]] = {}

    def on(self, kind: str, handler: Callable[[Message], None]) -> None:
        """Register a handler invoked when a message of *kind* arrives."""
        self._handlers[kind] = handler

    def has_applied(self, dedup_key: str) -> bool:
        """Whether a message carrying *dedup_key* was already applied.

        The set is volatile — a crash wipes it along with the inbox —
        which is exactly why recovery re-applies from a durable
        checkpoint instead of trusting in-memory dedup state.
        """
        return dedup_key in self.seen_dedup_keys

    def deliver(self, message: Message) -> None:
        self.inbox.append(message)
        self.observer.observe(message)
        handler = self._handlers.get(message.kind)
        if handler is not None:
            handler(message)

    def drain(self, kind: str | None = None) -> list[Message]:
        """Remove and return inbox messages (optionally of one kind)."""
        if kind is None:
            out, self.inbox = self.inbox, []
            return out
        matched = [m for m in self.inbox if m.kind == kind]
        self.inbox = [m for m in self.inbox if m.kind != kind]
        return matched


@dataclass(order=True)
class _ScheduledDelivery:
    due: float
    order: int
    message: Message = field(compare=False)


class SimNetwork:
    """The event loop: schedule sends, run until quiescent.

    Messages are delivered in timestamp order.  Partitions are symmetric
    sets of node pairs that cannot communicate; sends across a partition
    raise immediately (TCP connection refusal analogue), while probabilistic
    drop models silent loss.
    """

    def __init__(
        self,
        clock: SimClock | None = None,
        rng: DeterministicRNG | None = None,
        latency: LatencyModel | None = None,
        drop_probability: float = 0.0,
        fault_plan: FaultPlan | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.clock = clock or SimClock()
        self.rng = (rng or DeterministicRNG("simnet")).fork("net")
        self.latency = latency or LatencyModel()
        self.drop_probability = drop_probability
        self.fault_plan = fault_plan
        self.telemetry = telemetry or Telemetry(clock=self.clock)
        self.stats = NetworkStats(self.telemetry.metrics)
        self._nodes: dict[str, Node] = {}
        self._taps: list[Observer] = []
        self._queue: list[_ScheduledDelivery] = []
        self._order = itertools.count()
        self._partitions: set[frozenset[str]] = set()
        self._delivered_at: dict[int, float] = {}
        self._down: set[str] = set()
        self._dedup_sequence = itertools.count(1)

    # -- topology

    def add_node(self, name: str) -> Node:
        if name in self._nodes:
            raise DeliveryError(f"node {name!r} already exists")
        node = Node(name)
        self._nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        if name not in self._nodes:
            raise DeliveryError(f"unknown node {name!r}")
        return self._nodes[name]

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def add_tap(self, observer: Observer) -> Observer:
        """Attach a passive wiretap that sees *all* traffic."""
        self._taps.append(observer)
        return observer

    # -- stats

    def reset_stats(self) -> None:
        """Zero the traffic counters (``net.*`` metrics only).

        Stats are already instance-scoped; this additionally lets one
        long-lived network run back-to-back scenarios without counts
        accumulating across them.  Spans and events are left alone —
        they carry their own timestamps and are cheap to slice.
        """
        self.telemetry.metrics.reset(prefix="net.")

    def _count(self, metric: str, amount: float = 1.0) -> None:
        self.telemetry.metrics.counter(metric).inc(amount)

    # -- partitions

    def partition(self, a: str, b: str) -> None:
        """Cut the link between nodes *a* and *b*."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitions.discard(frozenset((a, b)))

    def is_partitioned(self, a: str, b: str, now: float | None = None) -> bool:
        """Whether the link is cut — static partition or fault-plan window."""
        if frozenset((a, b)) in self._partitions:
            return True
        if self.fault_plan is None:
            return False
        when = self.clock.now if now is None else now
        return self.fault_plan.is_partitioned(a, b, when)

    def is_crashed(self, name: str, now: float | None = None) -> bool:
        """Whether *name* is down — manually crashed or in a fault window."""
        if name in self._down:
            return True
        if self.fault_plan is None:
            return False
        when = self.clock.now if now is None else now
        return self.fault_plan.is_crashed(name, when)

    # -- manual crash / recovery

    def crash_node(self, name: str) -> None:
        """Take *name* down until :meth:`recover_node`.

        Unlike a fault-plan crash window this is explicit and open-ended:
        the recovery subsystem uses it to model a node that stays dead
        until someone brings it back.  Volatile per-node state — the
        inbox and the dedup-key set — is lost, exactly like process
        memory on a real crash.
        """
        node = self.node(name)
        if name in self._down:
            return
        self._down.add(name)
        node.inbox.clear()
        node.seen_dedup_keys.clear()
        self.telemetry.events.emit("net.node_crashed", node=name)

    def recover_node(self, name: str) -> bool:
        """Bring *name* back up; returns whether it was actually down.

        Only clears the manual down flag — a fault-plan crash window
        still applies until it closes (the plan is the environment, not
        the operator).
        """
        self.node(name)
        if name not in self._down:
            return False
        self._down.discard(name)
        self.telemetry.events.emit("net.node_recovered", node=name)
        return True

    # -- sending

    def _payload_size(self, payload: Any) -> int:
        try:
            return len(canonical_bytes(payload))
        except (TypeError, ValueError):
            # Unserializable object or unsupported value (NaN/Inf):
            # charge a flat opaque-envelope size instead of crashing.
            return 256

    def _check_link(self, sender: str, recipient: str) -> None:
        """Raise the TCP-refusal analogue if the link is unusable now."""
        if recipient not in self._nodes:
            raise DeliveryError(f"unknown recipient {recipient!r}")
        if self.is_partitioned(sender, recipient):
            raise DeliveryError(
                f"network partition between {sender!r} and {recipient!r}"
            )
        for endpoint in (sender, recipient):
            if self.is_crashed(endpoint):
                raise DeliveryError(f"node {endpoint!r} is down")

    def _loss_probability(self, sender: str, recipient: str) -> float:
        """Combined silent-loss probability of the global and link models."""
        link_loss = (
            self.fault_plan.loss_probability(sender, recipient)
            if self.fault_plan is not None
            else 0.0
        )
        return 1.0 - (1.0 - self.drop_probability) * (1.0 - link_loss)

    def _record_drop(self, message: Message, cause: str, at: float) -> None:
        """Account one dropped message: counters, event log, trace span."""
        self._count("net.messages_dropped")
        self._count(f"net.dropped.{cause}")
        self.telemetry.events.emit(
            "net.drop",
            time=at,
            cause=cause,
            kind=message.kind,
            sender=message.sender,
            recipient=message.recipient,
            size_bytes=message.size_bytes,
        )
        context = TraceContext.from_tuple(message.trace)
        if context is not None:
            self.telemetry.tracer.record_span(
                "net.transit",
                start=message.sent_at,
                end=at,
                parent=context,
                status="error",
                error=f"dropped:{cause}",
                kind=message.kind,
                sender=message.sender,
                recipient=message.recipient,
            )

    def send(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        exposure: Exposure | None = None,
        dedup_key: str | None = None,
    ) -> Message:
        """Queue a point-to-point message; returns the message envelope.

        The sender's current trace context (if a span is active on this
        network's tracer) is stamped onto the envelope so the delivery
        side can attach its transit span to the same trace.  A
        *dedup_key* makes the message idempotent: the recipient applies
        at most one message per key (duplicates are acked but dropped
        before handlers run).
        """
        self._check_link(sender, recipient)
        context = self.telemetry.tracer.current_context()
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            exposure=exposure or Exposure(),
            size_bytes=self._payload_size(payload),
            sent_at=self.clock.now,
            trace=context.as_tuple() if context is not None else None,
            dedup_key=dedup_key,
        )
        self._count("net.messages_sent")
        self.telemetry.metrics.counter("net.sent_by_kind", kind=kind).inc()
        loss = self._loss_probability(sender, recipient)
        if loss > 0 and self.rng.uniform(0, 1) < loss:
            self._record_drop(message, "loss", at=self.clock.now)
            return message
        delay = self.latency.sample(self.rng)
        if self.fault_plan is not None:
            delay *= self.fault_plan.latency_multiplier(
                sender, recipient, self.clock.now
            )
        due = self.clock.now + delay
        heapq.heappush(
            self._queue, _ScheduledDelivery(due=due, order=next(self._order), message=message)
        )
        return message

    def broadcast(
        self,
        sender: str,
        kind: str,
        payload: Any,
        exposure: Exposure | None = None,
        recipients: list[str] | None = None,
    ) -> list[Message]:
        """Send to every node (or an explicit recipient list) except the sender.

        Atomic: every target is validated (known, reachable, up) before
        anything is queued, so a bad target mid-list cannot leave earlier
        recipients with a partial broadcast.
        """
        targets = [
            target
            for target in (recipients if recipients is not None else self.nodes())
            if target != sender
        ]
        for target in targets:
            self._check_link(sender, target)
        return [
            self.send(sender, target, kind, payload, exposure=exposure)
            for target in targets
        ]

    # -- resilient delivery

    def was_delivered(self, message: Message) -> bool:
        """Ack tracking: whether *message* reached its recipient."""
        return message.message_id in self._delivered_at

    def send_with_retry(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        exposure: Exposure | None = None,
        *,
        timeout: float = 0.25,
        max_attempts: int = 3,
        backoff: float = 2.0,
        dedup_key: str | None = None,
    ) -> DeliveryReceipt:
        """Send until acknowledged, with timeout and exponential backoff.

        Each attempt sends a fresh copy (same exposure — retransmission
        never widens what an observer can learn, it only repeats it) and
        drives the event loop until either the copy's delivery ack arrives
        or *timeout* simulated seconds elapse.  Transient link failures
        (partition windows, crash windows) are retried; an unknown
        recipient is permanent and raises immediately.  When every attempt
        times out, raises :class:`DeliveryTimeout` — a typed error in
        place of the silent drop the fire-and-forget path models.

        Every attempt carries the same dedup key (caller-provided or
        allocated per logical exchange), so a slow first copy arriving
        after a retransmission is applied at most once.  The ack check
        spans *all* attempts: any copy landing acknowledges the exchange.

        The whole exchange runs inside one span: every retry lands as a
        span event, the final attempt count and outcome are attributes,
        and an exhausted send leaves the span in error status with the
        ``DeliveryTimeout`` recorded — which is how traces under fault
        plans stay honest about what the substrate actually did.
        """
        if max_attempts < 1:
            raise DeliveryError("max_attempts must be >= 1")
        if timeout <= 0:
            raise DeliveryError("timeout must be > 0")
        if recipient not in self._nodes:
            raise DeliveryError(f"unknown recipient {recipient!r}")
        if dedup_key is None:
            dedup_key = f"swr:{next(self._dedup_sequence)}"
        tracer = self.telemetry.tracer
        with tracer.span(
            "net.send_with_retry", kind=kind, sender=sender, recipient=recipient
        ) as span:
            wait = timeout
            last_refusal: DeliveryError | None = None
            copies: list[Message] = []

            def acked() -> Message | None:
                for copy in copies:
                    if copy.message_id in self._delivered_at:
                        return copy
                return None

            for attempt in range(1, max_attempts + 1):
                if attempt > 1:
                    self._count("net.retries")
                    tracer.add_event(span, "retry", attempt=attempt)
                    self.telemetry.events.emit(
                        "net.retry",
                        kind=kind,
                        sender=sender,
                        recipient=recipient,
                        attempt=attempt,
                    )
                try:
                    copies.append(
                        self.send(
                            sender,
                            recipient,
                            kind,
                            payload,
                            exposure=exposure,
                            dedup_key=dedup_key,
                        )
                    )
                except DeliveryError as refusal:
                    last_refusal = refusal
                    tracer.add_event(span, "refused", attempt=attempt)
                deadline = self.clock.now + wait
                if copies:
                    while (
                        self._queue
                        and self._queue[0].due <= deadline
                        and acked() is None
                    ):
                        self.step()
                    delivered = acked()
                    if delivered is not None:
                        tracer.set_attribute(span, "attempts", attempt)
                        tracer.set_attribute(span, "outcome", "delivered")
                        return DeliveryReceipt(
                            message=delivered,
                            attempts=attempt,
                            delivered=True,
                            delivered_at=self._delivered_at[delivered.message_id],
                        )
                # Wait out the ack timeout before the next attempt.
                self.clock.advance_to(deadline)
                wait *= backoff
            tracer.set_attribute(span, "attempts", max_attempts)
            tracer.set_attribute(span, "outcome", "DeliveryTimeout")
            detail = f" (last refusal: {last_refusal})" if last_refusal else ""
            raise DeliveryTimeout(
                f"no acknowledgement from {recipient!r} after "
                f"{max_attempts} attempt(s){detail}"
            )

    # -- event loop

    def step(self) -> bool:
        """Process the next event; returns False when the queue is empty.

        Link and node health are re-checked at delivery time: a partition
        created (or a crash window opened) after ``send()`` drops the
        in-flight message instead of delivering across the cut.
        """
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self.clock.advance_to(event.due)
        message = event.message
        if self.is_partitioned(message.sender, message.recipient, now=event.due):
            self._record_drop(message, "partition", at=event.due)
            return True
        if self.is_crashed(message.recipient, now=event.due):
            self._record_drop(message, "crash", at=event.due)
            return True
        for tap in self._taps:
            tap.observe(message)
        self._count("net.messages_delivered")
        self._count("net.bytes_transferred", message.size_bytes)
        self.telemetry.metrics.histogram("net.delivery_latency").observe(
            event.due - message.sent_at
        )
        context = TraceContext.from_tuple(message.trace)
        if context is not None:
            self.telemetry.tracer.record_span(
                "net.transit",
                start=message.sent_at,
                end=event.due,
                parent=context,
                kind=message.kind,
                sender=message.sender,
                recipient=message.recipient,
                size_bytes=message.size_bytes,
            )
        self._delivered_at[message.message_id] = event.due
        node = self._nodes[message.recipient]
        if message.dedup_key is not None:
            if message.dedup_key in node.seen_dedup_keys:
                # Acked above (the wire did deliver it) but applied zero
                # times past the first copy: retransmissions and replayed
                # catch-up items are idempotent.
                self._count("net.deduplicated")
                self.telemetry.events.emit(
                    "net.dedup",
                    time=event.due,
                    kind=message.kind,
                    sender=message.sender,
                    recipient=message.recipient,
                )
                return True
            node.seen_dedup_keys.add(message.dedup_key)
        node.deliver(message)
        return True

    def run(self, max_steps: int = 1_000_000) -> int:
        """Process events until quiescent; returns the number processed."""
        steps = 0
        while steps < max_steps and self.step():
            steps += 1
        if steps >= max_steps and self._queue:
            raise DeliveryError("network did not quiesce (message storm?)")
        return steps

    def run_until(self, deadline: float, max_steps: int = 1_000_000) -> int:
        """Process events due by *deadline*, then advance the clock to it."""
        steps = 0
        while (
            steps < max_steps
            and self._queue
            and self._queue[0].due <= deadline
            and self.step()
        ):
            steps += 1
        if steps >= max_steps and self._queue and self._queue[0].due <= deadline:
            raise DeliveryError("network did not quiesce (message storm?)")
        self.clock.advance_to(deadline)
        return steps
