"""Discrete-event simulated network with leakage-audit observer taps."""

from repro.network.messages import Exposure, Message
from repro.network.simnet import (
    LatencyModel,
    NetworkStats,
    Node,
    Observer,
    SimNetwork,
)

__all__ = [
    "Exposure",
    "Message",
    "LatencyModel",
    "NetworkStats",
    "Node",
    "Observer",
    "SimNetwork",
]
