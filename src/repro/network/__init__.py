"""Discrete-event simulated network with leakage-audit observer taps."""

from repro.faults.plan import FaultPlan
from repro.network.messages import Exposure, Message
from repro.network.simnet import (
    DeliveryReceipt,
    LatencyModel,
    NetworkStats,
    Node,
    Observer,
    SimNetwork,
)

__all__ = [
    "Exposure",
    "Message",
    "DeliveryReceipt",
    "FaultPlan",
    "LatencyModel",
    "NetworkStats",
    "Node",
    "Observer",
    "SimNetwork",
]
