"""KYC consortium: compose four mechanisms into one workflow.

A consortium of banks shares the *fact* of customer due diligence without
sharing customer files — a canonical enterprise-DLT use case combining:

- **Off-chain peer data** (Section 2.2): the onboarding bank keeps the
  customer's PII in a private data collection; only hash anchors reach
  the consortium channel.
- **ZKP of identity / anonymous credentials** (Section 2.1): the
  customer proves "KYC-verified by a consortium issuer" to any other
  bank with an unlinkable presentation — the relying bank learns the
  attribute, not the identity or the onboarding bank's file.
- **Revocation**: when diligence lapses, the issuer stops minting
  presentations; the workflow surfaces the residual (already-issued
  tokens stay valid until expiry — the paper-faithful trade-off).
- **Public anchors** (Section 2.2): the consortium periodically anchors
  its channel transactions to a shared content-free ledger so a
  regulator can verify that attestations existed at a point in time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import MembershipError
from repro.crypto.anoncred import (
    CredentialHolder,
    CredentialIssuer,
    Presentation,
    verify_presentation,
)
from repro.execution.contracts import SmartContract
from repro.ledger.anchors import AnchorLedger, ChannelAnchorer, ExistenceProof
from repro.platforms.fabric import FabricNetwork


@dataclass
class OnboardingRecord:
    """What the onboarding bank holds (off-chain) and publishes (hash)."""

    customer_id: str
    onboarding_bank: str
    pii_anchor: str
    tx_id: str


@dataclass
class KycConsortium:
    """The consortium workflow over a Fabric channel."""

    banks: tuple[str, ...]
    network: FabricNetwork = field(default_factory=lambda: FabricNetwork(seed="kyc"))
    channel_name: str = "kyc-channel"
    contract_id: str = "kyc-contract"
    _initialized: bool = False

    def setup(self) -> None:
        if len(self.banks) < 2:
            raise MembershipError("a consortium needs at least two banks")
        for bank in self.banks:
            self.network.onboard(bank)
        channel = self.network.create_channel(self.channel_name, list(self.banks))
        channel.create_collection("kyc-files", list(self.banks))

        def attest(view, args):
            view.put(f"kyc/{args['customer']}", {
                "onboarded_by": args["bank"], "status": "verified",
            })
            return "verified"

        self.network.deploy_chaincode(
            self.channel_name,
            SmartContract(self.contract_id, 1, "python-chaincode",
                          {"attest": attest}),
            list(self.banks),
        )
        self.issuer = CredentialIssuer(
            "kyc-issuer", scheme=self.network.scheme,
            rng=self.network.rng.fork("kyc-issuer"),
        )
        self.public_anchors = AnchorLedger()
        self.anchorer = ChannelAnchorer(self.channel_name, self.public_anchors)
        self._holders: dict[str, CredentialHolder] = {}
        self._initialized = True

    def _require_setup(self) -> None:
        if not self._initialized:
            raise RuntimeError("call setup() first")

    # -- onboarding at one bank

    def onboard_customer(
        self, bank: str, customer_id: str, pii: dict
    ) -> OnboardingRecord:
        """Full diligence at *bank*: PII off-chain, attestation on-chain,
        credential enrolment at the consortium issuer."""
        self._require_setup()
        result = self.network.invoke(
            self.channel_name, bank, self.contract_id, "attest",
            {"customer": customer_id, "bank": bank},
            collection_writes={"kyc-files": {f"file/{customer_id}": pii}},
        )
        self.issuer.enroll(customer_id, {"kyc": "verified"})
        self._holders[customer_id] = CredentialHolder(
            customer_id, self.issuer,
            rng=self.network.rng.fork("holder:" + customer_id),
        )
        return OnboardingRecord(
            customer_id=customer_id,
            onboarding_bank=bank,
            pii_anchor=result.tx.private_hashes[f"kyc-files/file/{customer_id}"],
            tx_id=result.tx.tx_id,
        )

    # -- relying on the attestation elsewhere

    def present_kyc(self, customer_id: str) -> Presentation:
        """The customer obtains a fresh unlinkable 'kyc: verified' token."""
        self._require_setup()
        if customer_id not in self._holders:
            raise MembershipError(f"{customer_id!r} was never onboarded")
        return self._holders[customer_id].obtain_presentation({"kyc": "verified"})

    def relying_bank_accepts(self, presentation: Presentation) -> bool:
        """Any bank verifies the token against the issuer's public key —
        learning only the disclosed attribute."""
        self._require_setup()
        return verify_presentation(self.issuer, presentation)

    # -- lifecycle

    def revoke_customer(self, customer_id: str) -> None:
        """Diligence lapsed: no further presentations can be minted."""
        self._require_setup()
        self.issuer.revoke(customer_id)

    def erase_customer_file(self, customer_id: str, reason: str = "gdpr") -> None:
        """GDPR erasure of the off-chain file; attestations remain."""
        self._require_setup()
        collection = self.network.channel(self.channel_name).collection("kyc-files")
        collection.purge(f"file/{customer_id}", reason=reason,
                         now=self.network.clock.now)

    # -- regulator view

    def anchor_to_public_ledger(self):
        """Publish the channel's transaction hashes (content-free)."""
        self._require_setup()
        transactions = self.network.channel(self.channel_name).chain.transactions()
        return self.anchorer.anchor_transactions(
            transactions, now=self.network.clock.now
        )

    def regulator_proof(self, record: OnboardingRecord) -> ExistenceProof:
        """Evidence for a regulator that the attestation existed."""
        self._require_setup()
        channel_txs = self.network.channel(self.channel_name).chain.transactions()
        tx = next(t for t in channel_txs if t.tx_id == record.tx_id)
        return self.anchorer.prove_existence(tx)

    def regulator_verifies(self, proof: ExistenceProof) -> bool:
        """Anyone holding only the public ledger can check the proof."""
        return self.public_anchors.verify_existence(proof)
