"""Oracle attestation with Merkle tear-offs on Corda.

Section 5: "A common scenario for this is when an oracle is needed to
attest to a certain piece of data in a transaction, but the transaction
participants do not want all the components of the transaction visible to
the oracle."

The workflow: two parties agree an FX trade whose rate must be attested by
an oracle.  The oracle receives a filtered transaction exposing only the
rate command — the notional and counterparty details stay torn off — and
its signature over the Merkle root is valid for the complete transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.platforms.corda import (
    Command,
    ComponentGroup,
    ContractState,
    CordaNetwork,
    FlowResult,
    Oracle,
)


@dataclass
class AttestedTrade:
    """The finalized trade plus what the oracle could and could not see."""

    flow: FlowResult
    oracle_signature_valid: bool
    oracle_saw_notional: bool
    disclosure_ratio: float


@dataclass
class OracleTradeWorkflow:
    """FX trade between two parties with a rate oracle."""

    network: CordaNetwork = field(default_factory=lambda: CordaNetwork(seed="oracle"))
    rates: dict[str, float] = field(default_factory=lambda: {"EUR/USD": 1.0842})
    _initialized: bool = False

    PARTIES = ("AlphaBank", "BetaFund")
    ORACLE_NAME = "fx-oracle"
    CONTRACT_ID = "fx-trade"

    def setup(self) -> None:
        for org in self.PARTIES:
            self.network.onboard(org)
        self.oracle = Oracle(self.ORACLE_NAME, self.network.scheme, self.rates)

        def verify(wire):
            for state in wire.outputs:
                if state.contract_id == self.CONTRACT_ID:
                    if state.data.get("notional", 0) <= 0:
                        raise ValidationError("notional must be positive")

        self.network.register_contract(self.CONTRACT_ID, verify, language="kotlin")
        self._initialized = True

    def execute_trade(
        self, pair: str, rate: float, notional: int
    ) -> AttestedTrade:
        """Build, attest (torn off), sign, notarise, and record the trade."""
        if not self._initialized:
            raise RuntimeError("call setup() first")
        alpha, beta = self.PARTIES
        state = ContractState(
            contract_id=self.CONTRACT_ID,
            participants=self.PARTIES,
            data={"pair": pair, "rate": rate, "notional": notional},
        )
        wire = self.network.build_transaction(
            inputs=[],
            outputs=[state],
            commands=[
                Command(name="Trade", signers=self.PARTIES),
                Command(
                    name="RateAttestation",
                    signers=(self.ORACLE_NAME,),
                    payload={"fact": pair, "value": rate},
                ),
            ],
        )
        # Tear off everything except the rate command (and the notary).
        filtered = wire.filtered([ComponentGroup.COMMANDS, ComponentGroup.NOTARY])
        attestation = self.oracle.attest(filtered, pair)
        oracle_saw_notional = "notional" in {
            key
            for component in filtered.visible_components()
            if isinstance(component, dict) and component.get("group") == "outputs"
            for key in component.get("data", {})
        }
        flow = self.network.run_flow(
            alpha, wire,
            extra_signatures={self.ORACLE_NAME: attestation.signature},
        )
        signature_valid = self.network.scheme.verify(
            self.oracle.key.public, wire.signing_payload(), attestation.signature
        )
        return AttestedTrade(
            flow=flow,
            oracle_signature_valid=signature_valid,
            oracle_saw_notional=oracle_saw_notional,
            disclosure_ratio=filtered.tear_off.disclosure_ratio(),
        )
