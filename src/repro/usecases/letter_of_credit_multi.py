"""The Section 4 letter of credit on Corda and Quorum.

The Fabric execution lives in :mod:`repro.usecases.letter_of_credit`;
these variants run the same business lifecycle on the other two
platforms, each the way its architecture (and its Table 1 column)
dictates:

- **Corda**: the segregated ledger is per-transaction (p2p flows among
  buyer, seller, issuing bank); PII lives in an application-managed
  external store with a hash anchor in the state — the '*' path, since
  Corda has no native PDC.
- **Quorum**: LoC states move through private transactions among the
  three parties; but the design's deletable-PII class has *no* faithful
  home — deleting a private payload breaks state replay (Table 1: '-').
  The workflow therefore refuses to place PII on the platform and
  reports the mismatch, which is exactly the answer the design guide's
  platform scoring gives (`score_platforms` ranks Quorum last for this
  use case).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import PlatformError
from repro.offchain.stores import Hosting, OffChainStore
from repro.platforms.corda import (
    Command,
    ContractState,
    CordaNetwork,
    StateRef,
)
from repro.platforms.quorum import QuorumNetwork
from repro.execution.contracts import SmartContract

PARTIES = ("BuyerCo", "SellerCo", "IssuingBank")
TRANSITIONS = {"applied": "issued", "issued": "shipped", "shipped": "paid"}


@dataclass
class CordaLetterOfCredit:
    """LoC lifecycle as consumed/produced states on p2p flows."""

    network: CordaNetwork = field(
        default_factory=lambda: CordaNetwork(seed="loc-corda")
    )
    _initialized: bool = False

    def setup(self, extra_network_members: tuple[str, ...] = ()) -> None:
        for org in PARTIES + tuple(extra_network_members):
            self.network.onboard(org)

        def verify(wire):
            for state in wire.outputs:
                if state.contract_id == "loc" and state.data.get("amount", 0) <= 0:
                    raise PlatformError("letter amount must be positive")

        self.network.register_contract("loc", verify, language="kotlin")
        self.pii_store = OffChainStore(
            "loc-kyc", hosting=Hosting.EXTERNAL, authorized=set(PARTIES)
        )
        self._tips: dict[str, StateRef] = {}
        self._initialized = True

    def _require_setup(self) -> None:
        if not self._initialized:
            raise RuntimeError("call setup() first")

    def apply_for_credit(self, loc_id: str, amount: int, buyer_passport: str):
        """Issue the initial state; PII goes to the external store."""
        self._require_setup()
        anchor = self.pii_store.put(
            f"passport/{loc_id}", {"number": buyer_passport},
            now=self.network.clock.now,
        )
        state = ContractState(
            contract_id="loc", participants=PARTIES,
            data={"loc_id": loc_id, "amount": amount, "status": "applied",
                  "kyc_anchor": anchor},
        )
        wire = self.network.build_transaction(
            inputs=[], outputs=[state],
            commands=[Command(name="Apply", signers=PARTIES)],
        )
        result = self.network.run_flow("BuyerCo", wire)
        self._tips[loc_id] = result.output_refs[0]
        return result

    def advance(self, actor: str, loc_id: str) -> str:
        """Consume the current state, produce the next-status state."""
        self._require_setup()
        ref = self._tips[loc_id]
        current = self.network.vault(actor).state_at(ref)
        status = current.data["status"]
        if status not in TRANSITIONS:
            raise PlatformError(f"letter of credit already {status!r}")
        next_state = ContractState(
            contract_id="loc", participants=PARTIES,
            data={**current.data, "status": TRANSITIONS[status]},
        )
        wire = self.network.build_transaction(
            inputs=[ref], outputs=[next_state],
            commands=[Command(name="Advance", signers=PARTIES)],
        )
        result = self.network.run_flow(actor, wire)
        self._tips[loc_id] = result.output_refs[0]
        return TRANSITIONS[status]

    # -- crash recovery passthroughs

    def checkpoint(self, org: str):
        return self.network.checkpoint_node(org)

    def crash(self, org: str) -> None:
        self.network.crash(org)

    def recover(self, org: str):
        return self.network.recover(org)

    def run_full_lifecycle(self, loc_id: str = "LC-C-001") -> str:
        self.apply_for_credit(loc_id, amount=250_000, buyer_passport="P-C-1")
        self.advance("IssuingBank", loc_id)
        self.advance("SellerCo", loc_id)
        return self.advance("IssuingBank", loc_id)

    def status_of(self, loc_id: str, viewer: str) -> str:
        return self.network.vault(viewer).state_at(self._tips[loc_id]).data["status"]

    def erase_pii(self, loc_id: str) -> None:
        """Deletable because the store is application-managed ('*')."""
        self.pii_store.delete(
            f"passport/{loc_id}", reason="gdpr", now=self.network.clock.now
        )

    def pii_is_erased(self, loc_id: str) -> bool:
        return self.pii_store.is_deleted(f"passport/{loc_id}")


@dataclass
class QuorumLetterOfCredit:
    """LoC lifecycle over private transactions — with the PII mismatch."""

    network: QuorumNetwork = field(
        default_factory=lambda: QuorumNetwork(seed="loc-quorum")
    )
    _initialized: bool = False

    def setup(self, extra_network_members: tuple[str, ...] = ()) -> None:
        for org in PARTIES + tuple(extra_network_members):
            self.network.onboard(org)

        def apply_loc(view, args):
            view.put(f"loc/{args['loc_id']}", {
                "loc_id": args["loc_id"], "amount": args["amount"],
                "status": "applied",
            })
            return "applied"

        def advance(view, args):
            key = f"loc/{args['loc_id']}"
            loc = view.get(key)
            status = TRANSITIONS[loc["status"]]
            view.put(key, {**loc, "status": status})
            return status

        contract = SmartContract(
            "loc-evm", 1, "evm-solidity",
            {"apply": apply_loc, "advance": advance},
        )
        self.network.deploy_contract(
            "IssuingBank", contract, private_for=list(PARTIES)
        )
        self._initialized = True

    def _require_setup(self) -> None:
        if not self._initialized:
            raise RuntimeError("call setup() first")

    def apply_for_credit(self, loc_id: str, amount: int):
        """No PII parameter: see :meth:`store_pii`."""
        self._require_setup()
        return self.network.send_private_transaction(
            "BuyerCo", "loc-evm", "apply",
            {"loc_id": loc_id, "amount": amount},
            private_for=[p for p in PARTIES if p != "BuyerCo"],
        )

    def advance(self, actor: str, loc_id: str):
        self._require_setup()
        return self.network.send_private_transaction(
            actor, "loc-evm", "advance", {"loc_id": loc_id},
            private_for=[p for p in PARTIES if p != actor],
        )

    # -- crash recovery passthroughs

    def checkpoint(self, org: str):
        return self.network.checkpoint_node(org)

    def crash(self, org: str) -> None:
        self.network.crash(org)

    def recover(self, org: str):
        return self.network.recover(org)

    def redeliver_pending(self) -> int:
        return self.network.redeliver_pending()

    def run_full_lifecycle(self, loc_id: str = "LC-Q-001") -> str:
        self.apply_for_credit(loc_id, amount=250_000)
        self.advance("IssuingBank", loc_id)
        self.advance("SellerCo", loc_id)
        result = self.advance("IssuingBank", loc_id)
        return result.return_values["IssuingBank"]

    def status_of(self, loc_id: str, viewer: str) -> str:
        return self.network.private_states[viewer].get(f"loc/{loc_id}")["status"]

    def store_pii(self, *_args, **_kwargs):
        """Refused: the design requires deletable PII, which this platform
        cannot provide — deleting a private payload breaks state replay
        (Table 1 off-chain cell '-').  Keep PII off this platform entirely.
        """
        raise PlatformError(
            "the letter-of-credit design requires deletable PII storage; "
            "Quorum private payloads must remain replayable, so PII must "
            "be kept off-platform (see Table 1 and the S4 design)"
        )
