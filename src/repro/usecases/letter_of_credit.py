"""The Section 4 use case: letters of credit.

"A letter of credit is a financial instrument in which a bank vouches to
pay a seller if a buyer is unable to make an agreed-upon payment.  Parties
on a DLT network used to record letters of credit are banks, sellers, and
buyers.  Sellers and buyers will neither want to share that they are
entering in a business relationship nor the details of their agreement
with the network."

This module provides (a) the paper's requirements, encoded; (b) the
expected design per the paper's own walkthrough, for the U1 benchmark to
check the guide against; and (c) an executable end-to-end letter-of-credit
workflow on the Fabric simulation, following that design: segregated
ledger (channel), PII off-chain with deletion, symmetric encryption for
the trusted-third-party-orderer variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.guide import SolutionDesign, design_solution
from repro.core.mechanisms import Mechanism
from repro.core.requirements import (
    DataClassRequirements,
    DeploymentContext,
    InteractionPrivacy,
    LogicRequirements,
    UseCaseRequirements,
)
from repro.execution.contracts import SmartContract
from repro.platforms.base import TxRequest
from repro.platforms.fabric import FabricNetwork


def letter_of_credit_requirements(
    orderer_trusted: bool = True,
) -> UseCaseRequirements:
    """The paper's Section 4 requirements, encoded for the guide.

    - Sellers and buyers keep both the relationship and the agreement
      private from the network -> group-private interactions.
    - PII is deletable on request (GDPR) -> its own data class.
    - Non-personal trade data needs no deletion, encrypted sharing is
      permitted, and validators are the transaction's own parties.
    - Logic is 'highly standardized and non-confidential'.
    """
    return UseCaseRequirements(
        name="letter-of-credit",
        interaction_privacy=InteractionPrivacy.GROUP_PRIVATE,
        data_classes=(
            DataClassRequirements(
                name="pii",
                deletion_required=True,
            ),
            DataClassRequirements(
                name="trade-data",
                deletion_required=False,
                encrypted_sharing_allowed=True,
                onchain_record_desired=True,
                uninvolved_validation_required=False,
            ),
        ),
        logic=LogicRequirements(keep_logic_private=False),
        deployment=DeploymentContext(
            ordering_service_trusted=orderer_trusted,
            third_party_node_admin=False,
        ),
    )


def expected_paper_design() -> dict:
    """What Section 4's prose concludes, as assertions for the U1 bench."""
    return {
        "pii_primary": Mechanism.OFF_CHAIN_PEER_DATA,
        "trade_primary": Mechanism.SEPARATION_OF_LEDGERS_DATA,
        "interaction": Mechanism.SEPARATION_OF_LEDGERS_PARTIES,
        # "If a third party is trusted to run the ordering service and have
        # visibility of transacting parties, transaction data can be
        # encrypted." -> with an *untrusted* orderer the guide adds
        # symmetric encryption to the trade-data class.
        "untrusted_orderer_adds": Mechanism.SYMMETRIC_ENCRYPTION,
    }


def design_letter_of_credit(orderer_trusted: bool = True) -> SolutionDesign:
    """Run the guide over the LoC requirements."""
    return design_solution(letter_of_credit_requirements(orderer_trusted))


# ---------------------------------------------------------------------------
# Executable workflow
# ---------------------------------------------------------------------------


@dataclass
class LetterOfCredit:
    """The business object tracked on the segregated ledger."""

    loc_id: str
    buyer: str
    seller: str
    issuing_bank: str
    amount: int
    status: str = "applied"  # applied -> issued -> shipped -> paid


@dataclass
class LetterOfCreditWorkflow:
    """End-to-end LoC lifecycle on a Fabric channel, per the S4 design.

    Parties: a buyer, a seller, and the issuing bank share a channel that
    the rest of the network cannot see.  PII (passport numbers for KYC)
    lives in a private data collection and can be erased on request; the
    LoC business states are channel state.
    """

    network: FabricNetwork = field(default_factory=lambda: FabricNetwork(seed="loc"))
    channel_name: str = "loc-channel"
    contract_id: str = "loc-contract"
    _initialized: bool = False

    PARTIES = ("BuyerCo", "SellerCo", "IssuingBank")

    @property
    def telemetry(self):
        """The platform's telemetry bundle (spans, metrics, events)."""
        return self.network.telemetry

    def setup(
        self,
        extra_network_members: tuple[str, ...] = (),
        endorsement_policy=None,
    ) -> None:
        """Onboard parties, create the segregated ledger, deploy logic.

        ``endorsement_policy`` overrides the default all-of policy; the
        recovery scenarios deploy with ``k_of(2, PARTIES)`` so the
        lifecycle can keep moving while one member is crashed.
        """
        for org in self.PARTIES + tuple(extra_network_members):
            self.network.onboard(org)
        channel = self.network.create_channel(self.channel_name, list(self.PARTIES))
        channel.create_collection("kyc-pii", list(self.PARTIES))

        def apply_loc(view, args):
            loc = {
                "loc_id": args["loc_id"], "buyer": args["buyer"],
                "seller": args["seller"], "issuing_bank": args["bank"],
                "amount": args["amount"], "status": "applied",
            }
            view.put(f"loc/{args['loc_id']}", loc)
            return loc

        def advance(view, args):
            key = f"loc/{args['loc_id']}"
            loc = view.get(key)
            if loc is None:
                raise ValueError(f"unknown letter of credit {args['loc_id']!r}")
            transitions = {
                "applied": "issued", "issued": "shipped", "shipped": "paid",
            }
            current = loc["status"]
            if current not in transitions:
                raise ValueError(f"letter of credit already {current!r}")
            loc = {**loc, "status": transitions[current]}
            view.put(key, loc)
            return loc

        contract = SmartContract(
            contract_id=self.contract_id, version=1,
            language="python-chaincode",
            functions={"apply": apply_loc, "advance": advance},
        )
        self.network.deploy_chaincode(
            self.channel_name, contract, list(self.PARTIES),
            policy=endorsement_policy,
        )
        self._initialized = True

    def _require_setup(self) -> None:
        if not self._initialized:
            raise RuntimeError("call setup() first")

    # -- crash recovery passthroughs

    def live_endorsers(self) -> list[str]:
        """Channel members whose peers are currently up."""
        channel = self.network.channel(self.channel_name)
        return [
            m for m in sorted(channel.members)
            if not self.network.network.is_crashed(m)
        ]

    def checkpoint(self, org: str):
        return self.network.checkpoint_node(org)

    def crash(self, org: str) -> None:
        self.network.crash(org)

    def recover(self, org: str):
        return self.network.recover(org)

    def apply_for_credit(
        self, loc_id: str, amount: int, buyer_passport: str
    ) -> LetterOfCredit:
        """Buyer applies; KYC PII goes to the off-chain collection only."""
        self._require_setup()
        # The passport attribute is recorded on purpose: the telemetry
        # redaction filter must hash it before it ever reaches a span, and
        # the leakage cross-check test pins that behavior.
        with self.telemetry.span(
            "loc.apply", loc_id=loc_id, buyer_passport=buyer_passport
        ):
            receipt = self.network.submit(TxRequest(
                submitter="BuyerCo",
                contract_id=self.contract_id,
                function="apply",
                args={
                    "loc_id": loc_id, "buyer": "BuyerCo", "seller": "SellerCo",
                    "bank": "IssuingBank", "amount": amount,
                },
                scope=self.channel_name,
                private_args={
                    "kyc-pii": {f"passport/{loc_id}": {"number": buyer_passport}}
                },
                options={"endorsers": self.live_endorsers()},
            ))
        loc = receipt.result
        return LetterOfCredit(
            loc_id=loc["loc_id"], buyer=loc["buyer"], seller=loc["seller"],
            issuing_bank=loc["issuing_bank"], amount=loc["amount"],
            status=loc["status"],
        )

    def _advance(self, step: str, actor: str, loc_id: str) -> str:
        with self.telemetry.span(f"loc.{step}", loc_id=loc_id, actor=actor):
            receipt = self.network.submit(TxRequest(
                submitter=actor,
                contract_id=self.contract_id,
                function="advance",
                args={"loc_id": loc_id},
                scope=self.channel_name,
                # Endorse on live peers only: with a k-of-n policy the
                # lifecycle survives a crashed member until it recovers.
                options={"endorsers": self.live_endorsers()},
            ))
        return receipt.result["status"]

    def issue(self, loc_id: str) -> str:
        """The bank vouches for the buyer."""
        return self._advance("issue", "IssuingBank", loc_id)

    def ship(self, loc_id: str) -> str:
        """The seller ships against the issued letter."""
        return self._advance("ship", "SellerCo", loc_id)

    def pay(self, loc_id: str) -> str:
        """Settlement (by the bank if the buyer defaults)."""
        return self._advance("pay", "IssuingBank", loc_id)

    def status_of(self, loc_id: str, viewer: str) -> str:
        """Read the LoC status from *viewer*'s channel replica."""
        self._require_setup()
        channel = self.network.channel(self.channel_name)
        return channel.state_of(viewer).get(f"loc/{loc_id}")["status"]

    def erase_pii(self, loc_id: str) -> None:
        """GDPR erasure: purge the passport record from every peer store."""
        self._require_setup()
        channel = self.network.channel(self.channel_name)
        channel.collection("kyc-pii").purge(
            f"passport/{loc_id}", reason="GDPR erasure request",
            now=self.network.clock.now,
        )
        self.telemetry.emit("loc.pii_erased", loc_id=loc_id)

    def pii_is_erased(self, loc_id: str) -> bool:
        channel = self.network.channel(self.channel_name)
        collection = channel.collection("kyc-pii")
        return all(
            store.is_deleted(f"passport/{loc_id}")
            for store in collection.stores.values()
        )

    def run_full_lifecycle(self, loc_id: str = "LC-001") -> LetterOfCredit:
        """Apply -> issue -> ship -> pay, returning the final object."""
        with self.telemetry.span("loc.lifecycle", loc_id=loc_id):
            loc = self.apply_for_credit(loc_id, amount=250_000,
                                        buyer_passport="P-99887766")
            self.issue(loc_id)
            self.ship(loc_id)
            final_status = self.pay(loc_id)
        loc.status = final_status
        return loc
