"""Secret ballot via MPC, committed to a ledger.

Section 3.2 names the secret ballot as the canonical "shared function on
private values" workload: each member's vote stays private, MPC produces
the tally, and only the agreed result is committed to the shared ledger —
here a Fabric channel, so the full recommended stack (segregated ledger +
MPC) is exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import MPCError
from repro.crypto.mpc import MPCStats, secret_ballot
from repro.execution.contracts import SmartContract
from repro.platforms.fabric import FabricNetwork


@dataclass
class BallotResult:
    """Tally plus protocol cost and the committing transaction id."""

    yes: int
    no: int
    passed: bool
    mpc_stats: MPCStats
    tx_id: str


@dataclass
class SecretBallotWorkflow:
    """A board vote among channel members with private individual votes."""

    members: tuple[str, ...]
    network: FabricNetwork = field(default_factory=lambda: FabricNetwork(seed="ballot"))
    channel_name: str = "board-channel"
    contract_id: str = "ballot-contract"
    _initialized: bool = False

    def setup(self) -> None:
        if len(self.members) < 2:
            raise MPCError("a ballot needs at least two voters")
        for member in self.members:
            self.network.onboard(member)
        self.network.create_channel(self.channel_name, list(self.members))

        def record_result(view, args):
            view.put(f"ballot/{args['motion']}", {
                "yes": args["yes"], "no": args["no"], "passed": args["passed"],
            })
            return args["passed"]

        contract = SmartContract(
            contract_id=self.contract_id, version=1,
            language="python-chaincode",
            functions={"record": record_result},
        )
        self.network.deploy_chaincode(
            self.channel_name, contract, list(self.members)
        )
        self._initialized = True

    def _transmit_protocol_traffic(self, stats: MPCStats) -> None:
        """Replay the MPC message pattern over the simulated network.

        Each share and partial sum is an individually-uniform field
        element, so every message carries an empty exposure — which is the
        point: the leakage audit can confirm that running the ballot
        reveals nothing to taps or uninvolved nodes.
        """
        net = self.network.network
        members = list(self.members)
        # Round 1: one private share from every member to every member.
        for sender in members:
            for receiver in members:
                if sender != receiver:
                    net.send(sender, receiver, "mpc-share", {"blob": "share"})
        # Round 2: every member broadcasts its partial sum to the others.
        for sender in members:
            net.broadcast(sender, "mpc-partial", {"blob": "partial"},
                          recipients=members)

    def vote(self, motion: str, votes: dict[str, bool]) -> BallotResult:
        """Run the MPC tally off-chain, then commit only the result.

        Raw votes never reach the platform: the MPC protocol runs between
        the members (its traffic is replayed over the simulated network
        for leakage accounting), and the chaincode records the aggregate.
        """
        if not self._initialized:
            raise RuntimeError("call setup() first")
        if set(votes) != set(self.members):
            raise MPCError("every member must cast a vote")
        tally, stats = secret_ballot(votes)
        self._transmit_protocol_traffic(stats)
        result = self.network.invoke(
            self.channel_name, self.members[0], self.contract_id, "record",
            {"motion": motion, **tally},
        )
        return BallotResult(
            yes=tally["yes"], no=tally["no"], passed=tally["passed"],
            mpc_stats=stats, tx_id=result.tx.tx_id,
        )

    def recorded_outcome(self, motion: str, viewer: str) -> dict:
        """Any member can read the committed aggregate (not the votes)."""
        channel = self.network.channel(self.channel_name)
        return channel.state_of(viewer).get(f"ballot/{motion}")
