"""Executable use cases: letter of credit (S4), secret ballot, oracle tear-off."""

from repro.usecases.letter_of_credit import (
    LetterOfCredit,
    LetterOfCreditWorkflow,
    design_letter_of_credit,
    expected_paper_design,
    letter_of_credit_requirements,
)
from repro.usecases.kyc_consortium import KycConsortium, OnboardingRecord
from repro.usecases.letter_of_credit_multi import (
    CordaLetterOfCredit,
    QuorumLetterOfCredit,
)
from repro.usecases.oracle_attestation import AttestedTrade, OracleTradeWorkflow
from repro.usecases.secret_ballot import BallotResult, SecretBallotWorkflow

__all__ = [
    "LetterOfCredit",
    "LetterOfCreditWorkflow",
    "design_letter_of_credit",
    "expected_paper_design",
    "letter_of_credit_requirements",
    "AttestedTrade",
    "KycConsortium",
    "CordaLetterOfCredit",
    "QuorumLetterOfCredit",
    "OnboardingRecord",
    "OracleTradeWorkflow",
    "BallotResult",
    "SecretBallotWorkflow",
]
