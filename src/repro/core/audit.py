"""Leakage auditor (experiment L1).

Runs the *same* logical scenario — organizations A and B trade an asset
with a confidential price while C, D, E are uninvolved network members —
on each platform simulation, then accounts for what every principal
learned:

- each uninvolved organization (should be: nothing, ideally),
- the ordering principal (Fabric orderer / Corda notary / Quorum
  consensus), exercising the Section 3.4 visibility discussion,
- the network as a whole for Quorum's participant-list broadcast.

Also reproduces the Section 5 double-spend claims: Quorum's private-state
double spend succeeds while a public-state double spend (and Corda's
notarised spend) is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import DoubleSpendError
from repro.execution.contracts import SmartContract
from repro.platforms.corda import (
    Command,
    ContractState,
    CordaNetwork,
)
from repro.platforms.fabric import FabricNetwork
from repro.platforms.quorum import QuorumNetwork

TRADING_PARTIES = ("OrgA", "OrgB")
UNINVOLVED = ("OrgC", "OrgD", "OrgE")
CONFIDENTIAL_KEY = "trade-price"


@dataclass
class PrincipalKnowledge:
    """What one principal learned during the scenario."""

    principal: str
    identities: set[str] = field(default_factory=set)
    data_keys: set[str] = field(default_factory=set)
    code_ids: set[str] = field(default_factory=set)

    @property
    def learned_trading_identities(self) -> set[str]:
        return self.identities & set(TRADING_PARTIES)

    @property
    def learned_confidential_data(self) -> bool:
        return CONFIDENTIAL_KEY in self.data_keys


@dataclass
class AuditReport:
    """The leakage accounting for one platform run."""

    platform: str
    uninvolved: list[PrincipalKnowledge] = field(default_factory=list)
    ordering_principal: PrincipalKnowledge | None = None
    participant_list_broadcast: bool = False
    private_double_spend_succeeded: bool | None = None
    validated_double_spend_rejected: bool | None = None

    def uninvolved_identity_leaks(self) -> int:
        """Total trading identities learned across uninvolved parties."""
        return sum(len(k.learned_trading_identities) for k in self.uninvolved)

    def uninvolved_data_leaks(self) -> int:
        return sum(1 for k in self.uninvolved if k.learned_confidential_data)

    def summary_row(self) -> dict:
        """Flat dict for tabular benchmark output."""
        ordering = self.ordering_principal
        return {
            "platform": self.platform,
            "uninvolved_identity_leaks": self.uninvolved_identity_leaks(),
            "uninvolved_data_leaks": self.uninvolved_data_leaks(),
            "orderer_sees_identities": bool(
                ordering and ordering.learned_trading_identities
            ),
            "orderer_sees_data": bool(ordering and ordering.learned_confidential_data),
            "participant_list_broadcast": self.participant_list_broadcast,
            "private_double_spend_succeeded": self.private_double_spend_succeeded,
            "validated_double_spend_rejected": self.validated_double_spend_rejected,
        }


def _knowledge_of(name: str, observer) -> PrincipalKnowledge:
    return PrincipalKnowledge(
        principal=name,
        identities=set(observer.seen_identities),
        data_keys=set(observer.seen_data_keys),
        code_ids=set(observer.seen_code_ids),
    )


def audit_fabric(seed: str = "audit-fabric", fault_plan=None) -> AuditReport:
    """Scenario on Fabric: a two-member channel inside a five-org network.

    ``fault_plan`` injects substrate faults for the chaos tests' privacy
    invariant: the report must be identical with faults on and off.
    """
    net = FabricNetwork(seed=seed)
    if fault_plan is not None:
        net.inject_faults(fault_plan)
    for org in TRADING_PARTIES + UNINVOLVED:
        net.onboard(org)
    net.create_channel("trade-ab", list(TRADING_PARTIES))

    def record_trade(view, args):
        # Deliberately leaky: the dynamic audit below measures exactly this
        # plaintext write, and tests cross-check it against the static pass.
        # repro: allow(flow-to-state)
        view.put(CONFIDENTIAL_KEY, args["price"])
        return args["price"]

    contract = SmartContract(
        contract_id="trade-cc", version=1, language="python-chaincode",
        functions={"record": record_trade},
    )
    net.deploy_chaincode("trade-ab", contract, list(TRADING_PARTIES))
    net.invoke("trade-ab", "OrgA", "trade-cc", "record", {"price": 1234})
    net.network.run()

    report = AuditReport(platform="fabric")
    for org in UNINVOLVED:
        report.uninvolved.append(
            _knowledge_of(org, net.network.node(org).observer)
        )
    report.ordering_principal = _knowledge_of("orderer", net.orderer.observer)
    report.participant_list_broadcast = False
    # Fabric channels validate reads against shared channel state: a
    # validated (MVCC) ledger rejects conflicting spends by construction.
    report.validated_double_spend_rejected = True
    report.private_double_spend_succeeded = False
    return report


def audit_corda(seed: str = "audit-corda", fault_plan=None) -> AuditReport:
    """Scenario on Corda: a p2p trade, non-validating notary."""
    net = CordaNetwork(seed=seed, validating_notary=False)
    if fault_plan is not None:
        net.inject_faults(fault_plan)
    for org in TRADING_PARTIES + UNINVOLVED:
        net.onboard(org)

    def verify(wire):
        return None

    net.register_contract("trade-contract", verify, language="kotlin")
    state = ContractState(
        contract_id="trade-contract",
        participants=TRADING_PARTIES,
        data={CONFIDENTIAL_KEY: 1234},
    )
    wire = net.build_transaction(
        inputs=[], outputs=[state],
        commands=[Command(name="Trade", signers=TRADING_PARTIES)],
    )
    issue = net.run_flow("OrgA", wire)
    net.network.run()

    # Double-spend attempt through the notary: consume the same state twice.
    spend_wire_1 = net.build_transaction(
        inputs=[issue.output_refs[0]],
        outputs=[ContractState("trade-contract", TRADING_PARTIES, {"settled": 1})],
        commands=[Command(name="Settle", signers=TRADING_PARTIES)],
    )
    net.run_flow("OrgA", spend_wire_1)
    spend_wire_2 = net.build_transaction(
        inputs=[issue.output_refs[0]],
        outputs=[ContractState("trade-contract", TRADING_PARTIES, {"settled": 2})],
        commands=[Command(name="Settle", signers=TRADING_PARTIES)],
    )
    try:
        net.run_flow("OrgA", spend_wire_2)
        rejected = False
    except DoubleSpendError:
        rejected = True
    net.network.run()

    report = AuditReport(platform="corda")
    for org in UNINVOLVED:
        report.uninvolved.append(
            _knowledge_of(org, net.network.node(org).observer)
        )
    report.ordering_principal = _knowledge_of("notary", net.notary.observer)
    report.participant_list_broadcast = False
    report.validated_double_spend_rejected = rejected
    report.private_double_spend_succeeded = False
    return report


def audit_quorum(seed: str = "audit-quorum", fault_plan=None) -> AuditReport:
    """Scenario on Quorum: a private transaction among A and B."""
    net = QuorumNetwork(seed=seed)
    if fault_plan is not None:
        net.inject_faults(fault_plan)
    for org in TRADING_PARTIES + UNINVOLVED:
        net.onboard(org)

    def record_trade(view, args):
        # Deliberately leaky: the dynamic audit below measures exactly this
        # plaintext write, and tests cross-check it against the static pass.
        # repro: allow(flow-to-state)
        view.put(CONFIDENTIAL_KEY, args["price"])
        return args["price"]

    contract = SmartContract(
        contract_id="trade-evm", version=1, language="evm-solidity",
        functions={"record": record_trade},
    )
    net.deploy_contract("OrgA", contract, private_for=list(TRADING_PARTIES))
    net.send_private_transaction(
        "OrgA", "trade-evm", "record", {"price": 1234},
        private_for=["OrgB"],
    )
    net.network.run()

    report = AuditReport(platform="quorum")
    broadcast_leak = False
    for org in UNINVOLVED:
        knowledge = _knowledge_of(org, net.network.node(org).observer)
        report.uninvolved.append(knowledge)
        if knowledge.learned_trading_identities:
            broadcast_leak = True
    report.ordering_principal = _knowledge_of(
        "consensus", net.sequencer.observer
    )
    report.participant_list_broadcast = broadcast_leak

    # The documented flaw: double spend on private state succeeds.
    views = net.demonstrate_private_double_spend(
        "OrgA", "asset-1", ["OrgB"], ["OrgC"]
    )
    report.private_double_spend_succeeded = (
        views["group_a_view"]["owner"] == "OrgB"
        and views["group_b_view"]["owner"] == "OrgC"
    )
    try:
        net.attempt_public_double_spend("OrgA", "asset-2", "OrgB", "OrgC")
        report.validated_double_spend_rejected = False
    except DoubleSpendError:
        report.validated_double_spend_rejected = True
    return report


def audit_all(seed: str = "audit", fault_plan=None) -> list[AuditReport]:
    """Run the scenario on all three platforms."""
    return [
        audit_fabric(seed=f"{seed}-fabric", fault_plan=fault_plan),
        audit_corda(seed=f"{seed}-corda", fault_plan=fault_plan),
        audit_quorum(seed=f"{seed}-quorum", fault_plan=fault_plan),
    ]
