"""The full design guide (Sections 3.1-3.4).

Combines the three per-concern procedures into one :class:`SolutionDesign`:

- Section 3.1 interaction privacy -> a party-privacy mechanism;
- Section 3.2 / Figure 1          -> one recommendation per data class
  (via :mod:`repro.core.decision`);
- Section 3.3 logic criteria      -> a logic-confidentiality mechanism;
- Section 3.4 deployment          -> ordering-service and infrastructure
  advice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.decision import (
    DecisionStep,
    Recommendation,
    decide_data_confidentiality,
)
from repro.core.mechanisms import Mechanism, info
from repro.core.requirements import (
    InteractionPrivacy,
    LogicRequirements,
    UseCaseRequirements,
)


@dataclass
class SolutionDesign:
    """The guide's complete output for one use case."""

    use_case: str
    interaction_mechanisms: list[Mechanism] = field(default_factory=list)
    data_recommendations: list[Recommendation] = field(default_factory=list)
    logic_mechanism: Mechanism | None = None
    logic_notes: list[str] = field(default_factory=list)
    deployment_advice: list[str] = field(default_factory=list)

    def all_mechanisms(self) -> set[Mechanism]:
        """Every mechanism the design relies on (for platform scoring)."""
        mechanisms = set(self.interaction_mechanisms)
        for rec in self.data_recommendations:
            mechanisms.update(rec.all_mechanisms())
        if self.logic_mechanism is not None:
            mechanisms.add(self.logic_mechanism)
        return mechanisms

    def recommendation_for(self, data_class: str) -> Recommendation:
        for rec in self.data_recommendations:
            if rec.data_class == data_class:
                return rec
        raise KeyError(data_class)

    def describe(self) -> str:
        """A report an architect could paste into a design document."""
        lines = [f"Solution design for {self.use_case!r}", "=" * 40]
        lines.append("Interaction privacy:")
        if self.interaction_mechanisms:
            for mechanism in self.interaction_mechanisms:
                lines.append(f"  - {info(mechanism).display_name}")
        else:
            lines.append("  - (no interaction-privacy mechanism required)")
        lines.append("Data confidentiality:")
        for rec in self.data_recommendations:
            lines.extend("  " + line for line in rec.describe().splitlines())
        lines.append("Business logic:")
        if self.logic_mechanism is not None:
            lines.append(f"  - {info(self.logic_mechanism).display_name}")
        else:
            lines.append("  - (logic confidentiality not required)")
        for note in self.logic_notes:
            lines.append(f"    ! {note}")
        lines.append("Deployment:")
        for advice in self.deployment_advice:
            lines.append(f"  - {advice}")
        return "\n".join(lines)


def design_interaction_privacy(level: InteractionPrivacy) -> list[Mechanism]:
    """Section 3.1: map the required privacy level to mechanisms.

    The levels nest: unlinkable subgroups normally also want a separate
    ledger; an anonymous individual additionally needs ZKP identity.
    """
    if level is InteractionPrivacy.NONE:
        return []
    mechanisms = [Mechanism.SEPARATION_OF_LEDGERS_PARTIES]
    if level in (
        InteractionPrivacy.SUBGROUP_UNLINKABLE,
        InteractionPrivacy.INDIVIDUAL_ANONYMOUS,
    ):
        mechanisms.append(Mechanism.ONE_TIME_PUBLIC_KEYS)
    if level is InteractionPrivacy.INDIVIDUAL_ANONYMOUS:
        mechanisms.append(Mechanism.ZKP_OF_IDENTITY)
    return mechanisms


def design_logic_confidentiality(
    logic: LogicRequirements,
) -> tuple[Mechanism | None, list[str]]:
    """Section 3.3: choose a logic mechanism from the four criteria."""
    notes: list[str] = []
    if not logic.keep_logic_private:
        if logic.hide_from_node_admin:
            # Data must be hidden from the admin even though the code may
            # be public: only a TEE provides that.
            return Mechanism.TRUSTED_EXECUTION_ENVIRONMENT, [
                "TEE chosen to hide *data* from the node administrator; "
                "logic privacy comes along for free."
            ]
        return None, ["Business logic may be shared with all participants."]
    if logic.hide_from_node_admin:
        notes.append(
            "For the case where contract code requires access to the "
            "confidential encrypted data, it is possible to run "
            "computations in a trusted execution environment. (S3.3)"
        )
        notes.append(
            "TEE maturity: experimental on current platforms (Section 2.2)."
        )
        return Mechanism.TRUSTED_EXECUTION_ENVIRONMENT, notes
    if logic.need_any_language:
        notes.append(
            "A separate engine allows for the free choice of programming "
            "language. (S3.3)"
        )
        notes.append(
            "An external engine will not benefit from in-built version "
            "control; versions must be managed outside the DLT layer. (S3.3)"
        )
        return Mechanism.OFF_CHAIN_EXECUTION_ENGINE, notes
    notes.append(
        "Contracts can be installed only on involved nodes; the platform's "
        "lifecycle keeps all nodes on the same version. (S3.3)"
    )
    if logic.need_inbuilt_versioning:
        notes.append("In-built versioning requirement satisfied natively.")
    return Mechanism.INSTALL_ON_INVOLVED_NODES, notes


def design_deployment(requirements: UseCaseRequirements) -> list[str]:
    """Section 3.4: ordering service and infrastructure advice."""
    advice = []
    if requirements.deployment.ordering_service_trusted:
        advice.append(
            "A third party may run the ordering/sequencing service; it will "
            "have visibility of transacting parties and transaction details."
        )
    else:
        advice.append(
            "Run a private sequencing service: channel members / consortium "
            "parties should operate ordering themselves to contain its full "
            "visibility (S3.4)."
        )
    if requirements.deployment.per_org_infrastructure:
        advice.append(
            "Host all application layers (UI, middleware, DLT) per "
            "organization so each party controls its own environment (S3.4)."
        )
    else:
        advice.append(
            "Relying on an external infrastructure provider trades privacy/"
            "confidentiality for cost; encrypt data visible to the provider "
            "(S3.4)."
        )
    if requirements.deployment.third_party_node_admin:
        advice.append(
            "Nodes administered by third parties must only handle encrypted "
            "data (symmetric/asymmetric cryptography) or TEEs (S3.2/S3.3)."
        )
    return advice


def design_solution(requirements: UseCaseRequirements) -> SolutionDesign:
    """Run the whole guide over a use case's requirements."""
    design = SolutionDesign(use_case=requirements.name)
    design.interaction_mechanisms = design_interaction_privacy(
        requirements.interaction_privacy
    )
    design.data_recommendations = [
        decide_data_confidentiality(dc, requirements.deployment)
        for dc in requirements.data_classes
    ]
    design.logic_mechanism, design.logic_notes = design_logic_confidentiality(
        requirements.logic
    )
    design.deployment_advice = design_deployment(requirements)
    return design
