"""The Figure 1 decision tree, executable and traceable.

"Figure 1 aims to guide the reader in mapping transaction confidentiality
requirements to available mechanisms." (Section 3.2.)  Every recommendation
returned here carries the full decision path — the question asked at each
node, the answer, and the paper sentence that justifies the branch — so the
F1 benchmark can print the tree's behaviour over the whole input space and
compare it against the paper's prose.

Spine order (from the Section 3.2 walkthrough):

1. deletion required?                     -> off-chain data
2. data private from counterparties?      -> shared function? MPC : ZKP
3. encrypted data sharable more widely?
     no -> on-chain record desired?       -> segregated ledgers
              (+ tear-offs if partial visibility is needed)
          else                            -> off-chain data
4. uninvolved validation required?        -> TEE (homomorphic: future)
5. default                                -> segregated ledgers preferred;
                                             symmetric encryption when a
                                             trusted third party runs the
                                             ordering service / node
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mechanisms import Maturity, Mechanism, info
from repro.core.requirements import DataClassRequirements, DeploymentContext


@dataclass(frozen=True)
class DecisionStep:
    """One node of the tree: what was asked, answered, and why it matters."""

    question: str
    answer: bool
    rationale: str


@dataclass
class Recommendation:
    """The tree's output for one data class."""

    data_class: str
    primary: Mechanism
    supplementary: list[Mechanism] = field(default_factory=list)
    path: list[DecisionStep] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def all_mechanisms(self) -> list[Mechanism]:
        return [self.primary, *self.supplementary]

    def describe(self) -> str:
        """Human-readable decision trace for reports and benchmarks."""
        lines = [f"data class {self.data_class!r}:"]
        for step in self.path:
            lines.append(
                f"  [{'yes' if step.answer else 'no '}] {step.question}"
            )
        lines.append(f"  => {info(self.primary).display_name}")
        for supplement in self.supplementary:
            lines.append(f"   + {info(supplement).display_name}")
        for note in self.notes:
            lines.append(f"   ! {note}")
        return "\n".join(lines)


def decide_data_confidentiality(
    requirements: DataClassRequirements,
    deployment: DeploymentContext | None = None,
) -> Recommendation:
    """Walk Figure 1 for one data class; returns a traced recommendation."""
    deployment = deployment or DeploymentContext()
    path: list[DecisionStep] = []
    rec = Recommendation(data_class=requirements.name, primary=Mechanism.SEPARATION_OF_LEDGERS_DATA)
    rec.path = path

    # -- node 1: regulatory deletion
    deletion = requirements.deletion_required
    path.append(DecisionStep(
        question="Does regulation require that this data can be deleted "
                 "(e.g. the right to be forgotten)?",
        answer=deletion,
        rationale="Since distributed ledgers inherently do not allow for "
                  "the removal of entries, data need to be kept off-chain "
                  "if deletion is required. (S3.2)",
    ))
    if deletion:
        rec.primary = Mechanism.OFF_CHAIN_PEER_DATA
        rec.notes.append(
            "Anchor a hash of the off-chain record on the ledger for an "
            "audit trail; note pruning only archives, it does not delete."
        )
        _maybe_add_encryption(rec, deployment, path)
        return rec

    # -- node 2: data private even from counterparties
    private_inputs = requirements.private_from_counterparties
    path.append(DecisionStep(
        question="Does the transaction rely on private data that cannot be "
                 "shared between the transacting parties themselves?",
        answer=private_inputs,
        rationale="In some cases, a transaction may rely on private data "
                  "that cannot be shared between transacting parties. (S3.2)",
    ))
    if private_inputs:
        shared_function = requirements.shared_function_on_private_inputs
        path.append(DecisionStep(
            question="Must a shared function be computed over the private "
                     "values (e.g. a secret ballot)?",
            answer=shared_function,
            rationale="If a shared function needs to be computed on private "
                      "values, such as would be the case for a secret "
                      "ballot, multiparty computation can be used. (S3.2)",
        ))
        if shared_function:
            rec.primary = Mechanism.MULTIPARTY_COMPUTATION
        else:
            rec.primary = Mechanism.ZKP_ON_DATA
            rec.notes.append(
                "ZKPs provide boolean affirmation only (e.g. sufficient "
                "funds) and must be implemented per scenario."
            )
        rec.notes.append(_maturity_note(rec.primary))
        return rec

    # -- node 3: is sharing encrypted data acceptable?
    encrypted_ok = requirements.encrypted_sharing_allowed
    path.append(DecisionStep(
        question="May encrypted data be shared with the wider network "
                 "(jurisdiction and risk appetite permitting)?",
        answer=encrypted_ok,
        rationale="Given enough computing resources, encrypted data can be "
                  "decrypted, which means that parties may prefer not to "
                  "share even encrypted data with the wider network. (S3.2)",
    ))
    if not encrypted_ok:
        onchain = requirements.onchain_record_desired
        path.append(DecisionStep(
            question="Is an on-chain record still desired (endorsement "
                     "protocols, append-only audit)?",
            answer=onchain,
            rationale="If on-chain records are still desired ... this will "
                      "usually lead to the implementation of segregated "
                      "ledgers with constrained membership. (S3.2)",
        ))
        if onchain:
            rec.primary = Mechanism.SEPARATION_OF_LEDGERS_DATA
            tear_off = requirements.partial_visibility_within_transaction
            path.append(DecisionStep(
                question="Does a transaction contain data irrelevant to (and "
                         "to be hidden from) some participating parties?",
                answer=tear_off,
                rationale="Additional Merkle tree tear-offs can be "
                          "implemented if a transaction contains data "
                          "irrelevant to one or more participating parties "
                          "and must be kept private. (S3.2)",
            ))
            if tear_off:
                rec.supplementary.append(Mechanism.MERKLE_TEAR_OFFS)
            rec.notes.append(
                "A hash of the data may be published on a shared ledger to "
                "record that the transaction occurred without revealing it."
            )
        else:
            rec.primary = Mechanism.OFF_CHAIN_PEER_DATA
        return rec

    # -- node 4: independent validation by uninvolved nodes
    uninvolved = requirements.uninvolved_validation_required
    path.append(DecisionStep(
        question="Must uninvolved network parties independently validate the "
                 "transaction while the data stays confidential?",
        answer=uninvolved,
        rationale="If independent validation while keeping data confidential "
                  "is desirable, uninvolved nodes can provision trusted "
                  "execution environments. (S3.2)",
    ))
    if uninvolved:
        rec.primary = Mechanism.TRUSTED_EXECUTION_ENVIRONMENT
        rec.notes.append(
            "TEEs additionally keep the business logic confidential."
        )
        rec.notes.append(
            "Homomorphic computation may eventually enable processing of "
            "encrypted values, but is not mature enough to date."
        )
        rec.notes.append(_maturity_note(rec.primary))
        return rec

    # -- node 5: default — segregation preferred; encryption for trusted
    # third-party operators
    path.append(DecisionStep(
        question="(default) No stricter constraint applies.",
        answer=True,
        rationale="Segregated ledgers may more generally be the preferred "
                  "solution. (S3.2)",
    ))
    rec.primary = Mechanism.SEPARATION_OF_LEDGERS_DATA
    _maybe_add_encryption(rec, deployment, path)
    return rec


def _maybe_add_encryption(
    rec: Recommendation, deployment: DeploymentContext, path: list[DecisionStep]
) -> None:
    """Appendix branch: third-party operators get ciphertext, not data."""
    needs_encryption = (
        deployment.third_party_node_admin or not deployment.ordering_service_trusted
    )
    path.append(DecisionStep(
        question="Is a node or the ordering service administered by a third "
                 "party that must not see raw data?",
        answer=needs_encryption,
        rationale="Not captured in this diagram is the case where a node is "
                  "administered by a third party that may not be trusted "
                  "with raw data.  In that case, transaction data can be "
                  "encrypted through symmetric or asymmetric cryptography. "
                  "(S3.2)",
    ))
    if needs_encryption:
        rec.supplementary.append(Mechanism.SYMMETRIC_ENCRYPTION)


def render_figure() -> str:
    """ASCII rendering of the full Figure 1 structure (static).

    The executable tree is :func:`decide_data_confidentiality`; this
    renders its shape for reports and the F1 artifact, mirroring the
    paper's figure.
    """
    return "\n".join([
        "Figure 1 — mapping confidentiality requirements to techniques",
        "",
        "[deletion required (right to be forgotten)?]",
        " |-- yes -> OFF-CHAIN DATA (hash anchor optional)",
        " `-- no",
        "     [data private even from transacting counterparties?]",
        "      |-- yes",
        "      |   [shared function over the private values?]",
        "      |    |-- yes -> MULTIPARTY COMPUTATION",
        "      |    `-- no  -> ZERO-KNOWLEDGE PROOFS (boolean affirmation)",
        "      `-- no",
        "          [may encrypted data be shared with the wider network?]",
        "           |-- no",
        "           |   [on-chain record still desired?]",
        "           |    |-- yes -> SEGREGATED LEDGERS",
        "           |    |          [+ data irrelevant to some parties?]",
        "           |    |           `-- yes -> + MERKLE TREE TEAR-OFFS",
        "           |    `-- no  -> OFF-CHAIN DATA",
        "           `-- yes",
        "               [uninvolved parties must validate confidentially?]",
        "                |-- yes -> TRUSTED EXECUTION ENVIRONMENTS",
        "                |          (homomorphic computation: future)",
        "                `-- no  -> SEGREGATED LEDGERS (preferred default)",
        "",
        "(off-diagram) third-party node admin / untrusted orderer",
        "              -> + SYMMETRIC/ASYMMETRIC ENCRYPTION",
    ])


def _maturity_note(mechanism: Mechanism) -> str:
    maturity = info(mechanism).maturity
    if maturity is Maturity.PRODUCTION:
        return f"{info(mechanism).display_name} is production-ready."
    return (
        f"{info(mechanism).display_name} maturity: {maturity.value} "
        "(see paper Section 2 caveats)."
    )
