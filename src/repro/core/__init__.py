"""The paper's contribution: mechanism catalog, design guide, Table 1, audit.

The mechanism catalog, requirements model, decision tree, and guide are
imported eagerly.  The matrix / probe / audit layers depend on the
platform simulations (which themselves consult the mechanism catalog), so
they are exposed lazily via module ``__getattr__`` to keep the import
graph acyclic.
"""

from repro.core.decision import (
    DecisionStep,
    Recommendation,
    decide_data_confidentiality,
)
from repro.core.guide import (
    SolutionDesign,
    design_interaction_privacy,
    design_logic_confidentiality,
    design_solution,
)
from repro.core.mechanisms import (
    Category,
    Maturity,
    Mechanism,
    MechanismInfo,
    all_mechanisms,
    by_category,
    info,
)
from repro.core.requirements import (
    DataClassRequirements,
    DeploymentContext,
    InteractionPrivacy,
    LogicRequirements,
    UseCaseRequirements,
)

_LAZY = {
    # The static analyzer is correctness tooling layered over the same
    # mechanism catalog; exposed here lazily so importing repro.core stays
    # cheap and the import graph stays acyclic.
    "analyze_paths": "repro.analysis",
    "analyze_source": "repro.analysis",
    "Finding": "repro.analysis",
    "LintReport": "repro.analysis",
    "AuditReport": "repro.core.audit",
    "audit_all": "repro.core.audit",
    "audit_corda": "repro.core.audit",
    "audit_fabric": "repro.core.audit",
    "audit_quorum": "repro.core.audit",
    "PAPER_TABLE_1": "repro.core.matrix",
    "PLATFORMS": "repro.core.matrix",
    "MatrixComparison": "repro.core.matrix",
    "PlatformScore": "repro.core.matrix",
    "score_platforms": "repro.core.matrix",
    "build_platforms": "repro.core.probe",
    "build_deployment": "repro.core.deploy",
    "Deployment": "repro.core.deploy",
    "Adversary": "repro.core.threats",
    "Asset": "repro.core.threats",
    "ThreatAssessment": "repro.core.threats",
    "evaluate_design": "repro.core.threats",
    "mechanisms_covering": "repro.core.threats",
    "render_markdown": "repro.core.report",
    "compare_with_paper": "repro.core.probe",
    "regenerate_matrix": "repro.core.probe",
}

__all__ = [
    "DecisionStep",
    "Recommendation",
    "decide_data_confidentiality",
    "SolutionDesign",
    "design_interaction_privacy",
    "design_logic_confidentiality",
    "design_solution",
    "Category",
    "Maturity",
    "Mechanism",
    "MechanismInfo",
    "all_mechanisms",
    "by_category",
    "info",
    "DataClassRequirements",
    "DeploymentContext",
    "InteractionPrivacy",
    "LogicRequirements",
    "UseCaseRequirements",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
