"""Table 1: the platform-comparison matrix.

Holds the paper's published matrix as ground truth, regenerates it from
capability probes (see :mod:`repro.core.probe`), renders both, and scores
platforms against a :class:`SolutionDesign` — the step the paper's Section
3 guide ends with: "assessing DLT platforms with respect to their ability
to meet specific enterprise requirements".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.guide import SolutionDesign
from repro.core.mechanisms import Category, Mechanism, all_mechanisms, info
from repro.platforms.base import ProbeResult, SupportLevel

PLATFORMS = ("fabric", "corda", "quorum")

# The published Table 1, cell for cell.  Legend: '+' native, '*' not native
# but implementable, '-' requires substantial rewriting, 'N/A'.
PAPER_TABLE_1: dict[tuple[str, Mechanism], SupportLevel] = {}


def _row(mechanism: Mechanism, fabric: str, corda: str, quorum: str) -> None:
    levels = {"+": SupportLevel.NATIVE, "*": SupportLevel.IMPLEMENTABLE,
              "-": SupportLevel.REWRITE, "N/A": SupportLevel.NOT_APPLICABLE}
    PAPER_TABLE_1[("fabric", mechanism)] = levels[fabric]
    PAPER_TABLE_1[("corda", mechanism)] = levels[corda]
    PAPER_TABLE_1[("quorum", mechanism)] = levels[quorum]


_row(Mechanism.SEPARATION_OF_LEDGERS_PARTIES, "+", "+", "+")
_row(Mechanism.ONE_TIME_PUBLIC_KEYS, "-", "+", "*")
_row(Mechanism.ZKP_OF_IDENTITY, "+", "-", "-")
_row(Mechanism.SEPARATION_OF_LEDGERS_DATA, "+", "+", "+")
_row(Mechanism.OFF_CHAIN_PEER_DATA, "+", "*", "-")
_row(Mechanism.SYMMETRIC_ENCRYPTION, "+", "+", "+")
_row(Mechanism.MERKLE_TEAR_OFFS, "*", "+", "-")
_row(Mechanism.ZKP_ON_DATA, "*", "*", "*")
_row(Mechanism.MULTIPARTY_COMPUTATION, "*", "*", "*")
_row(Mechanism.HOMOMORPHIC_ENCRYPTION, "*", "*", "*")
_row(Mechanism.INSTALL_ON_INVOLVED_NODES, "+", "N/A", "+")
_row(Mechanism.OFF_CHAIN_EXECUTION_ENGINE, "*", "+", "-")
_row(Mechanism.TRUSTED_EXECUTION_ENVIRONMENT, "-", "-", "-")
_row(Mechanism.PRIVATE_SEQUENCING_SERVICE, "+", "+", "+")
_row(Mechanism.OPEN_SOURCE, "+", "+", "+")


@dataclass
class MatrixComparison:
    """Regenerated matrix vs. the paper's, with per-cell agreement."""

    regenerated: dict[tuple[str, Mechanism], ProbeResult]
    agreements: int = 0
    disagreements: list[tuple[str, Mechanism, SupportLevel, SupportLevel]] = field(
        default_factory=list
    )

    def __post_init__(self) -> None:
        for (platform, mechanism), paper_level in PAPER_TABLE_1.items():
            probe = self.regenerated.get((platform, mechanism))
            if probe is None:
                continue
            if probe.level == paper_level:
                self.agreements += 1
            else:
                self.disagreements.append(
                    (platform, mechanism, paper_level, probe.level)
                )

    @property
    def total_cells(self) -> int:
        return len(PAPER_TABLE_1)

    @property
    def agreement_ratio(self) -> float:
        return self.agreements / self.total_cells

    def render(self) -> str:
        """Side-by-side table: paper vs. regenerated, row per mechanism."""
        lines = []
        header = f"{'Mechanism':44s}" + "".join(
            f"{p + ' (paper/probe)':>24s}" for p in PLATFORMS
        )
        lines.append(header)
        lines.append("-" * len(header))
        current_category = None
        for mechanism in all_mechanisms():
            category = info(mechanism).category
            if category is not current_category:
                lines.append(f"[{category.value.upper()}]")
                current_category = category
            row = f"  {info(mechanism).display_name:42s}"
            for platform in PLATFORMS:
                paper = PAPER_TABLE_1[(platform, mechanism)].value
                probe = self.regenerated.get((platform, mechanism))
                probed = probe.level.value if probe else "?"
                mark = "" if paper == probed else "  <-- MISMATCH"
                row += f"{paper:>12s}/{probed:<8s}"
                if paper != probed:
                    row += mark
            lines.append(row)
        lines.append(
            f"agreement: {self.agreements}/{self.total_cells} cells "
            f"({self.agreement_ratio:.0%})"
        )
        return "\n".join(lines)


@dataclass
class PlatformScore:
    """How well one platform supports a solution design."""

    platform: str
    native: list[Mechanism] = field(default_factory=list)
    implementable: list[Mechanism] = field(default_factory=list)
    blocked: list[Mechanism] = field(default_factory=list)

    @property
    def score(self) -> float:
        """Native = 1, implementable = 0.5, blocked = 0 (N/A skipped)."""
        total = len(self.native) + len(self.implementable) + len(self.blocked)
        if total == 0:
            return 1.0
        return (len(self.native) + 0.5 * len(self.implementable)) / total


def score_platforms(
    design: SolutionDesign,
    matrix: dict[tuple[str, Mechanism], SupportLevel] | None = None,
) -> list[PlatformScore]:
    """Rank the three platforms for a design, best first.

    By default scores against the paper's Table 1; pass a regenerated
    matrix to score against probe results instead.
    """
    matrix = matrix or PAPER_TABLE_1
    needed = design.all_mechanisms()
    scores = []
    for platform in PLATFORMS:
        score = PlatformScore(platform=platform)
        for mechanism in sorted(needed, key=lambda m: m.value):
            level = matrix.get((platform, mechanism))
            if level is None or level is SupportLevel.NOT_APPLICABLE:
                continue
            if level is SupportLevel.NATIVE:
                score.native.append(mechanism)
            elif level is SupportLevel.IMPLEMENTABLE:
                score.implementable.append(mechanism)
            else:
                score.blocked.append(mechanism)
        scores.append(score)
    return sorted(scores, key=lambda s: s.score, reverse=True)
