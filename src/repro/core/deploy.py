"""Deployment builder: from a SolutionDesign to a running network.

The last mile of the design guide: given the requirements, the design the
guide produced, and the party list, construct a configured platform
simulation that *implements* the design —

- a segregated ledger (Fabric channel) for the party group,
- a private data collection per deletion-required data class,
- client-side symmetric encryption (with ElGamal key transport) for data
  classes whose design adds it,
- Pedersen-commitment storage plus sufficient-funds proofs for ZKP data
  classes,
- MPC tallies for shared-function data classes,
- the execution engine the logic mechanism calls for,
- a member-operated orderer when the deployment advice says so.

The returned :class:`Deployment` routes every write through the
mechanism the design chose for that data class, so application code
cannot accidentally bypass the design.  ``tests/core/test_deploy.py``
closes the loop by running the leakage auditor over built deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import GuideError, PrivacyError
from repro.common.rng import DeterministicRNG
from repro.core.guide import SolutionDesign
from repro.core.mechanisms import Mechanism
from repro.core.requirements import UseCaseRequirements
from repro.crypto.commitments import Commitment, Opening, PedersenScheme
from repro.crypto.elgamal import ElGamal, WrappedKey
from repro.crypto.mpc import secure_sum
from repro.crypto.symmetric import Ciphertext, SymmetricKey
from repro.crypto.zkp import (
    FundsProof,
    RangeProver,
    prove_sufficient_funds,
    verify_sufficient_funds,
)
from repro.execution.contracts import SmartContract
from repro.platforms.fabric import FabricNetwork


def _record_chaincode(contract_id: str) -> SmartContract:
    def put(view, args):
        view.put(args["key"], args["value"])
        return args["value"]

    def get(view, args):
        return view.get(args["key"])

    return SmartContract(
        contract_id=contract_id, version=1, language="python-chaincode",
        functions={"put": put, "get": get},
    )


@dataclass
class EncryptedRecord:
    """What lands on-chain for an encrypted data class."""

    nonce_hex: str
    body_hex: str
    tag_hex: str


@dataclass
class Deployment:
    """A built, design-conforming Fabric deployment.

    Every public method enforces the design: writes to a data class go
    through the mechanism the guide selected for it, and nothing else.
    """

    design: SolutionDesign
    requirements: UseCaseRequirements
    network: FabricNetwork
    channel_name: str
    contract_id: str
    parties: list[str]
    data_class_mechanisms: dict[str, Mechanism] = field(default_factory=dict)
    encrypted_classes: set[str] = field(default_factory=set)
    _data_keys: dict[str, SymmetricKey] = field(default_factory=dict)
    _key_wraps: dict[str, dict[str, WrappedKey]] = field(default_factory=dict)
    _commitments: dict[str, tuple[Commitment, Opening, int]] = field(
        default_factory=dict
    )
    _rng: DeterministicRNG = field(
        default_factory=lambda: DeterministicRNG("deployment")
    )

    # -- generic record/read, routed per data-class mechanism

    def record(self, data_class: str, submitter: str, key: str, value: Any):
        """Store one value under the design's mechanism for *data_class*."""
        mechanism = self.data_class_mechanisms[data_class]
        if mechanism is Mechanism.OFF_CHAIN_PEER_DATA:
            return self._record_off_chain(data_class, submitter, key, value)
        if mechanism is Mechanism.SEPARATION_OF_LEDGERS_DATA:
            if data_class in self.encrypted_classes:
                return self._record_encrypted(data_class, submitter, key, value)
            return self._record_on_channel(submitter, key, value)
        if mechanism is Mechanism.ZKP_ON_DATA:
            raise PrivacyError(
                f"data class {data_class!r} uses ZKPs: call commit_value() "
                "and prove_at_least() instead of record()"
            )
        if mechanism is Mechanism.MULTIPARTY_COMPUTATION:
            raise PrivacyError(
                f"data class {data_class!r} uses MPC: call compute_sum() "
                "instead of record()"
            )
        raise GuideError(
            f"deployment builder does not handle {mechanism.value!r}"
        )

    def read(self, data_class: str, reader: str, key: str) -> Any:
        """Read back a value as *reader*, decrypting if the design encrypts."""
        mechanism = self.data_class_mechanisms[data_class]
        if mechanism is Mechanism.OFF_CHAIN_PEER_DATA:
            collection = self.network.channel(self.channel_name).collection(
                f"col-{data_class}"
            )
            return collection.get(reader, key)
        stored = self.network.channel(self.channel_name).state_of(reader).get(
            f"{data_class}/{key}"
        )
        if data_class in self.encrypted_classes:
            data_key = self._unwrap_for(data_class, reader)
            ciphertext = Ciphertext(
                nonce=bytes.fromhex(stored["nonce_hex"]),
                body=bytes.fromhex(stored["body_hex"]),
                tag=bytes.fromhex(stored["tag_hex"]),
            )
            from repro.common.serialization import from_canonical_json

            return from_canonical_json(data_key.decrypt(ciphertext).decode())
        return stored

    # -- mechanism-specific paths

    def _record_on_channel(self, submitter: str, key: str, value: Any):
        return self.network.invoke(
            self.channel_name, submitter, self.contract_id, "put",
            {"key": key, "value": value},
        )

    def _record_off_chain(self, data_class, submitter, key, value):
        return self.network.invoke(
            self.channel_name, submitter, self.contract_id, "put",
            {"key": f"{data_class}/{key}", "value": "see-collection"},
            collection_writes={f"col-{data_class}": {key: value}},
        )

    def _record_encrypted(self, data_class, submitter, key, value):
        from repro.common.serialization import canonical_bytes

        data_key = self._data_keys[data_class]
        ciphertext = data_key.encrypt(canonical_bytes(value), self._rng)
        record = {
            "nonce_hex": ciphertext.nonce.hex(),
            "body_hex": ciphertext.body.hex(),
            "tag_hex": ciphertext.tag.hex(),
        }
        return self.network.invoke(
            self.channel_name, submitter, self.contract_id, "put",
            {"key": f"{data_class}/{key}", "value": record},
        )

    def _unwrap_for(self, data_class: str, reader: str) -> SymmetricKey:
        wraps = self._key_wraps[data_class]
        if reader not in wraps:
            raise PrivacyError(f"{reader!r} holds no key wrap for {data_class!r}")
        elgamal = ElGamal(self.network.scheme.group)
        return elgamal.unwrap_key(self.network.party(reader).key, wraps[reader])

    def erase(self, data_class: str, key: str, reason: str = "gdpr") -> None:
        """Delete an off-chain record (only legal for deletable classes)."""
        mechanism = self.data_class_mechanisms[data_class]
        if mechanism is not Mechanism.OFF_CHAIN_PEER_DATA:
            raise PrivacyError(
                f"data class {data_class!r} is on-ledger; the design only "
                "permits deletion for off-chain classes"
            )
        collection = self.network.channel(self.channel_name).collection(
            f"col-{data_class}"
        )
        collection.purge(key, reason=reason, now=self.network.clock.now)

    # -- ZKP data classes: commitments + boolean affirmations

    def commit_value(self, data_class: str, submitter: str, key: str, value: int):
        """Publish a Pedersen commitment to *value* (value stays private)."""
        self._require_mechanism(data_class, Mechanism.ZKP_ON_DATA)
        prover = RangeProver(self.network.scheme.group)
        pedersen = PedersenScheme(prover.group)
        commitment, opening = pedersen.commit(value, self._rng)
        self._commitments[f"{data_class}/{key}"] = (commitment, opening, value)
        return self._record_on_channel(
            submitter, f"{data_class}/{key}", {"commitment": commitment.element}
        )

    def prove_at_least(
        self, data_class: str, key: str, threshold: int, bits: int = 16
    ) -> FundsProof:
        """Produce a 'value >= threshold' affirmation for a committed key."""
        self._require_mechanism(data_class, Mechanism.ZKP_ON_DATA)
        commitment, opening, value = self._commitments[f"{data_class}/{key}"]
        prover = RangeProver(self.network.scheme.group)
        return prove_sufficient_funds(
            prover, value, opening, threshold, bits,
            f"{data_class}/{key}".encode(), self._rng,
        )

    def verify_at_least(
        self, data_class: str, reader: str, key: str, proof: FundsProof
    ) -> bool:
        """Verify an affirmation against the on-chain commitment."""
        stored = self.network.channel(self.channel_name).state_of(reader).get(
            f"{data_class}/{key}"
        )
        prover = RangeProver(self.network.scheme.group)
        return verify_sufficient_funds(
            prover,
            Commitment(element=stored["commitment"]),
            proof,
            f"{data_class}/{key}".encode(),
        )

    # -- MPC data classes: shared functions over private inputs

    def compute_sum(
        self, data_class: str, submitter: str, key: str, inputs: dict[str, int]
    ):
        """Run MPC over private inputs; commit only the aggregate."""
        self._require_mechanism(data_class, Mechanism.MULTIPARTY_COMPUTATION)
        total, stats = secure_sum(
            inputs, rng=self._rng.fork(f"mpc-{data_class}-{key}")
        )
        result = self._record_on_channel(
            submitter, f"{data_class}/{key}",
            {"aggregate": total, "parties": len(inputs)},
        )
        return total, stats, result

    def _require_mechanism(self, data_class: str, mechanism: Mechanism) -> None:
        actual = self.data_class_mechanisms.get(data_class)
        if actual is not mechanism:
            raise PrivacyError(
                f"data class {data_class!r} uses {actual}, not {mechanism}"
            )


def build_deployment(
    design: SolutionDesign,
    requirements: UseCaseRequirements,
    parties: list[str],
    extra_network_members: list[str] | None = None,
    seed: str = "deployment",
) -> Deployment:
    """Construct a Fabric deployment implementing *design* for *parties*.

    Raises :class:`GuideError` for designs whose primary mechanisms need
    another platform (e.g. a tear-off-centric design belongs on Corda —
    consult :func:`repro.core.matrix.score_platforms`).
    """
    if len(parties) < 2:
        raise GuideError("a deployment needs at least two parties")
    network = FabricNetwork(
        seed=seed,
        orderer_operator=(
            parties[0]
            if not requirements.deployment.ordering_service_trusted
            else "third-party"
        ),
    )
    for party in list(parties) + list(extra_network_members or []):
        network.onboard(party)
    channel_name = f"{requirements.name}-channel"
    contract_id = f"{requirements.name}-contract"
    channel = network.create_channel(channel_name, list(parties))
    network.deploy_chaincode(
        channel_name, _record_chaincode(contract_id), list(parties)
    )

    deployment = Deployment(
        design=design,
        requirements=requirements,
        network=network,
        channel_name=channel_name,
        contract_id=contract_id,
        parties=list(parties),
        _rng=DeterministicRNG(seed + "-ops"),
    )

    elgamal = ElGamal(network.scheme.group)
    for rec in design.data_recommendations:
        deployment.data_class_mechanisms[rec.data_class] = rec.primary
        if rec.primary is Mechanism.OFF_CHAIN_PEER_DATA:
            channel.create_collection(f"col-{rec.data_class}", list(parties))
        if Mechanism.SYMMETRIC_ENCRYPTION in rec.supplementary:
            deployment.encrypted_classes.add(rec.data_class)
            data_key = SymmetricKey.generate(deployment._rng)
            deployment._data_keys[rec.data_class] = data_key
            deployment._key_wraps[rec.data_class] = {
                party: elgamal.wrap_key(
                    network.party(party).public_key, data_key, deployment._rng
                )
                for party in parties
            }
    return deployment
