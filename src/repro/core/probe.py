"""Capability prober: regenerate Table 1 from executable evidence.

Instantiates each platform simulation, runs every mechanism probe on it,
and assembles the regenerated matrix.  See :mod:`repro.platforms.base` for
what a probe actually does; see :mod:`repro.core.matrix` for the paper's
ground truth and the comparison report.
"""

from __future__ import annotations

from repro.core.matrix import MatrixComparison
from repro.core.mechanisms import Mechanism
from repro.platforms.base import Platform, ProbeResult
from repro.platforms.corda import CordaNetwork
from repro.platforms.fabric import FabricNetwork
from repro.platforms.quorum import QuorumNetwork


def build_platforms(seed: str = "probe") -> list[Platform]:
    """Fresh instances of the three platform simulations."""
    return [
        FabricNetwork(seed=f"{seed}-fabric"),
        CordaNetwork(seed=f"{seed}-corda"),
        QuorumNetwork(seed=f"{seed}-quorum"),
    ]


def regenerate_matrix(
    platforms: list[Platform] | None = None,
) -> dict[tuple[str, Mechanism], ProbeResult]:
    """Run every probe on every platform."""
    platforms = platforms if platforms is not None else build_platforms()
    matrix: dict[tuple[str, Mechanism], ProbeResult] = {}
    for platform in platforms:
        for mechanism, result in platform.probe_all().items():
            matrix[(platform.platform_name, mechanism)] = result
    return matrix


def compare_with_paper(
    platforms: list[Platform] | None = None,
) -> MatrixComparison:
    """Regenerate the matrix and diff it against the published Table 1."""
    return MatrixComparison(regenerated=regenerate_matrix(platforms))
