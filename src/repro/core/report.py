"""Design-report generation.

Turns a :class:`~repro.core.guide.SolutionDesign` plus a platform ranking
into the markdown document an architect would circulate: the decision
trace for every data class (each step citing the paper), the chosen
mechanisms with maturity warnings, the platform scores with the blocked
mechanisms called out, and the deployment checklist.
"""

from __future__ import annotations

from repro.core.guide import SolutionDesign
from repro.core.matrix import PlatformScore, score_platforms
from repro.core.mechanisms import Maturity, info


def _maturity_warning(mechanism) -> str | None:
    maturity = info(mechanism).maturity
    if maturity is Maturity.PRODUCTION:
        return None
    return (
        f"{info(mechanism).display_name} is {maturity.value} "
        "(paper Section 2) — plan a fallback or accept the risk."
    )


def render_markdown(
    design: SolutionDesign,
    scores: list[PlatformScore] | None = None,
) -> str:
    """Render the full architect-facing report as markdown."""
    scores = scores if scores is not None else score_platforms(design)
    lines: list[str] = []
    lines.append(f"# Privacy & confidentiality design: {design.use_case}")
    lines.append("")
    lines.append("Produced by the Middleware'19 design-guide engine; every")
    lines.append("decision step cites the paper section that justifies it.")

    lines.append("")
    lines.append("## 1. Privacy of interactions")
    lines.append("")
    if design.interaction_mechanisms:
        for mechanism in design.interaction_mechanisms:
            lines.append(f"- **{info(mechanism).display_name}**")
    else:
        lines.append("- No interaction-privacy mechanism required.")

    lines.append("")
    lines.append("## 2. Confidentiality of transactions and data")
    for rec in design.data_recommendations:
        lines.append("")
        lines.append(f"### Data class `{rec.data_class}`")
        lines.append("")
        lines.append("| step | question | answer |")
        lines.append("|---|---|---|")
        for number, step in enumerate(rec.path, start=1):
            answer = "yes" if step.answer else "no"
            lines.append(f"| {number} | {step.question} | {answer} |")
        lines.append("")
        lines.append(f"**Mechanism: {info(rec.primary).display_name}**")
        for supplement in rec.supplementary:
            lines.append(f"- plus {info(supplement).display_name}")
        for mechanism in rec.all_mechanisms():
            warning = _maturity_warning(mechanism)
            if warning:
                lines.append(f"- ⚠ {warning}")
        for note in rec.notes:
            lines.append(f"- note: {note}")

    lines.append("")
    lines.append("## 3. Confidentiality of business logic")
    lines.append("")
    if design.logic_mechanism is not None:
        lines.append(f"**Mechanism: {info(design.logic_mechanism).display_name}**")
        warning = _maturity_warning(design.logic_mechanism)
        if warning:
            lines.append(f"- ⚠ {warning}")
    else:
        lines.append("Business logic may be shared with all participants.")
    for note in design.logic_notes:
        lines.append(f"- {note}")

    lines.append("")
    lines.append("## 4. Platform assessment (per Table 1)")
    lines.append("")
    lines.append("| platform | score | native | implementable | blocked |")
    lines.append("|---|---|---|---|---|")
    for score in scores:
        lines.append(
            f"| {score.platform} | {score.score:.2f} "
            f"| {len(score.native)} | {len(score.implementable)} "
            f"| {len(score.blocked)} |"
        )
    for score in scores:
        for mechanism in score.blocked:
            lines.append(
                f"- `{score.platform}` blocks "
                f"**{info(mechanism).display_name}** "
                "(requires substantial rewriting)"
            )

    lines.append("")
    lines.append("## 5. Deployment checklist (Section 3.4)")
    lines.append("")
    for advice in design.deployment_advice:
        lines.append(f"- [ ] {advice}")

    lines.append("")
    lines.append("## 6. Threat coverage")
    lines.append("")
    lines.append("Residual exposures need explicit sign-off (some are by")
    lines.append("design — e.g. counterparties seeing data they transact on).")
    lines.append("")
    from repro.core.threats import Adversary, Asset, evaluate_design

    assessment = evaluate_design(design)
    header = "| adversary | " + " | ".join(a.value for a in Asset) + " |"
    lines.append(header)
    lines.append("|---|" + "---|" * len(Asset))
    for adversary in Adversary:
        cells = [
            "covered" if assessment.is_covered(adversary, asset) else "**EXPOSED**"
            for asset in Asset
        ]
        lines.append(f"| {adversary.value} | " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)
