"""Threat-model evaluation.

The paper's analysis implicitly ranges over a set of adversaries (a
curious counterparty, an uninvolved network member, the ordering-service
operator, a third-party node administrator, a wire observer) and assets
(party identities, transaction data, business logic).  This module makes
that model explicit: each mechanism covers a set of (adversary, asset)
pairs — each entry traceable to a paper statement — and
:func:`evaluate_design` reports the residual exposures of a
:class:`~repro.core.guide.SolutionDesign`.

The coverage map is validated against the leakage auditor: what the map
says a mechanism protects corresponds to what the audit measures on the
platform simulations (see ``tests/core/test_threats.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.guide import SolutionDesign
from repro.core.mechanisms import Mechanism, info


class Adversary(enum.Enum):
    """Who might learn something they should not."""

    COUNTERPARTY = "counterparty"            # a party inside the transaction
    UNINVOLVED_MEMBER = "uninvolved-member"  # onboarded, not involved
    ORDERING_OPERATOR = "ordering-operator"  # runs ordering/notary/consensus
    NODE_ADMIN = "node-admin"                # administers someone's node
    NETWORK_OBSERVER = "network-observer"    # sees (encrypted) wire traffic


class Asset(enum.Enum):
    """What the paper protects: parties, data, logic (Section 1)."""

    IDENTITY = "identity"
    TRANSACTION_DATA = "transaction-data"
    BUSINESS_LOGIC = "business-logic"


Exposure = tuple[Adversary, Asset]

# What each mechanism denies to which adversary.  Every entry is
# traceable to a paper statement (cited inline).
COVERAGE: dict[Mechanism, frozenset[Exposure]] = {
    # "Identities of channel members are not revealed to the wider
    # network and transactions are only shared between channel members."
    Mechanism.SEPARATION_OF_LEDGERS_PARTIES: frozenset({
        (Adversary.UNINVOLVED_MEMBER, Asset.IDENTITY),
        (Adversary.NETWORK_OBSERVER, Asset.IDENTITY),
    }),
    Mechanism.SEPARATION_OF_LEDGERS_DATA: frozenset({
        (Adversary.UNINVOLVED_MEMBER, Asset.TRANSACTION_DATA),
        (Adversary.NETWORK_OBSERVER, Asset.TRANSACTION_DATA),
    }),
    # "one-time public keys can be used to mask the identity of the
    # asset owner" — from anyone without the linking certificate.
    Mechanism.ONE_TIME_PUBLIC_KEYS: frozenset({
        (Adversary.UNINVOLVED_MEMBER, Asset.IDENTITY),
        (Adversary.ORDERING_OPERATOR, Asset.IDENTITY),
        (Adversary.NETWORK_OBSERVER, Asset.IDENTITY),
    }),
    # "digital signatures from a party can be completely unlinkable to
    # each other and to an identity."
    Mechanism.ZKP_OF_IDENTITY: frozenset({
        (Adversary.COUNTERPARTY, Asset.IDENTITY),
        (Adversary.UNINVOLVED_MEMBER, Asset.IDENTITY),
        (Adversary.ORDERING_OPERATOR, Asset.IDENTITY),
        (Adversary.NETWORK_OBSERVER, Asset.IDENTITY),
    }),
    # Off-chain data never reaches uninvolved nodes or the orderer.
    Mechanism.OFF_CHAIN_PEER_DATA: frozenset({
        (Adversary.UNINVOLVED_MEMBER, Asset.TRANSACTION_DATA),
        (Adversary.ORDERING_OPERATOR, Asset.TRANSACTION_DATA),
        (Adversary.NETWORK_OBSERVER, Asset.TRANSACTION_DATA),
    }),
    # "transaction data can be encrypted through symmetric or asymmetric
    # cryptography" — against operators/admins/wire, not key holders.
    Mechanism.SYMMETRIC_ENCRYPTION: frozenset({
        (Adversary.ORDERING_OPERATOR, Asset.TRANSACTION_DATA),
        (Adversary.NODE_ADMIN, Asset.TRANSACTION_DATA),
        (Adversary.NETWORK_OBSERVER, Asset.TRANSACTION_DATA),
        (Adversary.UNINVOLVED_MEMBER, Asset.TRANSACTION_DATA),
    }),
    # "The party is able to compute and sign on the Merkle root without
    # having access to the confidential data."
    Mechanism.MERKLE_TEAR_OFFS: frozenset({
        (Adversary.COUNTERPARTY, Asset.TRANSACTION_DATA),
        (Adversary.ORDERING_OPERATOR, Asset.TRANSACTION_DATA),
        (Adversary.ORDERING_OPERATOR, Asset.IDENTITY),
    }),
    # "only provide enough information to prove that a certain fact is
    # true ... without revealing raw values."
    Mechanism.ZKP_ON_DATA: frozenset({
        (Adversary.COUNTERPARTY, Asset.TRANSACTION_DATA),
        (Adversary.UNINVOLVED_MEMBER, Asset.TRANSACTION_DATA),
        (Adversary.ORDERING_OPERATOR, Asset.TRANSACTION_DATA),
        (Adversary.NETWORK_OBSERVER, Asset.TRANSACTION_DATA),
    }),
    # "no private values need to be shared between parties."
    Mechanism.MULTIPARTY_COMPUTATION: frozenset({
        (Adversary.COUNTERPARTY, Asset.TRANSACTION_DATA),
        (Adversary.UNINVOLVED_MEMBER, Asset.TRANSACTION_DATA),
        (Adversary.ORDERING_OPERATOR, Asset.TRANSACTION_DATA),
        (Adversary.NETWORK_OBSERVER, Asset.TRANSACTION_DATA),
    }),
    # "any party can carry out the computation ... without being able to
    # inspect any raw values."
    Mechanism.HOMOMORPHIC_ENCRYPTION: frozenset({
        (Adversary.UNINVOLVED_MEMBER, Asset.TRANSACTION_DATA),
        (Adversary.ORDERING_OPERATOR, Asset.TRANSACTION_DATA),
        (Adversary.NODE_ADMIN, Asset.TRANSACTION_DATA),
        (Adversary.NETWORK_OBSERVER, Asset.TRANSACTION_DATA),
    }),
    # "only peers that have the chaincode installed are able to view the
    # chaincode."
    Mechanism.INSTALL_ON_INVOLVED_NODES: frozenset({
        (Adversary.UNINVOLVED_MEMBER, Asset.BUSINESS_LOGIC),
        (Adversary.NETWORK_OBSERVER, Asset.BUSINESS_LOGIC),
    }),
    # "prevents leaks of business logic" — but the engine host's admin
    # still sees it (Section 3.3 criterion 3 fails).
    Mechanism.OFF_CHAIN_EXECUTION_ENGINE: frozenset({
        (Adversary.UNINVOLVED_MEMBER, Asset.BUSINESS_LOGIC),
        (Adversary.ORDERING_OPERATOR, Asset.BUSINESS_LOGIC),
        (Adversary.NETWORK_OBSERVER, Asset.BUSINESS_LOGIC),
    }),
    # "keep both the code itself and the data around the smart contracts
    # confidential" — including from the node administrator.
    Mechanism.TRUSTED_EXECUTION_ENVIRONMENT: frozenset({
        (Adversary.NODE_ADMIN, Asset.BUSINESS_LOGIC),
        (Adversary.NODE_ADMIN, Asset.TRANSACTION_DATA),
        (Adversary.UNINVOLVED_MEMBER, Asset.BUSINESS_LOGIC),
        (Adversary.UNINVOLVED_MEMBER, Asset.TRANSACTION_DATA),
        (Adversary.NETWORK_OBSERVER, Asset.BUSINESS_LOGIC),
        (Adversary.NETWORK_OBSERVER, Asset.TRANSACTION_DATA),
    }),
    # Running ordering yourself removes the *third-party* operator from
    # the picture entirely (the operator becomes a member).
    Mechanism.PRIVATE_SEQUENCING_SERVICE: frozenset({
        (Adversary.ORDERING_OPERATOR, Asset.IDENTITY),
        (Adversary.ORDERING_OPERATOR, Asset.TRANSACTION_DATA),
        (Adversary.ORDERING_OPERATOR, Asset.BUSINESS_LOGIC),
    }),
    Mechanism.OPEN_SOURCE: frozenset(),
}

ALL_EXPOSURES: frozenset[Exposure] = frozenset(
    (adversary, asset) for adversary in Adversary for asset in Asset
)


@dataclass
class ThreatAssessment:
    """Coverage and residual exposure of a design."""

    covered: set[Exposure] = field(default_factory=set)
    residual: set[Exposure] = field(default_factory=set)
    by_mechanism: dict[Mechanism, set[Exposure]] = field(default_factory=dict)

    def is_covered(self, adversary: Adversary, asset: Asset) -> bool:
        return (adversary, asset) in self.covered

    def residual_for(self, adversary: Adversary) -> set[Asset]:
        return {asset for a, asset in self.residual if a is adversary}

    def render(self) -> str:
        """Coverage matrix: rows adversaries, columns assets."""
        lines = []
        header = f"{'adversary':20s}" + "".join(
            f"{asset.value:>20s}" for asset in Asset
        )
        lines.append(header)
        for adversary in Adversary:
            row = f"{adversary.value:20s}"
            for asset in Asset:
                mark = "covered" if self.is_covered(adversary, asset) else "EXPOSED"
                row += f"{mark:>20s}"
            lines.append(row)
        return "\n".join(lines)


def evaluate_design(design: SolutionDesign) -> ThreatAssessment:
    """Which (adversary, asset) pairs does this design defend, and which
    remain exposed?

    Residual exposures are not necessarily flaws — a use case that shares
    data with counterparties by intent *should* leave (counterparty,
    data) uncovered — but an architect must sign off on each one, which
    is what the report in :mod:`repro.core.report` surfaces.
    """
    assessment = ThreatAssessment()
    for mechanism in sorted(design.all_mechanisms(), key=lambda m: m.value):
        coverage = COVERAGE.get(mechanism, frozenset())
        assessment.by_mechanism[mechanism] = set(coverage)
        assessment.covered |= coverage
    assessment.residual = set(ALL_EXPOSURES) - assessment.covered
    return assessment


def mechanisms_covering(adversary: Adversary, asset: Asset) -> list[Mechanism]:
    """All catalog mechanisms that defend one exposure (for what-if UIs)."""
    return [
        mechanism
        for mechanism, coverage in COVERAGE.items()
        if (adversary, asset) in coverage
    ]
