"""Requirements model (the inputs to the design guide).

Section 3: "Use cases and solutions are multifaceted.  Apart from use case
driven privacy and confidentiality requirements, an architect may need to
consider legal and regulatory constraints.  Furthermore, requirements may
vary between different types of data."

The model therefore separates: interaction-privacy needs (Section 3.1),
per-data-class confidentiality needs (Section 3.2 / Figure 1 — a solution
may carry several data classes with different requirements, like the
letter-of-credit's PII vs. trade data), business-logic needs (Section
3.3), and deployment trust assumptions (Section 3.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import RequirementsError


class InteractionPrivacy(enum.Enum):
    """Section 3.1's three levels of party privacy."""

    NONE = "none"
    # "If a group of parties know each other, and members wish to interact
    # privately, they may want to use a ledger that is separate..."
    GROUP_PRIVATE = "group-private"
    # "If on any given ledger a sub-group of parties does not want to
    # reveal that they are transacting they can exchange one-time public
    # keys..."
    SUBGROUP_UNLINKABLE = "subgroup-unlinkable"
    # "In the case where an individual party wishes to remain entirely
    # private but is still required to sign or commit a transaction, they
    # have the ability to use ZKP to prove their identity."
    INDIVIDUAL_ANONYMOUS = "individual-anonymous"


@dataclass(frozen=True)
class DataClassRequirements:
    """Figure 1's decision inputs for one class of data.

    Field order mirrors the order the questions are asked on the Figure 1
    spine; see :mod:`repro.core.decision`.
    """

    name: str
    # "A first important decision point involves regulatory obligations,
    # such as 'the right to be forgotten'."
    deletion_required: bool = False
    # "a transaction may rely on private data that cannot be shared
    # between transacting parties"
    private_from_counterparties: bool = False
    # "If a shared function needs to be computed on private values, such
    # as would be the case for a secret ballot"
    shared_function_on_private_inputs: bool = False
    # "parties may prefer not to share even encrypted data with the wider
    # network"
    encrypted_sharing_allowed: bool = True
    # "If on-chain records are still desired to make use of endorsement
    # protocols or the append-only character of a ledger"
    onchain_record_desired: bool = True
    # "Additional Merkle tree tear-offs can be implemented if a transaction
    # contains data irrelevant to one or more participating parties"
    partial_visibility_within_transaction: bool = False
    # "Unless uninvolved network parties are required to endorse the
    # correctness of an otherwise confidential transaction"
    uninvolved_validation_required: bool = False

    def __post_init__(self) -> None:
        if self.shared_function_on_private_inputs and not self.private_from_counterparties:
            raise RequirementsError(
                "a shared function on private inputs implies the inputs are "
                "private from counterparties"
            )


@dataclass(frozen=True)
class LogicRequirements:
    """Section 3.3's four criteria."""

    keep_logic_private: bool = False
    need_inbuilt_versioning: bool = False
    hide_from_node_admin: bool = False
    need_any_language: bool = False


@dataclass(frozen=True)
class DeploymentContext:
    """Section 3.4 trust assumptions that modulate the recommendation."""

    # Whether a third party operating the ordering/sequencing service is
    # trusted with transaction visibility.
    ordering_service_trusted: bool = True
    # Whether some nodes are administered by third parties not trusted
    # with raw data ("Not captured in this diagram is the case where a
    # node is administered by a third party...").
    third_party_node_admin: bool = False
    # Whether each org can host its own full application stack.
    per_org_infrastructure: bool = True


@dataclass(frozen=True)
class UseCaseRequirements:
    """The complete input to the design guide."""

    name: str
    interaction_privacy: InteractionPrivacy = InteractionPrivacy.NONE
    data_classes: tuple[DataClassRequirements, ...] = ()
    logic: LogicRequirements = field(default_factory=LogicRequirements)
    deployment: DeploymentContext = field(default_factory=DeploymentContext)

    def __post_init__(self) -> None:
        if not self.data_classes:
            raise RequirementsError(
                "a use case needs at least one data class (use defaults "
                "for an unconstrained one)"
            )
        names = [dc.name for dc in self.data_classes]
        if len(set(names)) != len(names):
            raise RequirementsError(f"duplicate data class names: {names}")

    def data_class(self, name: str) -> DataClassRequirements:
        for dc in self.data_classes:
            if dc.name == name:
                return dc
        raise RequirementsError(f"no data class named {name!r}")
