"""The mechanism catalog (paper Section 2, rows of Table 1).

Every privacy/confidentiality mechanism the paper names, with the metadata
the design guide needs: which requirement category it serves, its maturity
(the paper flags ZKP, MPC, homomorphic encryption, and TEEs as immature or
scenario-specific), and the properties the Figure 1 decision tree branches
on (does it allow deletion? does it avoid sharing encrypted data? ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Category(enum.Enum):
    """The paper's grouping: Section 2.1 / 2.2 / 2.3 plus Table 1's Misc."""

    PARTIES = "parties"
    TRANSACTIONS = "transactions"
    LOGIC = "logic"
    MISC = "misc"


class Maturity(enum.Enum):
    """Deployment readiness per the paper's Section 2 discussion."""

    PRODUCTION = "production"
    SCENARIO_SPECIFIC = "scenario-specific"  # ZKPs: per-scenario circuits
    EXPERIMENTAL = "experimental"            # TEEs on ledgers, MPC
    PROOF_OF_CONCEPT = "proof-of-concept"    # homomorphic computation


class Mechanism(enum.Enum):
    """Every mechanism in Table 1, keyed by (category, name)."""

    # -- privacy of interacting parties (Section 2.1)
    SEPARATION_OF_LEDGERS_PARTIES = "parties/separation-of-ledgers"
    ONE_TIME_PUBLIC_KEYS = "parties/one-time-public-keys"
    ZKP_OF_IDENTITY = "parties/zkp-of-identity"

    # -- confidentiality of transactions and data (Section 2.2)
    SEPARATION_OF_LEDGERS_DATA = "transactions/separation-of-ledgers"
    OFF_CHAIN_PEER_DATA = "transactions/off-chain-peer-data"
    SYMMETRIC_ENCRYPTION = "transactions/symmetric-keys"
    MERKLE_TEAR_OFFS = "transactions/merkle-tear-offs"
    ZKP_ON_DATA = "transactions/zero-knowledge-proofs"
    MULTIPARTY_COMPUTATION = "transactions/multiparty-computation"
    HOMOMORPHIC_ENCRYPTION = "transactions/homomorphic-encryption"

    # -- confidentiality of business logic (Section 2.3)
    INSTALL_ON_INVOLVED_NODES = "logic/install-on-involved-nodes"
    OFF_CHAIN_EXECUTION_ENGINE = "logic/off-chain-execution-engine"
    TRUSTED_EXECUTION_ENVIRONMENT = "logic/trusted-execution-environment"

    # -- Table 1 Misc rows
    PRIVATE_SEQUENCING_SERVICE = "misc/private-sequencing-service"
    OPEN_SOURCE = "misc/open-source"


@dataclass(frozen=True)
class MechanismInfo:
    """Decision-relevant metadata for one mechanism."""

    mechanism: Mechanism
    category: Category
    maturity: Maturity
    display_name: str
    # Figure 1 branch properties (transactions category):
    allows_deletion: bool = False          # data can be erased later
    avoids_sharing_encrypted: bool = False # no encrypted blobs leave the group
    keeps_onchain_record: bool = False     # an on-ledger record still exists
    supports_uninvolved_validation: bool = False  # outsiders can validate
    hides_raw_values_from_counterparties: bool = False
    computes_shared_function: bool = False
    # Section 3.3 logic criteria:
    keeps_logic_private: bool = False
    inbuilt_versioning: bool = False
    hides_from_admin: bool = False
    any_language: bool = False


_INFOS: dict[Mechanism, MechanismInfo] = {}


def _register(info: MechanismInfo) -> None:
    _INFOS[info.mechanism] = info


_register(MechanismInfo(
    Mechanism.SEPARATION_OF_LEDGERS_PARTIES, Category.PARTIES,
    Maturity.PRODUCTION, "Separation of ledgers",
))
_register(MechanismInfo(
    Mechanism.ONE_TIME_PUBLIC_KEYS, Category.PARTIES,
    Maturity.PRODUCTION, "One-time public key",
))
_register(MechanismInfo(
    Mechanism.ZKP_OF_IDENTITY, Category.PARTIES,
    Maturity.PRODUCTION, "Zero knowledge proof of identity",
))
_register(MechanismInfo(
    Mechanism.SEPARATION_OF_LEDGERS_DATA, Category.TRANSACTIONS,
    Maturity.PRODUCTION, "Separation of ledgers",
    avoids_sharing_encrypted=True, keeps_onchain_record=True,
))
_register(MechanismInfo(
    Mechanism.OFF_CHAIN_PEER_DATA, Category.TRANSACTIONS,
    Maturity.PRODUCTION, "Off-chain peer data",
    allows_deletion=True, avoids_sharing_encrypted=True,
))
_register(MechanismInfo(
    Mechanism.SYMMETRIC_ENCRYPTION, Category.TRANSACTIONS,
    Maturity.PRODUCTION, "Symmetric keys",
    keeps_onchain_record=True,
))
_register(MechanismInfo(
    Mechanism.MERKLE_TEAR_OFFS, Category.TRANSACTIONS,
    Maturity.PRODUCTION, "Merkle trees and tear-offs",
    avoids_sharing_encrypted=True, keeps_onchain_record=True,
))
_register(MechanismInfo(
    Mechanism.ZKP_ON_DATA, Category.TRANSACTIONS,
    Maturity.SCENARIO_SPECIFIC, "Zero-knowledge proofs",
    keeps_onchain_record=True, hides_raw_values_from_counterparties=True,
))
_register(MechanismInfo(
    Mechanism.MULTIPARTY_COMPUTATION, Category.TRANSACTIONS,
    Maturity.EXPERIMENTAL, "Multiparty computation",
    hides_raw_values_from_counterparties=True, computes_shared_function=True,
))
_register(MechanismInfo(
    Mechanism.HOMOMORPHIC_ENCRYPTION, Category.TRANSACTIONS,
    Maturity.PROOF_OF_CONCEPT, "Homomorphic encryption",
    keeps_onchain_record=True, supports_uninvolved_validation=True,
))
_register(MechanismInfo(
    Mechanism.INSTALL_ON_INVOLVED_NODES, Category.LOGIC,
    Maturity.PRODUCTION, "Install contract on involved nodes",
    keeps_logic_private=True, inbuilt_versioning=True,
))
_register(MechanismInfo(
    Mechanism.OFF_CHAIN_EXECUTION_ENGINE, Category.LOGIC,
    Maturity.PRODUCTION, "Off-chain execution engine",
    keeps_logic_private=True, any_language=True,
))
_register(MechanismInfo(
    Mechanism.TRUSTED_EXECUTION_ENVIRONMENT, Category.LOGIC,
    Maturity.EXPERIMENTAL, "Trusted execution environments",
    keeps_logic_private=True, inbuilt_versioning=True, hides_from_admin=True,
    supports_uninvolved_validation=True,
))
_register(MechanismInfo(
    Mechanism.PRIVATE_SEQUENCING_SERVICE, Category.MISC,
    Maturity.PRODUCTION, "Private sequencing service possible",
))
_register(MechanismInfo(
    Mechanism.OPEN_SOURCE, Category.MISC,
    Maturity.PRODUCTION, "Open source",
))


def info(mechanism: Mechanism) -> MechanismInfo:
    """Metadata for one mechanism."""
    return _INFOS[mechanism]


def all_mechanisms() -> list[Mechanism]:
    """Table 1 row order."""
    return list(_INFOS)


def by_category(category: Category) -> list[Mechanism]:
    return [m for m, i in _INFOS.items() if i.category is category]
