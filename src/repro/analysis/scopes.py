"""Module indexing: parents, imports, and contract-context discovery.

The determinism pass only applies to *contract/validation code* — the
Section 5 requirement is about logic every endorsing node replays, not
about arbitrary simulation code.  Statically, contract code is:

- any function registered in the ``functions={...}`` mapping of a
  :class:`~repro.execution.contracts.SmartContract` construction,
- any verifier passed to ``register_contract(...)`` (Corda ``verify``
  closures) or a ``contract_verifier=`` keyword,

resolved through plain ``Name`` references to ``def``s in any enclosing
scope, or taken directly when the value is a ``lambda``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
ScopeNode = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def call_name(call: ast.Call) -> str:
    """The called function's terminal name: ``f(...)`` or ``x.y.f(...)``."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def receiver_name(call: ast.Call) -> str:
    """A descriptive lowercase name for the receiver of a method call.

    ``view.put`` -> ``view``; ``self.public_states[n].put`` ->
    ``public_states``; ``channel.reference_state().put`` ->
    ``reference_state``.  Empty for plain-name calls.
    """
    if not isinstance(call.func, ast.Attribute):
        return ""
    return _describe(call.func.value).lower()


def _describe(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        # Prefer the attribute (``self.public_states`` -> public_states).
        return node.attr
    if isinstance(node, ast.Subscript):
        return _describe(node.value)
    if isinstance(node, ast.Call):
        return call_name(node)
    return ""


@dataclass
class ModuleIndex:
    """Parse-tree wide lookups shared by every pass over one file."""

    tree: ast.Module
    path: str
    parents: dict[int, ast.AST] = field(default_factory=dict)
    # local name -> imported module root (``import os`` / ``import x as y``)
    import_modules: dict[str, str] = field(default_factory=dict)
    # local name -> (module, member) for ``from mod import member [as alias]``
    import_members: dict[str, tuple[str, str]] = field(default_factory=dict)
    # id() of FunctionDef/Lambda nodes that are contract/validation code
    contract_nodes: set[int] = field(default_factory=set)
    # id(node) -> dotted registration label, for messages
    contract_labels: dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[id(child)] = parent
        self._collect_imports()
        self._collect_contract_contexts()

    # -- structure -----------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(id(node))

    def enclosing_functions(self, node: ast.AST) -> list[ast.AST]:
        """Innermost-first chain of enclosing function nodes."""
        chain = []
        current = self.parent(node)
        while current is not None:
            if isinstance(current, FunctionNode):
                chain.append(current)
            current = self.parent(current)
        return chain

    def context_of(self, node: ast.AST) -> str:
        """Dotted outer-to-inner names of enclosing functions/classes."""
        names = []
        current: ast.AST | None = node
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.append(current.name)
            elif isinstance(current, ast.Lambda):
                names.append("<lambda>")
            current = self.parent(current)
        return ".".join(reversed(names))

    def in_contract_context(self, node: ast.AST) -> bool:
        if id(node) in self.contract_nodes:
            return True
        return any(
            id(fn) in self.contract_nodes
            for fn in self.enclosing_functions(node)
        )

    # -- imports -------------------------------------------------------

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    self.import_modules[alias.asname or root] = root
            elif isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".")[0]
                for alias in node.names:
                    self.import_members[alias.asname or alias.name] = (
                        root,
                        alias.name,
                    )

    # -- contract-context discovery ------------------------------------

    def _collect_contract_contexts(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name == "SmartContract":
                for kw in node.keywords:
                    if kw.arg == "functions":
                        self._mark_function_mapping(node, kw.value)
            elif name == "register_contract":
                # register_contract(contract_id, verifier, ...)
                if len(node.args) >= 2:
                    self._mark_callable(node, node.args[1], "verify")
                for kw in node.keywords:
                    if kw.arg == "verifier":
                        self._mark_callable(node, kw.value, "verify")
            for kw in node.keywords:
                if kw.arg == "contract_verifier":
                    self._mark_callable(node, kw.value, "verify")

    def _mark_function_mapping(self, site: ast.Call, value: ast.AST) -> None:
        mapping = value
        if isinstance(mapping, ast.Name):
            resolved = self._resolve_assignment(site, mapping.id)
            if resolved is not None:
                mapping = resolved
        if not isinstance(mapping, ast.Dict):
            return
        for key, entry in zip(mapping.keys, mapping.values):
            label = (
                key.value
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
                else "<entry>"
            )
            self._mark_callable(site, entry, label)

    def _mark_callable(self, site: ast.AST, value: ast.AST, label: str) -> None:
        if isinstance(value, ast.Lambda):
            self.contract_nodes.add(id(value))
            self.contract_labels[id(value)] = label
            return
        if isinstance(value, ast.Name):
            target = self._resolve_function(site, value.id)
            if target is not None:
                self.contract_nodes.add(id(target))
                self.contract_labels[id(target)] = label

    def _scope_chain(self, node: ast.AST) -> list[ast.AST]:
        """Innermost-first enclosing scopes (functions, then the module)."""
        chain: list[ast.AST] = []
        current: ast.AST | None = node
        while current is not None:
            if isinstance(current, ScopeNode):
                chain.append(current)
            current = self.parent(current)
        return chain

    def _resolve_function(self, site: ast.AST, name: str) -> ast.AST | None:
        for scope in self._scope_chain(site):
            for stmt in ast.walk(scope):
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name == name
                    and self._nearest_scope(stmt) is scope
                ):
                    return stmt
        return None

    def _resolve_assignment(self, site: ast.AST, name: str) -> ast.AST | None:
        """Best-effort: the Dict literal assigned to *name* in scope."""
        for scope in self._scope_chain(site):
            for stmt in ast.walk(scope):
                if isinstance(stmt, ast.Assign) and self._nearest_scope(stmt) is scope:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) and target.id == name:
                            return stmt.value
        return None

    def _nearest_scope(self, node: ast.AST) -> ast.AST | None:
        current = self.parent(node)
        while current is not None:
            if isinstance(current, ScopeNode):
                return current
            current = self.parent(current)
        return None
