"""Trust-boundary pass: structural platform caveats.

Where the taint pass follows *values*, this pass flags *constructions*
whose information disclosure is inherent to the platform mechanism, as
documented in Section 5 of the paper:

- B301: every Quorum private transaction broadcasts its participant list
  network-wide;
- B303: every transaction touching a Fabric private data collection
  discloses the collection's member list on-chain;
- B304: a validating notary or full-visibility ordering service sees the
  entire transaction content.

These are INFO findings: the mechanism may be exactly what the design
calls for (e.g. interaction privacy not required), but the author should
choose it knowingly — the paper's design-time argument.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.rules import RULES
from repro.analysis.scopes import ModuleIndex, call_name


def _report(
    index: ModuleIndex,
    findings: list[Finding],
    rule_id: str,
    node: ast.AST,
    detail: str,
) -> None:
    rule = RULES[rule_id]
    findings.append(
        Finding(
            rule_id=rule.rule_id,
            code=rule.code,
            severity=rule.severity,
            path=index.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=f"{rule.summary}: {detail}",
            hint=rule.hint,
            context=index.context_of(node),
        )
    )


def run_boundary_pass(index: ModuleIndex) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(index.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name == "send_private_transaction":
            _report(
                index, findings, "quorum-participant-broadcast", node,
                "the private_for list travels in the clear on the public "
                "chain",
            )
        elif name == "create_collection":
            _report(
                index, findings, "pdc-member-disclosure", node,
                "collection membership appears in every referencing "
                "transaction's metadata",
            )
        for kw in node.keywords:
            if kw.arg == "collection_writes" and not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            ):
                _report(
                    index, findings, "pdc-member-disclosure", node,
                    "collection_writes anchors hashes on-chain and lists "
                    "collection members in the transaction",
                )
            elif kw.arg == "validating_notary" and (
                isinstance(kw.value, ast.Constant) and kw.value.value is True
            ):
                _report(
                    index, findings, "ordering-full-visibility", node,
                    "validating_notary=True gives the notary full "
                    "transaction contents",
                )
            elif kw.arg == "visibility" and (
                isinstance(kw.value, ast.Attribute) and kw.value.attr == "FULL"
            ):
                _report(
                    index, findings, "ordering-full-visibility", node,
                    "OrdererVisibility.FULL exposes submitted transactions "
                    "to the ordering operator",
                )
    return findings
