"""The rule catalog.

Every rule maps a *design-time* check onto a mechanism or caveat from the
paper: the taint rules (F1xx) enforce that Section 2.2 data-confidentiality
mechanisms sit between confidential sources and public sinks; the
determinism rules (D2xx) enforce the Section 5 requirement that contract /
validation code be replayable on every node; the boundary rules (B3xx)
surface the platform caveats Section 5 documents (Quorum's participant
broadcast, PDC member disclosure, ordering-principal visibility).

Rule ids are stable API: suppression comments, the JSON output, docs, and
the fixture corpus all key on them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.findings import Severity


@dataclass(frozen=True)
class Rule:
    """One check: stable id + code, severity, and its paper grounding."""

    code: str
    rule_id: str
    severity: Severity
    summary: str
    hint: str
    paper: str


_RULES = [
    # -- information-flow rules (taint pass) ---------------------------
    Rule(
        code="F101",
        rule_id="flow-to-state",
        severity=Severity.ERROR,
        summary="confidential value written to shared ledger state",
        hint="hash or commit the value and anchor the digest, encrypt it "
        "with a key shared only among the involved parties, or move it "
        "to an off-chain store and record the anchor",
        paper="Section 2.2 (hashes/commitments, symmetric encryption, "
        "off-chain peer data); Figure 1 'on-chain record desired' branch",
    ),
    Rule(
        code="F102",
        rule_id="flow-to-log",
        severity=Severity.WARNING,
        summary="confidential value printed or logged",
        hint="log a hash or redacted form; operational logs are outside "
        "every ledger confidentiality boundary",
        paper="Section 3.4 (visibility beyond transacting parties)",
    ),
    Rule(
        code="F103",
        rule_id="flow-to-message",
        severity=Severity.WARNING,
        summary="confidential value sent in a point-to-point message payload",
        hint="verify the recipient is a transaction participant; otherwise "
        "encrypt the payload or send a hash/tear-off instead",
        paper="Section 2.1/2.2 (separation of ledgers keeps data with "
        "involved parties only)",
    ),
    Rule(
        code="F104",
        rule_id="flow-to-metadata",
        severity=Severity.WARNING,
        summary="confidential value placed in transaction metadata or an "
        "exposure declaration",
        hint="transaction metadata is visible to the ordering principal "
        "and often the whole network; reference confidential values by "
        "hash only",
        paper="Section 3.4 (ordering service visibility); Section 5 "
        "(participant lists in transaction metadata)",
    ),
    # -- determinism rules (contract/validation contexts only) ---------
    Rule(
        code="D201",
        rule_id="nondet-time",
        severity=Severity.ERROR,
        summary="wall-clock access inside contract/validation code",
        hint="take the timestamp from the transaction (time-window / "
        "block timestamp) so every replay validates identically",
        paper="Section 5 (validation must be deterministic and "
        "replayable on every node)",
    ),
    Rule(
        code="D202",
        rule_id="nondet-random",
        severity=Severity.ERROR,
        summary="randomness inside contract/validation code",
        hint="derive any needed entropy deterministically from "
        "transaction inputs, or move the random choice off-chain and "
        "commit to it",
        paper="Section 5 (deterministic validation); Section 2.2 "
        "(commitments for off-chain choices)",
    ),
    Rule(
        code="D203",
        rule_id="nondet-env",
        severity=Severity.ERROR,
        summary="environment access (os / filesystem / network / process) "
        "inside contract/validation code",
        hint="contract code must be a pure function of the state view and "
        "arguments; fetch external facts via an oracle attestation",
        paper="Section 5 (deterministic validation); Section 4 (oracle "
        "attestation pattern)",
    ),
    Rule(
        code="D204",
        rule_id="unordered-iter",
        severity=Severity.WARNING,
        summary="iteration over a set inside contract/validation code",
        hint="wrap the iterable in sorted(...) so every node visits "
        "elements in the same order",
        paper="Section 5 (identical execution on every endorsing node)",
    ),
    Rule(
        code="D205",
        rule_id="unstable-hash",
        severity=Severity.WARNING,
        summary="builtin hash()/id() inside contract/validation code",
        hint="Python's hash() is salted per process and id() is an "
        "address; use repro.crypto.hashing for stable digests",
        paper="Section 5 (identical execution on every endorsing node)",
    ),
    # -- trust-boundary rules (platform caveats) -----------------------
    Rule(
        code="B301",
        rule_id="quorum-participant-broadcast",
        severity=Severity.INFO,
        summary="Quorum private transaction broadcasts its participant "
        "list to the whole network",
        hint="acceptable only when privacy of interaction is not "
        "required; otherwise prefer a platform with separated ledgers "
        "for parties",
        paper="Section 5 (Quorum: 'revealing to the entire network which "
        "parties are interacting')",
    ),
    Rule(
        code="B302",
        rule_id="plaintext-broadcast",
        severity=Severity.ERROR,
        summary="confidential value broadcast beyond the transaction "
        "participants",
        hint="a broadcast crosses every trust boundary at once: encrypt "
        "the payload, or broadcast only a hash/commitment",
        paper="Section 2.2 (encryption / hashes before leaving the "
        "participant set); Section 3.4",
    ),
    Rule(
        code="B303",
        rule_id="pdc-member-disclosure",
        severity=Severity.INFO,
        summary="private data collection use discloses the member list in "
        "associated transactions",
        hint="useful only if privacy of interaction is not required "
        "within the channel (the paper's PDC caveat)",
        paper="Section 5 (Fabric private data collections)",
    ),
    Rule(
        code="B304",
        rule_id="ordering-full-visibility",
        severity=Severity.INFO,
        summary="ordering principal configured with full transaction "
        "visibility",
        hint="a validating notary / full-visibility orderer sees every "
        "transaction; use a non-validating notary with tear-offs or a "
        "member-operated sequencing service if that trust is not "
        "warranted",
        paper="Section 3.4 (third-party ordering visibility); Section 2.1 "
        "(private sequencing service)",
    ),
]

RULES: dict[str, Rule] = {rule.rule_id: rule for rule in _RULES}
RULES_BY_CODE: dict[str, Rule] = {rule.code: rule for rule in _RULES}


def rule(rule_id: str) -> Rule:
    """Look a rule up by id or code."""
    if rule_id in RULES:
        return RULES[rule_id]
    if rule_id in RULES_BY_CODE:
        return RULES_BY_CODE[rule_id]
    raise KeyError(f"unknown rule {rule_id!r}")
