"""Static privacy-leakage and determinism analysis.

The paper's central argument is that privacy on enterprise DLTs is a
*design-time* property: the right mechanism (off-chain data, encryption,
commitments, tear-offs) has to be chosen before deployment, because a
leak on an immutable ledger cannot be unshipped.  The dynamic leakage
auditor (:mod:`repro.core.audit`) verifies this at *run* time; this
package verifies it at *authoring* time, by linting contract functions,
platform code, and use cases for three violation classes:

- information flows from confidential sources to public sinks that skip
  every catalog mechanism (:mod:`repro.analysis.taint`),
- nondeterminism inside contract/validation code, which breaks replayed
  validation (:mod:`repro.analysis.determinism`),
- plaintext or metadata crossing a platform trust boundary
  (:mod:`repro.analysis.boundaries`).

CLI: ``repro lint <paths>`` / ``repro lint --self [--strict] [--json]``.
Suppress a finding with ``# repro: allow(<rule-id>)`` on (or directly
above) the offending line.
"""

from repro.analysis.engine import (
    analyze_paths,
    analyze_source,
    iter_python_files,
    self_paths,
)
from repro.analysis.findings import (
    Finding,
    LintReport,
    Severity,
    SuppressionIndex,
)
from repro.analysis.rules import RULES, RULES_BY_CODE, Rule, rule

__all__ = [
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "self_paths",
    "Finding",
    "LintReport",
    "Severity",
    "SuppressionIndex",
    "RULES",
    "RULES_BY_CODE",
    "Rule",
    "rule",
]
