"""Determinism pass over contract/validation code.

Section 5's platform discussion assumes validation logic is replayed
independently on every endorsing node (Fabric chaincode, Corda ``verify``,
EVM contracts); any divergence between replicas is a consensus failure.
This pass therefore forbids, *inside contract contexts only* (see
:mod:`repro.analysis.scopes`):

- wall-clock reads (``time``, ``datetime``) — D201,
- randomness (``random``, ``secrets``, ``uuid``) — D202,
- environment access (``os``, filesystem, process, network) — D203,
- iteration over sets, whose order is interpreter-dependent — D204,
- the salted builtin ``hash()`` and address-valued ``id()`` — D205.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.rules import RULES
from repro.analysis.scopes import ModuleIndex, call_name

_MODULE_RULES = {
    "time": "nondet-time",
    "datetime": "nondet-time",
    "random": "nondet-random",
    "secrets": "nondet-random",
    "uuid": "nondet-random",
    "os": "nondet-env",
    "sys": "nondet-env",
    "subprocess": "nondet-env",
    "socket": "nondet-env",
    "pathlib": "nondet-env",
    "shutil": "nondet-env",
    "glob": "nondet-env",
    "tempfile": "nondet-env",
    "requests": "nondet-env",
    "urllib": "nondet-env",
    "http": "nondet-env",
}

_BUILTIN_ENV_CALLS = frozenset({"open", "input"})
_UNSTABLE_BUILTINS = frozenset({"hash", "id"})


def _report(
    index: ModuleIndex,
    findings: list[Finding],
    rule_id: str,
    node: ast.AST,
    detail: str,
) -> None:
    rule = RULES[rule_id]
    findings.append(
        Finding(
            rule_id=rule.rule_id,
            code=rule.code,
            severity=rule.severity,
            path=index.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=f"{rule.summary}: {detail}",
            hint=rule.hint,
            context=index.context_of(node),
        )
    )


def _module_of_name(index: ModuleIndex, name: str) -> str | None:
    if name in index.import_modules:
        return index.import_modules[name]
    if name in index.import_members:
        return index.import_members[name][0]
    return None


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # Set algebra (a | b, a & b, a - b) over set operands.
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


def _check_contract_node(
    index: ModuleIndex, findings: list[Finding], root: ast.AST
) -> None:
    bound_params: set[str] = set()
    if isinstance(root, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = root.args
        bound_params = {
            a.arg
            for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        }

    for node in ast.walk(root):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in bound_params:
                continue
            module = _module_of_name(index, node.id)
            rule_id = _MODULE_RULES.get(module or "")
            if rule_id:
                _report(
                    index, findings, rule_id, node,
                    f"use of {node.id!r} (module {module!r})",
                )
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if isinstance(node.func, ast.Name):
                if name in _BUILTIN_ENV_CALLS:
                    _report(
                        index, findings, "nondet-env", node,
                        f"call to builtin {name}()",
                    )
                elif name in _UNSTABLE_BUILTINS:
                    _report(
                        index, findings, "unstable-hash", node,
                        f"call to builtin {name}()",
                    )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expression(node.iter):
                _report(
                    index, findings, "unordered-iter", node.iter,
                    "for-loop over a set expression",
                )
        elif isinstance(node, ast.comprehension):
            if _is_set_expression(node.iter):
                _report(
                    index, findings, "unordered-iter", node.iter,
                    "comprehension over a set expression",
                )


def run_determinism_pass(index: ModuleIndex) -> list[Finding]:
    findings: list[Finding] = []
    seen: set[int] = set()
    for node in ast.walk(index.tree):
        if id(node) in index.contract_nodes and id(node) not in seen:
            seen.add(id(node))
            _check_contract_node(index, findings, node)
    return findings
